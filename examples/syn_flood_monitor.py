#!/usr/bin/env python3
"""SYN-flood monitoring (Table 1: "SYN flood — protect servers").

Deploys the SYN-flood app on a switch node, replays normal TCP handshake
traffic toward a server pool, then floods one server with SYNs.  Two
in-switch checks fire: the SYN *rate over time* becomes an outlier
(``syn_flood``), and the SYNs-per-destination distribution names the
target (``syn_target``) — no controller round trip needed for either.

Run: ``python examples/syn_flood_monitor.py``
"""

import random

from repro.apps.syn_flood import SynFloodParams, build_syn_flood_app
from repro.controller.base import Controller
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.builders import tcp_syn_to, tcp_to


def main():
    params = SynFloodParams(
        server_prefix="10.0.0.0",
        prefix_len=24,
        interval=0.05,
        window=40,
        cooldown=0.2,
    )
    bundle = build_syn_flood_app(params)
    net = Network()
    switch = net.add(SwitchNode("edge", bundle.program))
    controller = net.add(Controller("noc"))
    sink = net.add(Host("servers"))
    attacker = net.add(Host("outside"))
    net.connect(switch, CPU_PORT, controller, 0, delay=0.01)
    net.connect(switch, 1, sink, 0)
    net.connect(attacker, 0, switch, 0)

    rng = random.Random(3)
    servers = [hdr.ip_to_int(f"10.0.0.{h}") for h in range(1, 9)]
    victim = servers[4]

    # Normal traffic: handshakes (one SYN, a few ACK segments) at ~400 pps.
    t = 0.0
    while t < 3.0:
        server = servers[rng.randrange(len(servers))]
        attacker.send_at(t, tcp_syn_to(server, src_ip=rng.getrandbits(32)))
        for k in range(3):
            attacker.send_at(
                t + 0.001 * (k + 1), tcp_to(server, src_ip=rng.getrandbits(32))
            )
        t += 0.01
    flood_start = t
    # The flood: 20x the SYN rate, all toward one server.
    while t < flood_start + 1.5:
        attacker.send_at(t, tcp_syn_to(victim, src_ip=rng.getrandbits(32)))
        t += 0.0005
    net.run()

    print(f"flood victim: {hdr.int_to_ip(victim)} (flood starts t={flood_start:.2f}s)")
    rate_alert = controller.first_alert_at("syn_flood")
    print(f"syn_flood alert at controller: "
          f"t={rate_alert:.3f}s" if rate_alert else "syn_flood alert: none")
    targets = controller.alerts_named("syn_target")
    if targets:
        when, digest = targets[0]
        target_ip = f"10.0.0.{digest.fields['index']}"
        print(f"syn_target alert: t={when:.3f}s -> {target_ip} "
              f"(count={digest.fields['sample']})")
        print(f"target correct: {target_ip == hdr.int_to_ip(victim)}")
    print(f"SYNs per server (host octet 1..8): "
          f"{bundle.stat4.read_cells(1)[1:9]}")
    print(f"SYN-rate window measures: {bundle.stat4.read_measures(0)}")


if __name__ == "__main__":
    main()
