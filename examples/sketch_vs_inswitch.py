#!/usr/bin/env python3
"""The Figure-1 architecture comparison: pull a sketch, or push an alert?

Runs the same traffic spike against the sketch-only architecture (Figure
1b) at several pull periods and against the in-switch push architecture
(Figure 1c), then prints the measured detection-delay / overhead trade-off
— the quantitative version of the paper's introduction.

Run: ``python examples/sketch_vs_inswitch.py``
"""

from repro.experiments.reactivity import format_reactivity, run_reactivity


def main():
    print("replaying one spike against both architectures "
          "(this takes ~30 s of simulation)...\n")
    points = run_reactivity(periods=(0.01, 0.05, 0.1, 0.5, 1.0))
    print(format_reactivity(points))
    in_switch = points[0]
    best_pull = min(
        (p for p in points if p.architecture == "sketch-only"),
        key=lambda p: p.detection_delay if p.detection_delay is not None else 1e9,
    )
    print(
        f"\nthe fastest poller needs {best_pull.overhead_bps:.0f} B/s of pulls "
        f"to get within {best_pull.detection_delay * 1000:.0f} ms;"
    )
    print(
        f"the in-switch push detects in {in_switch.detection_delay * 1000:.0f} ms "
        f"for {in_switch.overhead_bps:.0f} B/s — "
        "\"this delay is inversely proportional to the generated overhead\" (Sec. 1)"
    )


if __name__ == "__main__":
    main()
