#!/usr/bin/env python3
"""Load-balance monitoring (Table 1: "load balancing — avoid imbalances").

A pool of eight servers behind 10.0.1.0/24 receives hashed traffic.  The
switch tracks the per-server share as a frequency distribution; when one
server starts soaking up a disproportionate share (a hot key, a broken
hash bucket), the in-switch 2σ check fires ``server_overload`` naming it,
and the tracked median share is available in a register throughout.

Run: ``python examples/load_balance_monitor.py``
"""

import random

from repro.apps.load_balance import LoadBalanceParams, build_load_balance_app
from repro.controller.base import Controller
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.builders import udp_to


def main():
    params = LoadBalanceParams(
        pool_prefix="10.0.1.0",
        prefix_len=24,
        min_samples=8,   # all eight servers seen before checks fire
        margin=2,
        cooldown=0.2,
    )
    bundle = build_load_balance_app(params)
    net = Network()
    switch = net.add(SwitchNode("lb", bundle.program))
    controller = net.add(Controller("ops"))
    sink = net.add(Host("pool"))
    client = net.add(Host("clients"))
    net.connect(switch, CPU_PORT, controller, 0, delay=0.01)
    net.connect(switch, 1, sink, 0)
    net.connect(client, 0, switch, 0)

    rng = random.Random(11)
    servers = [hdr.ip_to_int(f"10.0.1.{h}") for h in range(1, 9)]
    hot = servers[5]

    t = 0.0
    while t < 2.0:  # healthy: hashed evenly
        client.send_at(t, udp_to(servers[rng.randrange(8)]))
        t += 0.002
    skew_start = t
    while t < 3.5:  # a hot key pins one server
        target = hot if rng.random() < 0.6 else servers[rng.randrange(8)]
        client.send_at(t, udp_to(target))
        t += 0.002
    net.run()

    print(f"hot server: {hdr.int_to_ip(hot)} (skew starts t={skew_start:.2f}s)")
    overloads = controller.alerts_named("server_overload")
    if overloads:
        when, digest = overloads[0]
        flagged = f"10.0.1.{digest.fields['index']}"
        print(f"server_overload at t={when:.3f}s -> {flagged} "
              f"(count={digest.fields['sample']})")
        print(f"correct: {flagged == hdr.int_to_ip(hot)}")
    else:
        print("no overload alert (unexpected)")
    shares = bundle.stat4.read_cells(0)[1:9]
    print(f"per-server packet counts: {shares}")
    measures = bundle.stat4.read_measures(0)
    print(f"median per-server share position: {measures['percentile_pos']}")
    print(f"register measures: {measures}")


if __name__ == "__main__":
    main()
