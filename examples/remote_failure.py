#!/usr/bin/env python3
"""Remote-failure detection (Table 1, row 1: "stalled flows over time").

Forty TCP flows cross the switch; a remote path failure stalls most of
them, so their segments stop advancing and retransmit.  The switch tracks
retransmissions per interval (a hashed last-sequence table marks them, the
Stat4 time series counts them) and raises ``remote_failure`` when an
interval is a mean + 2σ outlier — the Blink-style failure signature from
the paper's motivation, detected wholly in the data plane.

Run: ``python examples/remote_failure.py``
"""

import random

from repro.apps.failure import FailureParams, build_failure_app
from repro.p4 import headers as hdr
from repro.p4.packet import Packet
from repro.p4.switch import BehavioralSwitch


def tcp_segment(flow, seq):
    eth = hdr.ethernet(1, 2, hdr.ETHERTYPE_IPV4)
    ip = hdr.ipv4(src=flow[0], dst=flow[1], protocol=hdr.PROTO_TCP, total_len=40)
    tcp = hdr.tcp(flow[2], flow[3], seq_no=seq)
    return Packet(eth.pack() + ip.pack() + tcp.pack())


def main():
    bundle = build_failure_app(FailureParams(interval=0.05, window=30))
    switch = BehavioralSwitch("core", bundle.program)
    rng = random.Random(1)
    flows = []
    for _ in range(40):
        flows.append(
            [rng.getrandbits(32), rng.getrandbits(32),
             rng.randint(1024, 65535), 443, rng.getrandbits(32) & 0xFFFF0000]
        )

    def drive(duration, start, stalled):
        t = start
        digests = []
        while t < start + duration:
            flow = flows[rng.randrange(len(flows))]
            if not (stalled and flows.index(flow) < 32):
                flow[4] = (flow[4] + 1448) & 0xFFFFFFFF  # progress
            digests += switch.process(tcp_segment(flow, flow[4]), 0, t).digests
            t += 0.0005
        return digests, t

    print("phase 1: 40 healthy flows for 2 s...")
    digests, t = drive(2.0, 0.0, stalled=False)
    print(f"  alerts: {len(digests)} (expected 0), "
          f"retransmissions seen: {bundle.counters['retransmissions']}")
    failure_at = t
    print(f"phase 2: remote failure at t={failure_at:.2f}s stalls 32/40 flows...")
    digests, _ = drive(1.0, t, stalled=True)
    failures = [d for d in digests if d.name == "remote_failure"]
    if failures:
        latency = failures[0].timestamp - failure_at
        print(f"  remote_failure alert {latency * 1000:.0f} ms after the failure")
        print(f"  retransmissions counted: {bundle.counters['retransmissions']}")
        measures = bundle.stat4.read_measures(0)
        print(f"  window stats: mean retrans/interval = Xsum/N = "
              f"{measures['xsum']}/{measures['n']}, sigma_NX = {measures['stddev']}")
    else:
        print("  no alert (unexpected)")


if __name__ == "__main__":
    main()
