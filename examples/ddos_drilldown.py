#!/usr/bin/env python3
"""The full Sec.-4 case study: volumetric-spike detection with drill-down.

Builds the Figure-6 topology — a traffic source, a P4 switch running the
Stat4 case-study program, two OVS-like forwarders, 36 destinations in six
/24 subnets, and a drill-down controller on the switch's CPU port — then
replays a load-balanced baseline followed by a spike toward a random
victim, and prints the resulting detection timeline.

Run: ``python examples/ddos_drilldown.py [seed]``
"""

import sys

from repro.experiments.case_study import CaseStudySetup, run_case_study


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    setup = CaseStudySetup(
        interval=0.008,        # the paper's default 8 ms intervals
        window=100,            # ... in a 100-interval circular buffer
        packets_per_interval=40,
        spike_factor=8,
        control_delay=0.02,    # switch <-> controller one-way delay
        controller_processing=0.05,
        spike_intervals=100,
        seed=seed,
    )
    print(f"running case study (seed={seed}): "
          f"{setup.interval * 1000:g} ms intervals, window {setup.window}")
    result = run_case_study(setup)

    print(f"\nspike victim:        {result.victim}")
    print(f"spike onset:         t={result.spike_onset:.3f}s")
    if result.detected:
        print(
            f"detected at switch:  t={result.detected_at_switch:.3f}s "
            f"({result.detection_intervals:.2f} intervals after onset; "
            "paper: first interval)"
        )
    print("\ncontroller timeline:")
    for when, what in result.timeline:
        print(f"  t={when:.3f}s  {what}")
    print(f"\nidentified:          {result.identified}")
    print(f"victim correct:      {result.victim_correct}")
    print(f"subnet correct:      {result.subnet_correct}")
    if result.pinpoint_seconds is not None:
        print(f"onset -> pinpoint:   {result.pinpoint_seconds:.2f}s "
              "(paper: 2-3 s with bmv2/P4Runtime latencies)")
    print(f"false alerts before onset: {result.false_alerts_before_onset}")
    print(f"packets processed:   {result.packets}")


if __name__ == "__main__":
    main()
