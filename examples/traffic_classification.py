#!/usr/bin/env python3
"""Traffic-mix monitoring (Table 1: "traffic classification — correctness").

The paper motivates keeping in-switch ML classifiers honest: if the live
protocol mix drifts from what a model was trained on, its verdicts go
stale.  The Stat4 app tracks the frequency distribution of packets by IP
protocol and the *median of the mix*; when the weighted median walks to a
different protocol, the switch pushes a ``mix_shift`` digest.

This uses the percentile-change signal rather than the k·σ outlier test:
with only two or three protocol categories, a single outlier's z-score is
bounded by (N−1)/√N, so a 2σ test can never fire — the moving median can.

Run: ``python examples/traffic_classification.py``
"""

from repro.apps.classification import ClassificationParams, build_classification_app
from repro.controller.base import Controller
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.builders import tcp_to, udp_to


def main():
    bundle = build_classification_app(ClassificationParams(cooldown=0.1))
    net = Network()
    switch = net.add(SwitchNode("tap", bundle.program))
    controller = net.add(Controller("ml-ops"))
    sink = net.add(Host("downstream"))
    src = net.add(Host("upstream"))
    net.connect(switch, CPU_PORT, controller, 0, delay=0.01)
    net.connect(switch, 1, sink, 0)
    net.connect(src, 0, switch, 0)

    dst = hdr.ip_to_int("198.51.100.9")
    t = 0.0
    # Phase 1: the mix the classifier was trained on — 70% TCP, 30% UDP
    # (a clear majority pins the weighted median to TCP; at 50/50 the
    # median legitimately flaps between the two categories).
    for i in range(1000):
        src.send_at(t, udp_to(dst) if i % 10 < 3 else tcp_to(dst))
        t += 0.001
    shift_start = t
    # Phase 2: a QUIC-style rollout floods the mix with UDP.
    for _ in range(2000):
        src.send_at(t, udp_to(dst))
        t += 0.0005
    net.run()

    print(f"mix shift begins at t={shift_start:.2f}s "
          "(TCP/UDP 50/50 -> UDP-dominated)")
    shifts = [(when, d) for (when, d) in controller.alerts_named("mix_shift")
              if when >= shift_start]
    if shifts:
        when, digest = shifts[0]
        print(f"mix_shift digest at t={when:.3f}s: median moved "
              f"{digest.fields['previous']} -> {digest.fields['position']}")
    measures = bundle.stat4.read_measures(0)
    cells = bundle.stat4.read_cells(0)
    print(f"final mix: TCP(6)={cells[6]} packets, UDP(17)={cells[17]} packets")
    print(f"median protocol of the mix: {measures['percentile_pos']} "
          f"({'UDP' if measures['percentile_pos'] == 17 else 'TCP/other'})")
    print("-> the controller would now trigger model retraining (Sec. 1)")


if __name__ == "__main__":
    main()
