#!/usr/bin/env python3
"""Local in-switch reaction: detect a spike and rate-limit it, no controller.

The paper's Figure-1c architecture lets switches "locally react to
anomalies (e.g., rate limiting some flows or rerouting packets)".  This
example deploys the detect-and-rate-limit app on a switch between a source
and a sink: when the packets-per-interval check fires, a pre-configured
token-bucket policer arms *in the same pipeline pass* and caps what leaks
downstream, while the digest still goes to the controller in parallel.

Run: ``python examples/self_defending_switch.py``
"""

from repro.apps.mitigation import MitigationParams, build_mitigating_app
from repro.controller.base import Controller
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.builders import udp_to


def main():
    params = MitigationParams(
        interval=0.01,
        window=40,
        limit_pps=2000,   # the operator's "acceptable worst case"
        hold=0.2,
    )
    bundle = build_mitigating_app(params)
    net = Network()
    switch = net.add(SwitchNode("edge", bundle.program))
    controller = net.add(Controller("noc"))
    sink = net.add(Host("protected"))
    source = net.add(Host("outside"))
    net.connect(switch, CPU_PORT, controller, 0, delay=0.02)
    net.connect(switch, 1, sink, 0)
    net.connect(source, 0, switch, 0)

    dst = hdr.ip_to_int("10.0.1.1")
    t = 0.0
    while t < 0.5:  # baseline: 1,000 pps
        source.send_at(t, udp_to(dst))
        t += 0.001
    spike_start = t
    while t < spike_start + 0.4:  # attack: 20,000 pps
        source.send_at(t, udp_to(dst))
        t += 0.00005
    net.run()

    baseline_rx = sum(1 for when, _ in sink.received if when < spike_start)
    spike_rx = sum(1 for when, _ in sink.received if when >= spike_start)
    offered_spike = int(0.4 / 0.00005)
    print(f"baseline: {baseline_rx} packets delivered (offered 500) — untouched")
    print(f"attack:   {offered_spike} packets offered at 20k pps")
    print(f"          {spike_rx} leaked downstream "
          f"({spike_rx / offered_spike * 100:.1f}%)")
    print(f"policer:  {bundle.policer.conforming} conformed, "
          f"{bundle.policer.dropped} dropped at {params.limit_pps} pps")
    alert = controller.first_alert_at("traffic_spike")
    print(f"controller was still alerted at t={alert:.3f}s "
          f"({(alert - spike_start) * 1000:.0f} ms after onset) for "
          "longer-term reaction")


if __name__ == "__main__":
    main()
