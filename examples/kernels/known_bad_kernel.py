# p4-ok-file — negative-control fixture for the ST5xx concurrency pass;
# deliberately broken, never imported by the runtime.
"""Known-bad kernel: the concurrency analyzer's negative control.

Mirrors ``examples/configs/known_bad.json`` for the ST4xx analyzer: a
file that MUST keep failing ``repro lint --strict --concurrency``.  If
the concurrency pass ever stops flagging these constructs, the gate
itself has regressed (``tests/analysis/test_concurrency.py`` pins the
exact profile).

Four deliberate violations:

- ``bad_window_kernel`` declares ``# parallel-mode: tally`` but mutates
  an interval cursor — order-dependent, so the claim is unprovable
  (ST502);
- ``bad_merge_kernel`` declares ``# parallel-mode: merge`` but evicts
  hashed slots — a hard order-breaking effect no speculative merge or
  replay-from-entry reconstructs, so the merge claim is just as
  unprovable (ST502);
- ``bad_worker_task`` is submitted to a pool and mutates a module-level
  registry without holding the module lock (ST503);
- ``bad_segment_factory`` creates a shared-memory segment directly
  instead of going through ``SharedColumnSegment.pack``, bypassing the
  crash-sweep registry (ST505).

``good_tally_kernel`` is the in-file positive control: a pure
commutative-monoid kernel whose ``tally`` claim the dataflow proves
(ST501), showing the pass rejects the bad kernels for their effects, not
for living in this file.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory

_RESULTS = {}
_RESULTS_LOCK = threading.Lock()


# parallel-mode: tally
def good_tally_kernel(state, ctx, value):
    """Monoid-only updates: the declared tally mode is provable."""
    old = state.counters.read(value)
    state.stats.observe_frequency(old)
    state.counters.write(value, old + 1)


# parallel-mode: tally
def bad_window_kernel(state, ctx, value):
    """Claims merge-exact but walks an interval cursor: ST502.

    ``current_count``/``window_index`` make each update depend on the
    cursor the previous one left, so no per-chunk summary reconstructs
    the final state — the dataflow derives order-dependent (serial) and
    the ``tally`` claim must be rejected.
    """
    state.current_count += 1
    if state.current_count >= 8:
        state.stats.replace_value(state.window_index, state.current_count)
        state.window_index += 1
        state.current_count = 0
    state.stats.add_value(value)


# parallel-mode: merge
def bad_merge_kernel(state, ctx, value):
    """Claims merge-replay-exact but evicts hashed slots: ST502.

    Eviction picks its victim by comparing live counts along the probe
    path, so a chunk's exit state cannot be reconstructed from any local
    summary — neither a tracker fixpoint nor a replay from the chunk's
    entry state makes the claim provable, and the dataflow must derive
    order-dependent (serial) even though the kernel also runs the two
    replayable digest streams a genuine merge kernel carries.
    """
    old, new, evicted = state.cells.increment(value)
    if evicted:
        state.stats.remove_value(evicted)
    state.stats.observe_frequency(old)
    state.tracker.observe(value)
    if state.stats.is_outlier(new):
        state.stats.emit_digest("evicted_heavy", 0, value, new)


def bad_worker_task(chunk):
    """Unguarded mutation of shared module state from worker context: ST503."""
    total = sum(chunk)
    _RESULTS[id(chunk)] = total  # not holding _RESULTS_LOCK
    return total


def good_worker_task(chunk):
    """The guarded twin: same mutation, under the module lock — clean."""
    total = sum(chunk)
    with _RESULTS_LOCK:
        _RESULTS[id(chunk)] = total
    return total


def bad_segment_factory(payload):
    """Creates a segment outside SharedColumnSegment.pack: ST505.

    Nothing registers this segment, so a crash between creation and
    unlink leaks it in /dev/shm — exactly what the registry exists to
    prevent.
    """
    return shared_memory.SharedMemory(create=True, size=max(len(payload), 1))


def fan_out(chunks):
    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(bad_worker_task, chunk) for chunk in chunks]
        futures += [pool.submit(good_worker_task, chunk) for chunk in chunks]
        return [f.result() for f in futures]
