#!/usr/bin/env python3
"""The Sec.-3 validation experiment (Figure 5), runnable end to end.

A host sends frames carrying random integers in [-255, 255]; the switch
tracks their frequency distribution with Stat4 and echoes back N, Xsum,
Xsumsq, σ²_NX, σ_NX and the tracked median in every reply; the host checks
each reply against its own software computation.

Run: ``python examples/echo_validation.py [packets]``
"""

import sys

from repro.experiments.validation import run_validation


def main():
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    print(f"sending {packets} echo requests through the simulated network...")
    result = run_validation(packets=packets)
    print(f"replies received:       {result.replies}/{result.packets_sent}")
    print(f"mismatching fields:     {result.mismatches} "
          "(paper: switch values equal host values)")
    for detail in result.mismatch_details:
        print(f"  {detail}")
    print(f"max sigma excess error: {result.max_sd_relative_error * 100:.2f}% "
          "(inside the Sec.-2 approximation envelope)")
    print(f"validation {'PASSED' if result.passed else 'FAILED'}")


if __name__ == "__main__":
    main()
