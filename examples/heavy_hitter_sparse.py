#!/usr/bin/env python3
"""Sparse distributions: track full /32 destinations in hashed slots.

The paper's Sec. 5 names this as future work: "avoid reserving memory for
non-observed values (e.g., using hash-tables similarly to [23])".  This
example tracks per-destination traffic over the *entire* 32-bit address
space in 256 HashPipe-style slots — dense cells would need 16 GiB — and
shows the bonus: the anomaly digest carries the heavy hitter's full
address, so no drill-down is needed to identify it.

Run: ``python examples/heavy_hitter_sparse.py``
"""

import random

from repro.p4 import headers as hdr
from repro.p4.parser import standard_parser
from repro.p4.switch import PacketContext, StandardMetadata
from repro.stat4 import (
    BindingMatch,
    ExtractSpec,
    Stat4,
    Stat4Config,
    Stat4Runtime,
)
from repro.traffic.builders import udp_to


def main():
    config = Stat4Config(
        counter_num=1,
        counter_size=16,          # dense cells barely used
        binding_stages=1,
        sparse_dists=(0,),        # slot 0 compiled with hashed storage
        sparse_slots=128,
        sparse_stages=2,
    )
    stat4 = Stat4(config)
    runtime = Stat4Runtime(stat4)
    spec = runtime.sparse_frequency_of(
        dist=0,
        extract=ExtractSpec.field("ipv4.dst"),  # the FULL 32-bit address
        k_sigma=2,
        alert="heavy_key",
        min_samples=30,
        margin=3,
        cooldown=0.5,
    )
    runtime.bind(0, BindingMatch(ether_type=hdr.ETHERTYPE_IPV4), spec)
    parser = standard_parser()

    def process(packet, now):
        ctx = PacketContext(
            parsed=parser.parse(packet),
            meta=StandardMetadata(ingress_port=0, timestamp=now),
        )
        ctx.user["frame_bytes"] = len(packet)
        stat4.process(ctx)
        return ctx.digests

    rng = random.Random(7)
    background = [rng.getrandbits(32) for _ in range(60)]
    victim = hdr.ip_to_int("203.0.113.99")
    digests = []
    now = 0.0
    onset = 2500 * 0.0005
    for i in range(6000):
        dst = victim if (i > 2500 and rng.random() < 0.6) else background[rng.randrange(60)]
        digests += process(udp_to(dst), now)
        now += 0.0005

    cells = stat4.sparse_cells[0]
    print(f"domain: all 2^32 destinations; storage: {cells.capacity} slots "
          f"({cells.bytes_used} B; dense would need "
          f"{((1 << 32) * 4) >> 30} GiB)")
    print(f"resident keys: {cells.resident_keys}, evictions: {cells.evictions}")
    early = [d for d in digests if d.name == "heavy_key" and d.timestamp < onset]
    heavy = [d for d in digests if d.name == "heavy_key" and d.timestamp >= onset]
    if early:
        print(f"(baseline noise: {len(early)} early digest(s) — the 2-sigma "
              "rule's known false-positive rate on random counts)")
    if heavy:
        flagged = heavy[0].fields["index"]
        print(f"heavy-key digest at t={heavy[0].timestamp:.2f}s "
              f"({(heavy[0].timestamp - onset) * 1000:.0f} ms after the flood "
              f"starts) names {hdr.int_to_ip(flagged)} "
              f"(count {heavy[0].fields['sample']})")
        print(f"correct: {flagged == victim}")
    top = sorted(stat4.read_sparse_items(0), key=lambda kv: -kv[1])[:3]
    print("top talkers:", [(hdr.int_to_ip(k), c) for k, c in top])


if __name__ == "__main__":
    main()
