#!/usr/bin/env python3
"""Quickstart: the Stat4 statistics primitives in five minutes.

Walks the paper's core ideas bottom-up:

1. the division-free scaled moments (N, Xsum, Xsumsq);
2. the Figure-2 approximate square root;
3. the N·x > Xsum + 2σ outlier test;
4. the Figure-3 online median;
5. a Stat4 instance fed real packets through binding tables.

Run: ``python examples/quickstart.py``
"""

import math
import random

from repro.core import PercentileTracker, ScaledStats, approx_isqrt
from repro.p4 import headers as hdr
from repro.p4.parser import standard_parser
from repro.p4.switch import PacketContext, StandardMetadata
from repro.stat4 import BindingMatch, ExtractSpec, Stat4, Stat4Runtime
from repro.traffic.builders import udp_to


def section(title):
    print(f"\n=== {title} ===")


def main():
    rng = random.Random(0)

    section("1. Scaled moments: mean and variance without division")
    stats = ScaledStats()
    rates = [rng.randint(95, 105) for _ in range(50)]
    for rate in rates:
        stats.add_value(rate)
    print(f"values: 50 samples around 100 packets/interval")
    print(f"N = {stats.count}, Xsum = {stats.xsum}, Xsumsq = {stats.xsumsq}")
    print(f"mean of NX (exactly Xsum): {stats.mean_nx}")
    print(f"variance of NX = N*Xsumsq - Xsum^2 = {stats.variance_nx}")

    section("2. Approximate square root (Figure 2)")
    for y in (106, 3, 9, 5000):
        print(f"approx_isqrt({y}) = {approx_isqrt(y)}  (true: {math.sqrt(y):.2f})")

    section("3. The outlier test: N*x > Xsum + 2*sigma_NX")
    print(f"sigma_NX ~= {stats.stddev_nx}")
    for sample in (104, 150, 300):
        verdict = "OUTLIER" if stats.is_outlier(sample, 2) else "normal"
        print(f"rate {sample}: {verdict}")

    section("4. Online median, one step per packet (Figure 3)")
    tracker = PercentileTracker(256, percent=50)
    for _ in range(500):
        tracker.observe(rng.randint(40, 60))
    print(f"median of U[40,60] stream: {tracker.value} "
          f"(exact: {tracker.true_value()})")
    p90 = PercentileTracker(256, percent=90)
    for _ in range(500):
        p90.observe(rng.randint(0, 100))
    print(f"90th percentile of U[0,100] stream: {p90.value}")

    section("5. Stat4 on packets: binding tables and alerts")
    stat4 = Stat4()
    runtime = Stat4Runtime(stat4)
    spec = runtime.frequency_of(
        dist=0,
        extract=ExtractSpec.field("ipv4.dst", mask=0xFF),  # host octet
        k_sigma=2,
        alert="imbalance",
        min_samples=6,
        margin=2,
        cooldown=0.5,
    )
    runtime.bind(0, BindingMatch.ipv4_prefix("10.0.1.0", 24), spec)
    parser = standard_parser()

    def process(packet, now):
        ctx = PacketContext(
            parsed=parser.parse(packet),
            meta=StandardMetadata(ingress_port=0, timestamp=now),
        )
        ctx.user["frame_bytes"] = len(packet)
        stat4.process(ctx)
        return ctx.digests

    now = 0.0
    alerts = []
    for i in range(600):  # balanced load over 6 servers
        alerts += process(udp_to(hdr.ip_to_int(f"10.0.1.{i % 6 + 1}")), now)
        now += 0.001
    print(f"balanced phase: {len(alerts)} alerts (expected 0)")
    for _ in range(900):  # server .3 becomes a hotspot
        alerts += process(udp_to(hdr.ip_to_int("10.0.1.3")), now)
        now += 0.001
    print(f"hotspot phase: {len(alerts)} alert(s)")
    if alerts:
        first = alerts[0]
        print(f"first digest: {first.name} fields={first.fields}")
    print(f"per-server counts: {stat4.read_cells(0)[1:7]}")
    print(f"register measures: {stat4.read_measures(0)}")


if __name__ == "__main__":
    main()
