# p4-ok-file — host-side baseline model, not data-plane code.
"""The sketch-only architecture (Figure 1b) — the paper's comparison point.

The data plane keeps sketches only: a circular window of per-interval
packet counts plus a count-min of per-destination volume.  **No checks run
in the switch.**  A :class:`SketchPollingController` pulls the registers
every ``period`` seconds and performs the anomaly detection itself.

This reproduces the trade-off the paper's introduction builds on: the
controller's detection delay is bounded below by the pull period (plus the
channel RTT plus the register read time), while the overhead it imposes is
inversely proportional to that same period.  The reactivity experiment
sweeps the period and plots both against the in-switch push architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.controller.base import Controller
from repro.core.welford import WelfordAccumulator
from repro.netsim.messages import RegisterReadReply
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.baselines.countmin import CountMinSketch

__all__ = ["SketchOnlyApp", "build_sketch_only_app", "SketchPollingController"]


@dataclass
class SketchOnlyApp:
    """The sketch-only data plane: program plus its sketch handles."""

    program: PipelineProgram
    sketch: CountMinSketch
    window: int
    interval: float


def build_sketch_only_app(
    interval: float = 0.008,
    window: int = 100,
    sketch_width: int = 256,
    sketch_depth: int = 3,
) -> SketchOnlyApp:
    """Build the Figure-1b data plane.

    Maintains exactly the state Stat4's monitor binding would (per-interval
    counts in a circular window) *without* any in-switch statistics or
    checks, plus a count-min of per-destination packet counts.
    """
    registers = RegisterFile()
    intervals = registers.declare("so_intervals", 32, window)
    cursor = registers.declare("so_cursor", 32, 2)  # [index, filled]
    current = registers.declare("so_current", 64, 1)
    started = registers.declare("so_interval_start", 64, 1)
    sketch = CountMinSketch(
        width=sketch_width, depth=sketch_depth, registers=registers, name="so_cms"
    )

    state = {"start": None}

    def ingress(ctx: PacketContext) -> None:
        now = ctx.meta.timestamp
        if state["start"] is None:
            state["start"] = now
            started.write(0, int(now * 1_000_000))
        elif now - state["start"] >= interval:
            index = cursor.read(0)
            intervals.write(index, current.read(0))
            next_index = index + 1
            if next_index == window:
                next_index = 0
            cursor.write(0, next_index)
            filled = cursor.read(1)
            if filled < window:
                cursor.write(1, filled + 1)
            current.write(0, 0)
            state["start"] = state["start"] + interval
            if now - state["start"] >= interval:
                state["start"] = now
            started.write(0, int(state["start"] * 1_000_000))
        current.add(0, 1)
        if ctx.parsed.has("ipv4"):
            sketch.update(ctx.parsed["ipv4"].get("dst"))
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="sketch_only",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    return SketchOnlyApp(
        program=program, sketch=sketch, window=window, interval=interval
    )


class SketchPollingController(Controller):
    """Pulls the sketch registers periodically and detects spikes itself.

    Args:
        name: node name.
        period: pull period in seconds — the architecture's central knob.
        window: the data plane's window length (to interpret the dump).
        k_sigma: detection rule, matching the in-switch check.
        margin: flat margin in packets, matching the in-switch check.
    """

    def __init__(
        self,
        name: str,
        period: float,
        window: int,
        k_sigma: float = 2.0,
        margin: float = 3.0,
    ):
        super().__init__(name)
        self.period = period
        self.window = window
        self.k_sigma = k_sigma
        self.margin = margin
        self.polls = 0
        self.detections: List[float] = []
        self._seen_cells: Optional[List[int]] = None
        self._running = False

    def start(self, at: float = 0.0) -> None:
        """Begin the polling loop."""
        if self.network is None:
            raise RuntimeError(f"controller {self.name!r} is not attached")
        self._running = True
        self.network.sim.schedule_at(at, self._poll)

    def stop(self) -> None:
        """Stop scheduling further polls."""
        self._running = False

    def _poll(self) -> None:
        if not self._running:
            return
        self.polls += 1
        self.read_registers(
            ["so_intervals", "so_cursor"], callback=self._on_dump
        )
        assert self.network is not None
        self.network.sim.schedule(self.period, self._poll)

    def _on_dump(self, reply: RegisterReadReply) -> None:
        assert self.network is not None
        now = self.network.sim.now
        cells = reply.values["so_intervals"]
        filled = reply.values["so_cursor"][1]
        live = cells[:filled]
        previous = self._seen_cells
        self._seen_cells = list(live)
        if previous is None or len(previous) < 5:
            # No baseline yet: the first useful dump only seeds it.
            return
        # Judge only cells that changed since the previous dump (history
        # must not be re-flagged), against statistics computed over the
        # *previous* dump — the last window known before the change.
        baseline = WelfordAccumulator()
        baseline.extend(previous)
        threshold = baseline.mean + self.k_sigma * baseline.stddev + self.margin
        fresh = [
            value
            for i, value in enumerate(live)
            if i >= len(previous) or previous[i] != value
        ]
        for value in fresh:
            if value > threshold:
                self.detections.append(now)
                break

    def first_detection_after(self, onset: float) -> Optional[float]:
        """First detection at or after ``onset`` (None if never)."""
        for when in self.detections:
            if when >= onset:
                return when
        return None
