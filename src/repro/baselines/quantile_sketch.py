# p4-ok-file — host-side baseline model, not data-plane code.
"""A KLL-style quantile sketch — the QPipe comparison point.

The paper cites QPipe [13] ("QPipe also explores estimating quantiles in
sketches") as the sketch-world approach to the percentile problem Stat4
solves with per-value frequency cells.  The trade-off is the interesting
part:

- **Stat4's tracker** needs one cell per possible value (STAT_COUNTER_SIZE
  bounds the domain) but is deterministic, exact after convergence, and
  updates in O(1) with no sorting;
- **a KLL sketch** needs O(k·log(n/k)) items *independent of the domain*,
  so it scales to 32-bit values — at the price of randomized ε-approximate
  answers and compaction work that QPipe's contribution was squeezing into
  the data plane.

This implementation keeps the classic compactor hierarchy (level ``i``
items carry weight ``2^i``; a full level sorts, keeps a random parity, and
promotes).  Queries are controller-side.  The quantile-memory ablation
feeds both structures identical streams and reports memory and error.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.p4.errors import ValueRangeError

__all__ = ["KLLSketch"]


class KLLSketch:
    """A fixed-``k`` KLL compactor hierarchy.

    Args:
        k: buffer capacity per level (accuracy knob; ε ≈ O(1/k)).
        seed: RNG seed for compaction parity (determinism for tests).
        item_bytes: storage cost per item in the memory accounting.
    """

    def __init__(self, k: int = 64, seed: int = 0, item_bytes: int = 4):
        if k < 4:
            raise ValueRangeError("k must be at least 4")
        self.k = k
        self.item_bytes = item_bytes
        self._rng = random.Random(seed)
        self._levels: List[List[int]] = [[]]
        self.count = 0
        self.compactions = 0

    def update(self, value: int) -> None:
        """Insert one observation."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueRangeError("KLL stores integers")
        self._levels[0].append(value)
        self.count += 1
        level = 0
        while len(self._levels[level]) >= self.k:
            self._compact(level)
            level += 1
            if level == len(self._levels):
                break

    def _compact(self, level: int) -> None:
        buffer = sorted(self._levels[level])
        keep_odd = self._rng.getrandbits(1)
        promoted = buffer[keep_odd::2]
        self._levels[level] = []
        if level + 1 == len(self._levels):
            self._levels.append([])
        self._levels[level + 1].extend(promoted)
        self.compactions += 1

    # -- queries (controller-side) -------------------------------------------

    def _weighted_items(self) -> List[Tuple[int, int]]:
        items: List[Tuple[int, int]] = []
        for level, buffer in enumerate(self._levels):
            weight = 1 << level
            items.extend((value, weight) for value in buffer)
        items.sort(key=lambda pair: pair[0])
        return items

    def quantile(self, fraction: float) -> int:
        """The value at the given rank fraction (0 < fraction < 1)."""
        if not 0 < fraction < 1:
            raise ValueRangeError("fraction must be in (0, 1)")
        items = self._weighted_items()
        if not items:
            raise ValueRangeError("empty sketch")
        total = sum(weight for _, weight in items)
        target = fraction * total
        running = 0
        for value, weight in items:
            running += weight
            if running >= target:
                return value
        return items[-1][0]

    def rank(self, value: int) -> float:
        """Estimated fraction of observations ``<= value``."""
        items = self._weighted_items()
        if not items:
            return 0.0
        total = sum(weight for _, weight in items)
        below = sum(weight for v, weight in items if v <= value)
        return below / total

    @property
    def items_stored(self) -> int:
        """Resident items across all levels."""
        return sum(len(buffer) for buffer in self._levels)

    @property
    def bytes_used(self) -> int:
        """Worst-case allocated memory: every level's full buffer."""
        return len(self._levels) * self.k * self.item_bytes

    def __repr__(self) -> str:
        return (
            f"KLLSketch(k={self.k}, levels={len(self._levels)}, "
            f"items={self.items_stored}, n={self.count})"
        )
