"""Baseline architectures the paper compares against (or builds on).

- :mod:`repro.baselines.countmin` — the sketch substrate.
- :mod:`repro.baselines.sketch_only` — the Figure-1b pull architecture.
- :mod:`repro.baselines.threshold` — static in-switch thresholding.
"""

from repro.baselines.countmin import CountMinSketch
from repro.baselines.hybrid import HybridApp, HybridController, build_hybrid_app
from repro.baselines.quantile_sketch import KLLSketch
from repro.baselines.sketch_only import (
    SketchOnlyApp,
    SketchPollingController,
    build_sketch_only_app,
)
from repro.baselines.threshold import ThresholdApp, build_threshold_app

__all__ = [
    "CountMinSketch",
    "KLLSketch",
    "HybridApp",
    "HybridController",
    "build_hybrid_app",
    "SketchOnlyApp",
    "SketchPollingController",
    "build_sketch_only_app",
    "ThresholdApp",
    "build_threshold_app",
]
