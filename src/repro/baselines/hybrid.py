# p4-ok-file — host-side baseline model, not data-plane code.
"""The hybrid architecture the paper's Sec. 5 envisions.

"future monitoring systems will profitably combine in-switch and
controller-based techniques. For example, they may use in-switch anomaly
detection to decide when a controller should extract sketches from
switches, e.g., to properly process a received alert."

Data plane: a Stat4 rate monitor (the push detector) *plus* a count-min
sketch of per-destination traffic that nobody reads during normal
operation.  Controller: on a spike digest it pulls the sketch **once** and
identifies the heavy destination host-side — one control round trip,
instead of either continuous pulling (Figure 1b) or two binding-table
rebind cycles (the Sec. 4 drill-down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.countmin import CountMinSketch
from repro.controller.base import Controller
from repro.netsim.messages import RegisterReadReply
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import Digest, PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

__all__ = ["HybridApp", "build_hybrid_app", "HybridController"]


@dataclass
class HybridApp:
    """The hybrid data plane and its handles."""

    program: PipelineProgram
    stat4: Stat4
    sketch: CountMinSketch
    sketch_registers: List[str]


def build_hybrid_app(
    interval: float = 0.008,
    window: int = 100,
    k_sigma: int = 2,
    margin: int = 3,
    min_samples: int = 5,
    cooldown: float = 0.1,
    sketch_width: int = 512,
    sketch_depth: int = 3,
    prefix: str = "10.0.0.0",
    prefix_len: int = 8,
) -> HybridApp:
    """Stat4 spike monitor + passive count-min of per-destination packets."""
    config = Stat4Config(
        counter_num=1, counter_size=max(window, 64), binding_stages=1
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)
    spec = runtime.rate_over_time(
        dist=0,
        interval=interval,
        k_sigma=k_sigma,
        alert="traffic_spike",
        min_samples=min_samples,
        margin=margin,
        cooldown=cooldown,
        window=window,
    )
    runtime.bind(0, BindingMatch.ipv4_prefix(prefix, prefix_len), spec)
    sketch = CountMinSketch(
        width=sketch_width, depth=sketch_depth, registers=registers, name="hy_cms"
    )

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        if ctx.parsed.has("ipv4"):
            sketch.update(ctx.parsed["ipv4"].get("dst"))
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_hybrid",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    return HybridApp(
        program=program,
        stat4=stat4,
        sketch=sketch,
        sketch_registers=[row.name for row in sketch.rows],
    )


class HybridController(Controller):
    """Pulls the sketch exactly once per alert and names the heavy key.

    Args:
        name: node name.
        candidates: destination addresses the operator cares about (the
            controller knows its own network; full key recovery would use
            a reversible sketch, out of scope here).
        sketch_registers: register names of the count-min rows.
        sketch_width: row width (to rebuild the query function).
    """

    def __init__(
        self,
        name: str,
        candidates: Sequence[int],
        sketch_registers: Sequence[str],
        sketch_width: int = 512,
    ):
        super().__init__(name)
        self.candidates = list(candidates)
        self.sketch_registers = list(sketch_registers)
        self.sketch_width = sketch_width
        self.alert_seen_at: Optional[float] = None
        self.identified: Optional[int] = None
        self.identified_at: Optional[float] = None
        self.pulls = 0

    def on_digest(self, switch: str, digest: Digest, now: float) -> None:
        """One alert → one sketch pull."""
        if digest.name != "traffic_spike" or self.alert_seen_at is not None:
            return
        self.alert_seen_at = now
        self.pulls += 1
        self.read_registers(self.sketch_registers, callback=self._on_sketch)

    def _on_sketch(self, reply: RegisterReadReply) -> None:
        assert self.network is not None
        rows = [reply.values[name] for name in self.sketch_registers]
        # Rebuild count-min point queries host-side.
        from repro.baselines.countmin import _DEFAULT_SEEDS

        def query(key: int) -> int:
            estimate = None
            for row, seed in zip(rows, _DEFAULT_SEEDS):
                hashed = (key * seed) & 0xFFFFFFFFFFFFFFFF
                index = (hashed * self.sketch_width) >> 64
                value = row[index]
                estimate = value if estimate is None else min(estimate, value)
            return estimate or 0
        self.identified = max(self.candidates, key=query)
        self.identified_at = self.network.sim.now

    @property
    def pinpoint_latency(self) -> Optional[float]:
        """Alert arrival → victim identified (one pull round trip)."""
        if self.alert_seen_at is None or self.identified_at is None:
            return None
        return self.identified_at - self.alert_seen_at
