# p4-ok-file — host-side baseline model, not data-plane code.
"""Static in-switch thresholding — the pre-Stat4 detector.

Prior in-switch detection "use[s] basic algorithms such as thresholding to
detect specific anomalies" (Sec. 1).  This baseline fires a digest whenever
an interval's packet count exceeds a fixed ``threshold`` installed by the
operator.  It shares the interval machinery with the sketch-only app so the
comparison isolates the detection rule: a static threshold must be retuned
whenever the baseline load changes, while Stat4's mean + 2σ adapts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext

__all__ = ["ThresholdApp", "build_threshold_app"]


@dataclass
class ThresholdApp:
    """The thresholding data plane and its knobs."""

    program: PipelineProgram
    interval: float
    threshold: int


def build_threshold_app(
    threshold: int,
    interval: float = 0.008,
    alert: str = "threshold_exceeded",
    cooldown: float = 0.1,
) -> ThresholdApp:
    """Build a static-threshold interval monitor.

    Args:
        threshold: packets per interval above which to alert.
        interval: interval length in seconds.
        alert: digest stream name.
        cooldown: minimum seconds between alerts.
    """
    registers = RegisterFile()
    current = registers.declare("th_current", 64, 1)
    state = {"start": None, "last_alert": None}

    def ingress(ctx: PacketContext) -> None:
        now = ctx.meta.timestamp
        if state["start"] is None:
            state["start"] = now
        elif now - state["start"] >= interval:
            count = current.read(0)
            last = state["last_alert"]
            if count > threshold and (last is None or now - last >= cooldown):
                state["last_alert"] = now
                ctx.emit_digest(alert, count=count, threshold=threshold)
            current.write(0, 0)
            state["start"] = state["start"] + interval
            if now - state["start"] >= interval:
                state["start"] = now
        current.add(0, 1)
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="static_threshold",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    return ThresholdApp(program=program, interval=interval, threshold=threshold)
