"""Count-min sketch — the canonical data structure of the sketch-only world.

The paper's Figure-1b architecture keeps "custom sketches" in the data
plane for the controller to pull.  A count-min sketch is the standard
choice for per-key counts (heavy hitters, per-prefix volumes), so the
sketch-only baseline deploys one next to its interval counters.

The implementation is register-backed: ``depth`` rows each live in one
:class:`~repro.p4.registers.RegisterArray` of ``width`` cells, updated with
pairwise-independent universal hashes (multiply-shift — P4 can do constant
multiplies).  Optional conservative update reduces overestimation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.p4.errors import ValueRangeError
from repro.p4.registers import RegisterArray, RegisterFile

__all__ = ["CountMinSketch"]

# 64-bit odd multipliers for multiply-shift hashing (fixed, compile-time).
_DEFAULT_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0xD6E8FEB86659FD93,
    0xA0761D6478BD642F,
    0xE7037ED1A0B428DB,
)


class CountMinSketch:
    """A register-backed count-min sketch.

    Args:
        width: cells per row (power of two recommended; the index is the
            top ``log2(width)`` bits of the hash, a shift).
        depth: number of rows/hashes (≤ 6 with the default seed set).
        registers: register file to allocate rows in (None = private).
        name: register name prefix.
        conservative: apply conservative update (only raise the minimum).
        cell_width: bit width of each counter cell.
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 3,
        registers: Optional[RegisterFile] = None,
        name: str = "cms",
        conservative: bool = False,
        cell_width: int = 32,
    ):
        if width <= 0:
            raise ValueRangeError("sketch width must be positive")
        if not 0 < depth <= len(_DEFAULT_SEEDS):
            raise ValueRangeError(
                f"sketch depth must be in [1, {len(_DEFAULT_SEEDS)}]"
            )
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._seeds = _DEFAULT_SEEDS[:depth]
        owner = registers if registers is not None else RegisterFile()
        self.registers = owner
        self.rows: List[RegisterArray] = [
            owner.declare(f"{name}_row{row}", cell_width, width)
            for row in range(depth)
        ]
        self.updates = 0

    def _index(self, key: int, seed: int) -> int:
        # Multiply-shift universal hashing, folded into the row width.
        hashed = (key * seed) & 0xFFFFFFFFFFFFFFFF
        return (hashed * self.width) >> 64

    def update(self, key: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        if count < 0:
            raise ValueRangeError("count-min counts are non-negative")
        self.updates += 1
        if self.conservative:
            indices = [self._index(key, seed) for seed in self._seeds]
            current = [row.read(i) for row, i in zip(self.rows, indices)]
            target = min(current) + count
            for row, i, value in zip(self.rows, indices, current):
                if target > value:
                    row.write(i, target)
        else:
            for row, seed in zip(self.rows, self._seeds):
                row.add(self._index(key, seed), count)

    def query(self, key: int) -> int:
        """Point estimate: the minimum over the rows (never underestimates)."""
        return min(
            row.read(self._index(key, seed))
            for row, seed in zip(self.rows, self._seeds)
        )

    def heavy_keys(self, candidates: Sequence[int], threshold: int) -> List[int]:
        """Candidates whose estimate meets the threshold (controller-side)."""
        return [key for key in candidates if self.query(key) >= threshold]

    @property
    def bytes_used(self) -> int:
        """Total sketch memory."""
        return sum(row.bytes_used for row in self.rows)
