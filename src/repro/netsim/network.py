# p4-ok-file — host-side network simulator, not data-plane code.
"""Topology wiring: nodes, ports, and delay links.

A :class:`Network` owns a :class:`~repro.netsim.events.Simulator` and a set
of named nodes.  Ports are wired pairwise with a per-link one-way delay
(and an optional serialization rate); transmitting on a port schedules the
peer's ``receive`` after the delay.  The control channel between switch and
controller is just another link — its delay is the knob behind the paper's
observation that drill-down "typically takes 2-3 seconds because of the
interaction between the control and data planes".

Links carry either data-plane :class:`~repro.p4.packet.Packet` objects or
small control messages (digest notifications, table operations); the
byte-overhead accounting that the reactivity experiment bills pull-based
monitoring by lives on the link, so both kinds of traffic are charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, Tuple

from repro.netsim.events import Simulator

__all__ = ["Node", "Link", "Network", "WiringError"]


class WiringError(Exception):
    """Raised on invalid topology construction or transmission."""


class Node(Protocol):
    """Anything attachable to a network."""

    name: str

    def attach(self, network: "Network") -> None:
        """Called when the node joins the network."""
        ...

    def receive(self, message: Any, port: int, now: float) -> None:
        """Called when a message arrives on one of the node's ports."""
        ...


@dataclass
class Link:
    """One direction of a wired port pair.

    Attributes:
        peer: receiving node.
        peer_port: port on the receiving node.
        delay: one-way propagation delay in seconds.
        bytes_per_second: serialization rate; None models an unloaded link
            where only propagation delay matters.
    """

    peer: Any
    peer_port: int
    delay: float
    bytes_per_second: Optional[float] = None
    messages: int = 0
    bytes_carried: int = 0

    def latency_for(self, size_bytes: int) -> float:
        """Propagation plus (optional) serialization delay."""
        if self.bytes_per_second is None or size_bytes == 0:
            return self.delay
        return self.delay + size_bytes / self.bytes_per_second


class Network:
    """Nodes plus links plus the shared event clock."""

    def __init__(self, simulator: Optional[Simulator] = None):
        self.sim = simulator if simulator is not None else Simulator()
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, int], Link] = {}

    # -- construction -----------------------------------------------------------

    def add(self, node: Node) -> Node:
        """Attach a node; names must be unique."""
        if node.name in self._nodes:
            raise WiringError(f"node {node.name!r} already attached")
        self._nodes[node.name] = node
        node.attach(self)
        return node

    def node(self, name: str) -> Node:
        """Look up an attached node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise WiringError(f"no node named {name!r}") from None

    def connect(
        self,
        node_a: Node,
        port_a: int,
        node_b: Node,
        port_b: int,
        delay: float = 0.0001,
        bytes_per_second: Optional[float] = None,
    ) -> None:
        """Wire two ports together bidirectionally with the same delay."""
        for node, port in ((node_a, port_a), (node_b, port_b)):
            if node.name not in self._nodes:
                raise WiringError(f"attach {node.name!r} before wiring it")
            if (node.name, port) in self._links:
                raise WiringError(f"{node.name!r} port {port} already wired")
        self._links[(node_a.name, port_a)] = Link(
            peer=node_b, peer_port=port_b, delay=delay, bytes_per_second=bytes_per_second
        )
        self._links[(node_b.name, port_b)] = Link(
            peer=node_a, peer_port=port_a, delay=delay, bytes_per_second=bytes_per_second
        )

    def wire_star(
        self,
        center: Node,
        leaves: Dict[str, int],
        delay: float = 0.0001,
        bytes_per_second: Optional[float] = None,
    ) -> Dict[str, int]:
        """Wire ``center`` to each leaf's given port, one center port per leaf.

        The shape of every control plane here: one controller (or traffic
        source) fanning out to N switches.  Center ports are allocated
        densely from 0 in the leaves' iteration order; the returned mapping
        ``{leaf_name: center_port}`` is what multi-port nodes like
        :class:`~repro.controller.aggregate.AggregatingController` take as
        their ``switch_ports``.

        Args:
            center: hub node (attached first if necessary).
            leaves: ``{leaf_name: leaf_port}`` — the port on each *leaf* to
                wire (e.g. every switch's CPU port).
            delay: per-link one-way delay.
            bytes_per_second: per-link serialization rate.
        """
        if center.name not in self._nodes:
            self.add(center)
        ports: Dict[str, int] = {}
        for center_port, (leaf_name, leaf_port) in enumerate(leaves.items()):
            self.connect(
                center,
                center_port,
                self.node(leaf_name),
                leaf_port,
                delay=delay,
                bytes_per_second=bytes_per_second,
            )
            ports[leaf_name] = center_port
        return ports

    def link_of(self, node: Node, port: int) -> Link:
        """The outgoing link on a node's port."""
        try:
            return self._links[(node.name, port)]
        except KeyError:
            raise WiringError(f"{node.name!r} port {port} is not wired") from None

    # -- transmission --------------------------------------------------------------

    def transmit(self, sender: Node, port: int, message: Any) -> None:
        """Send ``message`` out of ``sender``'s ``port``.

        Delivery is scheduled after the link delay; unwired ports raise, as
        a misconfigured topology is an experiment bug, not a network drop.
        """
        link = self.link_of(sender, port)
        size = len(message) if hasattr(message, "__len__") else 64
        link.messages += 1
        link.bytes_carried += size
        arrival_delay = link.latency_for(size)
        peer, peer_port = link.peer, link.peer_port

        def deliver():
            peer.receive(message, peer_port, self.sim.now)

        self.sim.schedule(arrival_delay, deliver)

    # -- execution ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run the shared simulator (see :meth:`Simulator.run`)."""
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def total_control_bytes(self, node_name: str) -> int:
        """Bytes carried by every link touching ``node_name`` (overhead
        accounting for controllers)."""
        total = 0
        for (name, _), link in self._links.items():
            if name == node_name:
                total += link.bytes_carried
        return total
