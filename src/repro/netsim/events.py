# p4-ok-file — host-side network simulator, not data-plane code.
"""A minimal discrete-event simulator.

Replaces the paper's Mininet/OVS emulation (Figure 6): instead of wall-clock
veth links, events carry explicit timestamps, which makes detection
latencies *measurable by construction* — the case-study experiment reads
"the switch detected the spike in the first interval after onset" directly
off the event times.

The scheduler is a plain binary heap with a monotonically increasing
sequence number to keep same-time events FIFO (deterministic runs for a
fixed seed are a test invariant).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised on invalid scheduling (e.g. into the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _EventHandle:
    """Returned by schedule(); allows cancelling a pending event."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """When the event is due."""
        return self._event.time


class Simulator:
    """Runs callbacks in timestamp order, advancing a virtual clock."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s into the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _EventHandle:
        """Schedule ``callback`` at an absolute time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = _Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return _EventHandle(event)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the queue drains or the horizon is reached.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until``).  None runs to quiescence.
            max_events: hard cap against runaway event loops.

        Raises:
            SimulationError: if ``max_events`` is exhausted.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)
