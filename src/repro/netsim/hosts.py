"""End hosts for the simulated topologies.

:class:`Host` is the minimal endpoint: it can send packets into the network
and records everything it receives (with receive timestamps), which is all
the validation experiment's echo host (Figure 5) and the case study's
destinations (Figure 6) need.  Subclasses hook :meth:`on_packet` for custom
behaviour.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.netsim.network import Network
from repro.p4.packet import Packet

__all__ = ["Host"]


class Host:
    """A single-homed endpoint.

    Args:
        name: node name.
        ip: the host's IPv4 address as an int (optional; experiment sugar).
        mac: the host's MAC as an int.
    """

    def __init__(self, name: str, ip: Optional[int] = None, mac: int = 0):
        self.name = name
        self.ip = ip
        self.mac = mac
        self.network: Optional[Network] = None
        self.received: List[Tuple[float, Packet]] = []
        self.sent = 0

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    def send(self, packet: Packet, port: int = 0) -> None:
        """Transmit a packet out of the host's (single) port."""
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached")
        self.sent += 1
        self.network.transmit(self, port, packet)

    def send_at(self, time: float, packet: Packet, port: int = 0) -> None:
        """Schedule a transmission at an absolute simulation time."""
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached")
        self.network.sim.schedule_at(time, lambda: self.send(packet, port))

    def receive(self, message: Any, port: int, now: float) -> None:
        """Record arrivals; non-packet control messages are ignored."""
        if isinstance(message, Packet):
            self.received.append((now, message))
            self.on_packet(message, port, now)

    def on_packet(self, packet: Packet, port: int, now: float) -> None:
        """Hook for subclasses; default does nothing further."""

    @property
    def packets_received(self) -> int:
        """Convenience counter."""
        return len(self.received)

    def __repr__(self) -> str:
        return f"Host({self.name!r})"
