"""A plain L3 forwarder — the stand-in for the OVS boxes of Figure 6.

The paper's emulated topology interposes two Open vSwitch instances between
the P4 switch and the destinations.  They do no monitoring; they only
forward.  :class:`StaticForwarder` reproduces that role with a static
longest-prefix routing table (implemented with the same
:class:`~repro.p4.tables.Table` machinery, exact where possible).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.netsim.network import Network
from repro.p4 import headers as hdr
from repro.p4.packet import Packet
from repro.p4.parser import standard_parser
from repro.p4.tables import ActionSpec, Table, lpm_key

__all__ = ["StaticForwarder"]


class StaticForwarder:
    """Forwards IPv4 packets by longest-prefix match on the destination.

    Args:
        name: node name.
        routes: ``prefix string -> port`` map, e.g. ``{"10.0.1.1/32": 2}``.
    """

    def __init__(self, name: str, routes: Dict[str, int]):
        self.name = name
        self.network: Optional[Network] = None
        self._parser = standard_parser()
        self.table = Table(
            name=f"{name}_routes",
            keys=[lpm_key("dst", 32)],
            actions=[ActionSpec("fwd", ("port",))],
            max_size=1024,
        )
        for prefix, port in routes.items():
            address, _, length = prefix.partition("/")
            self.table.add_entry(
                [(hdr.ip_to_int(address), int(length))], "fwd", {"port": port}
            )
        self.forwarded = 0
        self.dropped = 0

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    def receive(self, message: Any, port: int, now: float) -> None:
        """Route one packet (non-packets and misses are dropped)."""
        if not isinstance(message, Packet):
            return
        assert self.network is not None
        try:
            parsed = self._parser.parse(message)
        except Exception:
            self.dropped += 1
            return
        if not parsed.has("ipv4"):
            self.dropped += 1
            return
        entry = self.table.lookup([parsed["ipv4"].get("dst")])
        if entry is None:
            self.dropped += 1
            return
        self.forwarded += 1
        self.network.transmit(self, entry.params["port"], message)

    def __repr__(self) -> str:
        return f"StaticForwarder({self.name!r})"
