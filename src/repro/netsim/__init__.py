"""Discrete-event network simulation substrate.

Replaces the paper's Mininet/OVS emulation: explicit virtual time, delay
links, end hosts, behavioral switches, and a switch↔controller control
channel whose latency and byte counts are first-class measurements.
"""

from repro.netsim.events import SimulationError, Simulator
from repro.netsim.hosts import Host
from repro.netsim.messages import (
    ControlMessage,
    DigestMessage,
    RegisterReadReply,
    RegisterReadRequest,
    TableAdd,
    TableDelete,
    TableModify,
)
from repro.netsim.network import Link, Network, WiringError
from repro.netsim.switchnode import SwitchNode

__all__ = [
    "Simulator",
    "SimulationError",
    "Host",
    "Network",
    "Link",
    "WiringError",
    "SwitchNode",
    "ControlMessage",
    "DigestMessage",
    "TableAdd",
    "TableModify",
    "TableDelete",
    "RegisterReadRequest",
    "RegisterReadReply",
]
