# p4-ok-file — host-side network simulator, not data-plane code.
"""Control-channel messages between switches and controllers.

The Figure-1 architectures differ only in *what* crosses this channel:

- the envisioned approach (1c) pushes tiny :class:`DigestMessage` alerts up,
  and sends :class:`TableAdd`/:class:`TableModify` down to retune binding
  tables at runtime;
- the sketch-only baseline (1b) sends :class:`RegisterReadRequest` polls
  down and hauls full :class:`RegisterReadReply` dumps up.

Each message reports a wire size so link accounting can compare the
overhead of the two architectures — the crux of the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.p4.switch import Digest

__all__ = [
    "ControlMessage",
    "DigestMessage",
    "TableAdd",
    "TableModify",
    "TableDelete",
    "RegisterReadRequest",
    "RegisterReadReply",
]


@dataclass
class ControlMessage:
    """Base class: anything crossing the switch-controller channel."""

    def __len__(self) -> int:  # pragma: no cover - overridden
        return 64


@dataclass
class DigestMessage(ControlMessage):
    """A data-plane alert pushed to the controller (Figure 1c, step 1)."""

    switch: str
    digest: Digest

    def __len__(self) -> int:
        # Digest header plus a few integers; matches P4 digest sizing.
        return 16 + 8 * len(self.digest.fields)


@dataclass
class TableAdd(ControlMessage):
    """Controller installs a (binding) table entry at runtime."""

    table: str
    matches: Tuple[Any, ...]
    action: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    request_id: int = 0

    def __len__(self) -> int:
        return 48 + 8 * (len(self.matches) + len(self.params))


@dataclass
class TableModify(ControlMessage):
    """Controller rewrites an installed entry (the drill-down refinement)."""

    table: str
    entry_id: int
    matches: Any = None
    action: Any = None
    params: Any = None
    request_id: int = 0

    def __len__(self) -> int:
        return 48


@dataclass
class TableDelete(ControlMessage):
    """Controller removes an installed entry."""

    table: str
    entry_id: int

    def __len__(self) -> int:
        return 24


@dataclass
class RegisterReadRequest(ControlMessage):
    """Sketch-only pull: the controller asks for a register dump."""

    registers: Sequence[str]
    request_id: int = 0

    def __len__(self) -> int:
        return 16 + 8 * len(self.registers)


@dataclass
class RegisterReadReply(ControlMessage):
    """The dump itself — this is the heavy direction of a pull."""

    values: Dict[str, List[int]]
    request_id: int = 0
    read_latency: float = 0.0

    def __len__(self) -> int:
        cells = sum(len(v) for v in self.values.values())
        return 16 + 4 * cells
