# p4-ok-file — host-side network simulator, not data-plane code.
"""A behavioral switch attached to the simulated network.

:class:`SwitchNode` bridges the two substrates: data-plane packets arriving
on wired ports run through the :class:`~repro.p4.switch.BehavioralSwitch`
pipeline and leave on the ports the program selected; digests the pipeline
emits are pushed out of the CPU port as :class:`DigestMessage`s; and control
messages arriving *on* the CPU port (table operations, register reads) are
applied against the program with realistic costs — register dumps take
``register_read_seconds`` per cell before the reply leaves, modelling the
paper's "reading thousands of registers takes several milliseconds".
"""

from __future__ import annotations

from typing import Any, Optional

from repro.netsim.messages import (
    DigestMessage,
    RegisterReadReply,
    RegisterReadRequest,
    TableAdd,
    TableDelete,
    TableModify,
)
from repro.netsim.network import Network, WiringError
from repro.p4.packet import Packet
from repro.p4.pipeline import PipelineProgram
from repro.p4.switch import CPU_PORT, BehavioralSwitch

__all__ = ["SwitchNode"]

#: Default per-register-cell read cost: 2500 cells ≈ 2.5 ms, in the "several
#: milliseconds for thousands of registers" band the paper cites.
DEFAULT_REGISTER_READ_SECONDS = 1e-6


class SwitchNode:
    """A :class:`BehavioralSwitch` living inside a :class:`Network`.

    Args:
        name: node name.
        program: the deployed pipeline program.
        register_read_seconds: per-cell cost charged before a register dump
            reply is sent on the CPU port.
    """

    def __init__(
        self,
        name: str,
        program: PipelineProgram,
        register_read_seconds: float = DEFAULT_REGISTER_READ_SECONDS,
    ):
        self.name = name
        self.switch = BehavioralSwitch(name, program)
        self.register_read_seconds = register_read_seconds
        self.network: Optional[Network] = None
        self.digests_pushed = 0
        self.control_ops = 0

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    # -- message dispatch ---------------------------------------------------

    def receive(self, message: Any, port: int, now: float) -> None:
        """Dispatch data-plane packets vs control-plane operations."""
        if isinstance(message, Packet):
            self._handle_packet(message, port, now)
        elif port == CPU_PORT:
            self._handle_control(message, now)
        # Anything else (a control message on a data port) is ignored, as a
        # switch ASIC would discard an unparseable frame.

    def _handle_packet(self, packet: Packet, port: int, now: float) -> None:
        output = self.switch.process(packet, port, now)
        assert self.network is not None
        for out_port, out_packet in output.sends:
            if out_port == CPU_PORT:
                # Punted packets ride the control channel if it is wired.
                self._push_control(out_packet)
                continue
            self.network.transmit(self, out_port, out_packet)
        for digest in output.digests:
            self.digests_pushed += 1
            self._push_control(DigestMessage(switch=self.name, digest=digest))

    def _push_control(self, message: Any) -> None:
        assert self.network is not None
        try:
            self.network.transmit(self, CPU_PORT, message)
        except WiringError:
            # No controller attached: digests fall on the floor, like a P4
            # digest stream nobody subscribed to.
            pass

    def ingest_batch(self, batch: Any, engine: Any) -> Any:
        """Run a :class:`~repro.stat4.batch.PacketBatch` through a batch engine.

        The monitoring fast path: the batch updates the Stat4 registers
        (bit-identically to per-packet processing) and every digest it
        produces is pushed out of the CPU port exactly as the scalar
        pipeline would push it.  Packet *forwarding* is bypassed — batched
        ingestion models a monitoring tap, not the forwarding path.

        Returns the engine's :class:`~repro.stat4.batch.BatchResult`.
        """
        result = engine.process(batch)
        for digest in result.digests:
            self.digests_pushed += 1
            self._push_control(DigestMessage(switch=self.name, digest=digest))
        return result

    # -- control plane -----------------------------------------------------------

    def _handle_control(self, message: Any, now: float) -> None:
        self.control_ops += 1
        if isinstance(message, TableAdd):
            self.switch.table(message.table).add_entry(
                message.matches,
                message.action,
                message.params,
                priority=message.priority,
            )
        elif isinstance(message, TableModify):
            self.switch.table(message.table).modify_entry(
                message.entry_id,
                matches=message.matches,
                action=message.action,
                params=message.params,
            )
        elif isinstance(message, TableDelete):
            self.switch.table(message.table).delete_entry(message.entry_id)
        elif isinstance(message, RegisterReadRequest):
            self._serve_register_read(message)

    def _serve_register_read(self, request: RegisterReadRequest) -> None:
        assert self.network is not None
        values = {}
        cells = 0
        for name in request.registers:
            dump = self.switch.read_registers(name)
            values[name] = dump
            cells += len(dump)
        latency = cells * self.register_read_seconds
        reply = RegisterReadReply(
            values=values, request_id=request.request_id, read_latency=latency
        )

        def respond():
            self._push_control(reply)

        self.network.sim.schedule(latency, respond)

    # -- convenience -----------------------------------------------------------

    def table(self, name: str):
        """Direct (test-time) control-plane handle to a table."""
        return self.switch.table(name)

    def __repr__(self) -> str:
        return f"SwitchNode({self.name!r})"
