# p4-ok-file — host-side cluster scale-out package.
"""Multi-switch scale-out: one logical Stat4 sharded across N switches.

See :mod:`repro.cluster.sharded` for the routing/merging engine,
:mod:`repro.cluster.hashing` for the deterministic key router, and
:mod:`repro.cluster.topology` for deploying a cluster into the netsim.
"""

from repro.cluster.hashing import fnv1a64, shard_of
from repro.cluster.sharded import ClusterResult, MergedDistribution, ShardedStat4
from repro.cluster.topology import ClusterDeployment, deploy_cluster

__all__ = [
    "fnv1a64",
    "shard_of",
    "ClusterResult",
    "MergedDistribution",
    "ShardedStat4",
    "ClusterDeployment",
    "deploy_cluster",
]
