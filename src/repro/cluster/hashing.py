# p4-ok-file — host-side cluster routing, not data-plane code.
"""Deterministic shard routing for the cluster scale-out.

One logical Stat4 deployment split across N switches needs a *stable*
assignment of traffic to shards: the same binding key must land on the same
shard in every run, on every Python version, on every machine — otherwise
register state is not reproducible and the differential tests against the
single-switch oracle are meaningless.  Python's builtin ``hash`` is salted
per process for strings and makes no cross-version promises, so the router
uses an explicit FNV-1a over the composite binding key's integer fields.

On hardware this is exactly the kind of hash a load balancer or a
network-wide monitoring plane (Tang et al.'s invertible-sketch deployments)
computes from header fields to pick the recording switch; here it picks the
:class:`~repro.stat4.library.Stat4` shard that owns the packet.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["fnv1a64", "shard_of"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a64(parts: Iterable[int], seed: int = 0) -> int:
    """FNV-1a over a sequence of non-negative integers, 8 bytes each.

    Each part is folded in as its 8 little-endian bytes (values wider than
    64 bits contribute their low 64).  ``seed`` perturbs the initial basis
    so a deployment can re-shuffle shard ownership without changing code.
    """
    acc = (_FNV_OFFSET ^ (seed & _MASK64)) & _MASK64
    for part in parts:
        value = part & _MASK64
        for _ in range(8):
            acc = ((acc ^ (value & 0xFF)) * _FNV_PRIME) & _MASK64
            value >>= 8
    return acc


def shard_of(key: Tuple[int, int, int, int], shards: int, seed: int = 0) -> int:
    """The shard that owns a composite binding key.

    Args:
        key: the ``(ether_type, ipv4_dst, ip_protocol, tcp_flags)`` tuple
            :func:`~repro.stat4.binding.binding_key_of` assembles.
        shards: cluster size; must be positive.
        seed: optional reshuffling seed (see :func:`fnv1a64`).

    Deterministic across processes and Python versions.  All packets of one
    binding key land on one shard, so any distribution fed by a single key
    (e.g. a time-series rate on one flow) lives wholly on its owner shard
    and merges trivially.
    """
    if shards <= 0:
        raise ValueError(f"shard count must be positive, got {shards}")
    if shards == 1:
        return 0
    return fnv1a64(key, seed=seed) % shards
