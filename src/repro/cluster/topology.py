# p4-ok-file — host-side cluster topology construction, not data-plane code.
"""Deploying a :class:`~repro.cluster.sharded.ShardedStat4` into the netsim.

:func:`deploy_cluster` turns the in-process cluster engine into an actual
simulated network: one :class:`~repro.netsim.switchnode.SwitchNode` per
shard (each running a pipeline program around that shard's Stat4), plus an
:class:`~repro.controller.aggregate.AggregatingController` star-wired to
every shard's CPU port (:meth:`~repro.netsim.network.Network.wire_star`).
Batches are routed by the cluster's key hash and ingested through each
switch node, so digests ride the control channel with realistic delays, and
register dumps pay the paper's "several milliseconds for thousands of
registers" cost before the controller merges them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.sharded import ClusterResult, ShardedStat4
from repro.controller.aggregate import AggregatingController
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.switch import CPU_PORT
from repro.stat4.batch import BatchEngine, PacketBatch

__all__ = ["ClusterDeployment", "deploy_cluster"]


@dataclass
class ClusterDeployment:
    """A sharded cluster living inside a simulated network.

    Attributes:
        network: the owning network.
        cluster: the routing/merging engine (its ``nodes`` are the very
            Stat4 instances the switch programs run).
        switches: one node per shard, index-aligned with ``cluster.nodes``.
        controller: the merging controller, wired to every CPU port.
    """

    network: Network
    cluster: ShardedStat4
    switches: List[SwitchNode]
    controller: AggregatingController

    def ingest(self, batch: PacketBatch) -> ClusterResult:
        """Route one batch through the shard switch nodes.

        Same state evolution as :meth:`ShardedStat4.ingest`, but every
        digest is pushed out of its switch's CPU port into the simulated
        control channel (run the network to deliver them).
        """
        result = ClusterResult(backend=self.cluster.backend)
        for shard, sub_batch in self.cluster.route(batch).items():
            engine = BatchEngine(self.cluster.nodes[shard], backend=self.cluster.backend)
            shard_result = self.switches[shard].ingest_batch(sub_batch, engine)
            result.per_shard[shard] = shard_result
            result.packets += shard_result.packets
            result.digests.extend((shard, digest) for digest in shard_result.digests)
        self.cluster.packets_routed += len(batch)
        return result

    def collect(self) -> Dict[str, List[int]]:
        """Pull and merge every shard's registers over the control channel.

        Runs the network until the dumps are in; returns the per-switch
        cell vectors (the merged view lives on the controller).
        """
        collected: Dict[str, List[int]] = {}
        self.controller.collect(on_complete=collected.update)
        self.network.run()
        return collected


def deploy_cluster(
    cluster: ShardedStat4,
    network: Network = None,
    name_prefix: str = "shard",
    dist: int = 0,
    control_delay: float = 0.005,
    with_measures: bool = True,
) -> ClusterDeployment:
    """Build the star topology for an existing cluster engine.

    Args:
        cluster: the sharded engine to deploy (bindings may be installed
            before or after deployment — the Stat4 instances are shared).
        network: network to build into (a fresh one when omitted).
        name_prefix: shard nodes are named ``{prefix}0..{prefix}N-1``.
        dist: the distribution slot the controller aggregates.
        control_delay: one-way control-channel delay per shard link.
        with_measures: dump the moment registers alongside the cells so the
            controller can cross-check both merge routes.
    """
    if network is None:
        network = Network()
    switches = []
    for shard, stat4 in enumerate(cluster.nodes):
        def ingress(ctx, _stat4=stat4):
            _stat4.process(ctx)

        program = PipelineProgram(
            name=f"{name_prefix}{shard}_prog",
            parser=standard_parser(),
            registers=stat4.registers,
            ingress=ingress,
        )
        stat4.install_into(program)
        switches.append(network.add(SwitchNode(f"{name_prefix}{shard}", program)))
    controller = AggregatingController(
        "aggregator",
        switch_ports={},
        dist=dist,
        cells=cluster.config.counter_size,
        with_measures=with_measures,
    )
    controller.switch_ports = network.wire_star(
        controller,
        {switch.name: CPU_PORT for switch in switches},
        delay=control_delay,
    )
    return ClusterDeployment(
        network=network, cluster=cluster, switches=switches, controller=controller
    )
