# p4-ok-file — host-side cluster scale-out engine; per-shard data-plane
# semantics live (and are linted) in repro.stat4.library.
"""One logical Stat4 deployment sharded across N switches.

The paper's architecture (Fig. 1c) gives every switch its own autonomous
Stat4; this module is the Sec.-5 scale-out: a :class:`ShardedStat4` that
hash-partitions the binding-key space across N :class:`~repro.stat4.library.Stat4`
instances, routes each :class:`~repro.stat4.batch.PacketBatch` to the owning
shard (re-using the batched kernels per shard), and merges the per-shard
``N``/``Xsum``/``Xsumsq`` and frequency state back into network-wide
statistics through the :mod:`repro.controller.aggregate` merge functions.

What makes the merge *exact* — the scaled-distribution invariant
``σ²_NX = N·Xsumsq − Xsum²`` is preserved bit-for-bit against a
single-switch oracle — depends on the distribution kind:

- **Dense frequency** slots merge their *cell vectors* (counting is
  order-independent, so the merged vector equals the oracle's for any
  traffic split) and recompute the moments from the merged cells with the
  telescoped ``observe_frequency`` identity.  Summing the per-shard
  moments instead would double-count ``N`` and drop the ``(c_A+c_B)²``
  cross terms whenever one value appears on several shards.
- **Time-series** slots merge by *moment summation*: every closed interval
  is one shard's own value, so the per-shard value sets are disjoint and
  plain sums are exact.  Bit-identity against a full-trace oracle
  additionally needs the slot's traffic to be owned by a single shard
  (one binding key — which the key-hash router guarantees), because the
  interval cursor is order-dependent.
- **Sparse frequency** slots merge their resident ``(key, count)`` sets,
  summing per key and recomputing moments; exact while no shard evicted
  (an eviction discards mass no merge can recover — the merged view
  reports the summed eviction counters so callers can check).

The percentile *position* register is a per-packet walk and thus
path-dependent; what merges exactly is the frequency state under it, so the
network-wide percentile is derived from the merged cells with the same
exact rule the tests apply to the oracle's cells
(:func:`~repro.controller.aggregate.percentile_of_cells`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.hashing import shard_of
from repro.controller.aggregate import (
    merge_cells,
    merge_measures,
    merge_sparse_items,
    percentile_of_cells,
    stats_from_items,
    stats_from_cells,
)
from repro.core.stats import ScaledStats
from repro.p4.switch import Digest, PacketContext
from repro.stat4.batch import BatchEngine, BatchResult, PacketBatch, resolve_backend
from repro.stat4.binding import BindingMatch, binding_key_of
from repro.stat4.config import DEFAULT_CONFIG, Stat4Config
from repro.stat4.distributions import DistributionKind, TrackSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import BindingHandle, Stat4Runtime

__all__ = ["ShardedStat4", "ClusterResult", "MergedDistribution"]


@dataclass
class ClusterResult:
    """What one routed batch produced across the cluster.

    Attributes:
        packets: packets ingested over all shards (equals the input batch).
        digests: every ``(shard, digest)`` emitted.  Within a shard the
            digests are in scalar order; the cross-shard interleaving of
            independent switches is not a defined order and is not
            reconstructed.
        per_shard: each shard's :class:`~repro.stat4.batch.BatchResult`,
            keyed by shard index (only shards that received packets appear).
        backend: the batch backend every shard ran.
    """

    packets: int = 0
    digests: List[Tuple[int, Digest]] = field(default_factory=list)
    per_shard: Dict[int, BatchResult] = field(default_factory=dict)
    backend: str = "python"

    @property
    def alerts(self) -> int:
        """Digest count across the cluster."""
        return len(self.digests)


@dataclass
class MergedDistribution:
    """The network-wide view of one sharded distribution slot.

    Attributes:
        dist: the distribution slot.
        kind: the slot's distribution kind (decides the merge rule used).
        stats: exact merged moments (N, Xsum, Xsumsq with lazy σ² and σ).
        cells: merged dense cell vector (frequency and time-series slots).
        items: merged resident ``(key, count)`` pairs (sparse slots).
        percentile: the tracked percentile derived from the merged cells
            (None when the slot tracks no percentile or holds no mass).
        evictions: summed per-shard eviction counters of a sparse slot —
            nonzero means evicted mass left the moments and the merge is an
            estimate, not exact.
    """

    dist: int
    kind: DistributionKind
    stats: ScaledStats
    cells: Optional[List[int]] = None
    items: Optional[List[Tuple[int, int]]] = None
    percentile: Optional[int] = None
    evictions: int = 0

    @property
    def exact(self) -> bool:
        """Whether the merge rule was exact for what the shards held."""
        return self.evictions == 0

    def measures(self) -> Dict[str, int]:
        """The merged measures in :meth:`Stat4.read_measures` shape.

        ``n``/``xsum``/``xsumsq``/``variance``/``stddev`` are bit-identical
        to the oracle's registers under each kind's exactness condition
        (``variance`` and ``stddev`` re-derive through the same integer
        σ²_NX = N·Xsumsq − Xsum² and ``approx_isqrt`` path the data plane
        runs).  The percentile position is intentionally absent — it is
        derived, see :attr:`percentile`.
        """
        return {
            "n": self.stats.count,
            "xsum": self.stats.xsum,
            "xsumsq": self.stats.xsumsq,
            "variance": self.stats.variance_nx,
            "stddev": self.stats.stddev_nx,
        }


class ShardedStat4:
    """One logical Stat4 hash-partitioned across N shard instances.

    Bindings are installed identically on every shard (the composite key
    routing means each shard only ever *sees* its own key range, but the
    rule set is uniform — exactly how one would provision N identical
    switches from one controller).  Batches are routed with
    :func:`~repro.cluster.hashing.shard_of` and run through the batched
    kernels per shard.

    Args:
        shards: cluster size (≥ 1; 1 degenerates to a plain Stat4).
        config: per-shard register geometry — uniform across the cluster,
            the merge functions require equal cell vector lengths.
        backend: batch backend for every shard (``auto``/``numpy``/``compiled``/``python``).
        hash_seed: routing seed (see :func:`~repro.cluster.hashing.fnv1a64`).
    """

    def __init__(
        self,
        shards: int,
        config: Stat4Config = DEFAULT_CONFIG,
        backend: str = "auto",
        hash_seed: int = 0,
    ):
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        self.shard_count = shards
        self.config = config
        self.backend = resolve_backend(backend)
        self.hash_seed = hash_seed
        self.nodes: List[Stat4] = [Stat4(config) for _ in range(shards)]
        self.runtimes: List[Stat4Runtime] = [Stat4Runtime(node) for node in self.nodes]
        #: Message-only runtime: spec-builder sugar without a backing shard.
        self.specs = Stat4Runtime()
        self._bound: Dict[int, TrackSpec] = {}
        self.packets_routed = 0

    # -- provisioning -------------------------------------------------------

    def bind(
        self,
        stage: int,
        match: BindingMatch,
        spec: TrackSpec,
        priority: int = 0,
    ) -> List[BindingHandle]:
        """Install one tracking rule on *every* shard.

        Returns the per-shard handles (index-aligned with :attr:`nodes`).
        """
        handles = [
            runtime.bind(stage, match, spec, priority=priority)[0]
            for runtime in self.runtimes
        ]
        self._bound[spec.dist] = spec
        return handles

    def spec_of(self, dist: int) -> TrackSpec:
        """The spec bound to a slot (raises KeyError when never bound)."""
        return self._bound[dist]

    # -- routing ------------------------------------------------------------

    def shard_of_key(self, key: Tuple[int, int, int, int]) -> int:
        """The shard owning a composite binding key."""
        return shard_of(key, self.shard_count, seed=self.hash_seed)

    def route(self, batch: PacketBatch) -> Dict[int, PacketBatch]:
        """Split a batch into per-owner sub-batches, shard-indexed.

        Row order inside each sub-batch preserves arrival order, so every
        shard processes exactly the subsequence a hash-routed deployment
        would deliver to it.  Shards that own no rows are absent.

        The FNV hash runs once per *unique* key, not once per row: real
        traces repeat a handful of composite binding keys across millions
        of packets, so the routing pass is dict probes, not hashing.
        """
        if self.shard_count == 1:
            return {0: batch} if len(batch) else {}
        groups: Dict[int, List[int]] = {}
        owner_of: Dict[Tuple[int, int, int, int], List[int]] = {}
        seed = self.hash_seed
        shards = self.shard_count
        for index, key in enumerate(batch.keys):
            rows = owner_of.get(key)
            if rows is None:
                shard = shard_of(key, shards, seed=seed)
                rows = groups.setdefault(shard, [])
                owner_of[key] = rows
            rows.append(index)
        return {
            shard: batch.select(indices) for shard, indices in sorted(groups.items())
        }

    # -- ingestion ----------------------------------------------------------

    def ingest(self, batch: PacketBatch, workers: int = 1) -> ClusterResult:
        """Route one batch and run each sub-batch's kernels on its shard.

        With ``workers > 1`` the per-shard engines run on a thread pool:
        shards are shared-nothing (each owns its own :class:`Stat4`, its
        own registers, its own digest sink), so concurrent per-shard
        ingest is race-free, and results are collected in ascending shard
        order — exactly the serial iteration order — which keeps
        ``ClusterResult`` (packet counts, per-shard results, the
        ``(shard, digest)`` sequence) bit-identical to ``workers=1``.
        """
        result = ClusterResult(backend=self.backend)
        routed = self.route(batch)
        if workers > 1 and len(routed) > 1:
            from repro.stat4.parallel import _pool

            pool = _pool("thread", workers)
            futures = {
                shard: pool.submit(self._ingest_shard, shard, sub_batch)
                for shard, sub_batch in routed.items()
            }
            shard_results = {
                shard: future.result() for shard, future in sorted(futures.items())
            }
        else:
            shard_results = {
                shard: self._ingest_shard(shard, sub_batch)
                for shard, sub_batch in routed.items()
            }
        for shard, shard_result in shard_results.items():
            result.per_shard[shard] = shard_result
            result.packets += shard_result.packets
            result.digests.extend((shard, digest) for digest in shard_result.digests)
        self.packets_routed += len(batch)
        return result

    def _ingest_shard(self, shard: int, sub_batch: PacketBatch):
        """Run one shard's batched kernels (the unit a worker executes)."""
        return BatchEngine(self.nodes[shard], backend=self.backend).process(sub_batch)

    def process(self, ctx: PacketContext) -> int:
        """Scalar path: route one parsed packet to its owner shard.

        Returns the shard index that processed it (differential tests use
        this to cross-check the batch router).
        """
        shard = self.shard_of_key(binding_key_of(ctx))
        self.nodes[shard].process(ctx)
        self.packets_routed += 1
        return shard

    # -- merged views --------------------------------------------------------

    def merged(self, dist: int) -> MergedDistribution:
        """The exact network-wide view of one slot (see module docstring)."""
        spec = self.spec_of(dist)
        if spec.kind is DistributionKind.FREQUENCY:
            cells = merge_cells([node.read_cells(dist) for node in self.nodes])
            return MergedDistribution(
                dist=dist,
                kind=spec.kind,
                stats=stats_from_cells(cells),
                cells=cells,
                percentile=(
                    percentile_of_cells(cells, spec.percent)
                    if spec.percent is not None
                    else None
                ),
            )
        if spec.kind is DistributionKind.SPARSE_FREQUENCY:
            items = merge_sparse_items(
                [node.read_sparse_items(dist) for node in self.nodes]
            )
            evictions = sum(node.sparse_cells[dist].evictions for node in self.nodes)
            return MergedDistribution(
                dist=dist,
                kind=spec.kind,
                stats=stats_from_items(items),
                items=items,
                evictions=evictions,
            )
        # TIME_SERIES: disjoint per-shard interval values — moment sums are
        # exact; the merged window cells are exact when one shard owns the
        # slot's key (the router's guarantee for single-key slots).
        stats = merge_measures([node.read_measures(dist) for node in self.nodes])
        cells = merge_cells([node.read_cells(dist) for node in self.nodes])
        return MergedDistribution(dist=dist, kind=spec.kind, stats=stats, cells=cells)

    def merged_measures(self, dist: int) -> Dict[str, int]:
        """Shorthand for ``merged(dist).measures()``."""
        return self.merged(dist).measures()

    # -- diagnostics ---------------------------------------------------------

    def shard_loads(self) -> List[int]:
        """Packets seen per shard (routing balance diagnostics)."""
        return [node.packets_seen for node in self.nodes]

    def __repr__(self) -> str:
        return (
            f"ShardedStat4(shards={self.shard_count}, backend={self.backend!r}, "
            f"packets={self.packets_routed})"
        )
