# p4-ok-file — host-side CLI entry point, not data-plane code.
"""Command-line interface: ``python -m repro <experiment> [options]``.

Each subcommand runs one of the paper's experiments (or an extension) and
prints the same formatted output the benchmarks emit — a convenience for
exploring parameters without writing a script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Stats 101 in P4: Towards In-Switch Anomaly "
            "Detection' (HotNets '21) — experiment runner"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="Table 2: approximate-sqrt error profile")

    table3 = sub.add_parser("table3", help="Table 3: online-median error")
    table3.add_argument("--repetitions", type=int, default=20)
    table3.add_argument(
        "--max-n", type=int, default=65536, help="largest domain size to run"
    )

    validate = sub.add_parser("validate", help="Figure 5: echo validation")
    validate.add_argument("--packets", type=int, default=10_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--batched",
        action="store_true",
        help="differential run: batched ingestion vs the scalar library",
    )
    validate.add_argument(
        "--backend",
        choices=["auto", "numpy", "compiled", "python"],
        default="auto",
        help="batch backend for --batched",
    )
    validate.add_argument(
        "--batch-size", type=int, default=1024, help="chunk size for --batched"
    )
    validate.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker count for --batched (ParallelBatchEngine) and --shards "
            "(per-shard thread fan-out); 1 = serial"
        ),
    )
    validate.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "differential run: route the stream across N switch shards and "
            "check the merged statistics against a single-switch oracle, "
            "bit for bit"
        ),
    )

    case = sub.add_parser("case-study", help="Figure 6: detection + drill-down")
    case.add_argument("--interval", type=float, default=0.008, help="seconds")
    case.add_argument("--window", type=int, default=100)
    case.add_argument("--seed", type=int, default=1)
    case.add_argument("--control-delay", type=float, default=0.02)
    case.add_argument("--processing", type=float, default=0.05)
    case.add_argument("--spike-intervals", type=int, default=80)
    case.add_argument("--poisson", action="store_true")

    sweep = sub.add_parser("sweep", help="Figure 6: interval/window sweep")
    sweep.add_argument("--repetitions", type=int, default=1)

    sub.add_parser("reactivity", help="Figure 1: push vs pull trade-off")
    sub.add_parser("resources", help="Sec. 4: resource consumption report")
    multiswitch = sub.add_parser(
        "multiswitch", help="Sec. 5: sharded cross-switch aggregation"
    )
    multiswitch.add_argument(
        "--shards", type=int, default=4, help="cluster size (switches)"
    )
    sub.add_parser("identify", help="victim-identification strategies")
    sub.add_parser("ablations", help="all design-choice ablations")

    lint = sub.add_parser(
        "lint",
        help=(
            "static analysis: expressibility, widths, binding tables "
            "(ST4xx), concurrency exactness (--concurrency, ST5xx)"
        ),
    )
    lint.add_argument(
        "targets",
        nargs="*",
        help=(
            "deployment .json, P4 .p4 source, Python file, directory, or "
            "dotted module name (e.g. repro.core.stats)"
        ),
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any error-severity diagnostic fires",
    )
    lint.add_argument(
        "--max-value",
        type=int,
        default=None,
        help="worst-case value magnitude for width checks on .p4 targets",
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule index and exit"
    )
    lint.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "add the ST5xx concurrency-exactness pass: kernel-shape "
            "classification, fan-out eligibility drift, shared-state races"
        ),
    )

    bench = sub.add_parser(
        "bench", help="throughput suite: scalar vs batched, BENCH_<rev>.json"
    )
    bench.add_argument(
        "--quick", action="store_true", help="the CI profile (fewer packets)"
    )
    bench.add_argument(
        "--json", action="store_true", help="print the report as JSON on stdout"
    )
    bench.add_argument(
        "--output",
        type=str,
        default=None,
        help="artifact path (default BENCH_<rev>.json in the working dir)",
    )
    bench.add_argument(
        "--backend",
        choices=["auto", "numpy", "compiled", "python"],
        default="auto",
        help="batch backend(s) to measure (auto = every available one)",
    )
    bench.add_argument(
        "--baseline",
        type=str,
        default=None,
        help="compare speedups against this committed baseline file",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative drop below a baseline floor (0.2 = 20%%)",
    )
    bench.add_argument(
        "--history",
        action="store_true",
        help=(
            "append the report to the bench history and print trend deltas "
            "vs the previous revision"
        ),
    )
    bench.add_argument(
        "--history-dir",
        type=str,
        default=None,
        help="history directory (default benchmarks/history)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for the parallel ingest kernels (default 4)",
    )
    bench.add_argument(
        "--pool",
        choices=["thread", "process"],
        default="thread",
        help=(
            "executor for the parallel ingest kernel (the shared-memory "
            "kernel always uses the process pool)"
        ),
    )
    bench.add_argument(
        "--scenarios",
        action="store_true",
        help=(
            "also replay the labeled adversarial scenario suite and report "
            "precision/recall/F1 and detection latency per scenario"
        ),
    )
    bench.add_argument(
        "--scenarios-only",
        action="store_true",
        help="run only the scenario suite (skip the throughput kernels)",
    )
    bench.add_argument(
        "--scenario-baseline",
        type=str,
        default=None,
        help=(
            "compare scenario quality against this committed floors file "
            "(implies --scenarios)"
        ),
    )
    bench.add_argument(
        "--scenario-engine",
        choices=["scalar", "parallel", "bounded", "both"],
        default="scalar",
        help=(
            "replay engine(s) for the scenario suite (default scalar; "
            "'bounded' benches the merge engine without replay fallback, "
            "'both' runs the gated scalar+parallel pair)"
        ),
    )
    bench.add_argument(
        "--staleness",
        choices=["exact", "bounded"],
        default="exact",
        help=(
            "merge-engine reconciliation for the merge_parallel kernel: "
            "exact keeps the replay fallback, bounded skips it"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "always-on streaming detection service: bounded-queue ingest "
            "with an HTTP API (/healthz /stats /alerts /bindings)"
        ),
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="replay a labeled catalog scenario (installs its detector)",
    )
    source.add_argument(
        "--trace", type=str, default=None, help="replay a saved pcap file"
    )
    source.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="PACKETS",
        help="deterministic synthetic generator (PACKETS per loop)",
    )
    source.add_argument(
        "--feed",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="listen for a line-delimited JSON packet feed on this address",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="PPS",
        help="pace replay at this many packets/sec (0 = as fast as possible)",
    )
    serve.add_argument(
        "--loop", action="store_true", help="repeat a finite source forever"
    )
    serve.add_argument("--batch-size", type=int, default=2048)
    serve.add_argument(
        "--engine", choices=["scalar", "parallel"], default="scalar"
    )
    serve.add_argument(
        "--backend", choices=["auto", "numpy", "compiled", "python"], default="auto"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="parallel-engine worker count"
    )
    serve.add_argument(
        "--pool",
        choices=["thread", "process"],
        default="process",
        help="parallel-engine executor",
    )
    serve.add_argument(
        "--staleness",
        choices=["exact", "bounded"],
        default="exact",
        help=(
            "merge-engine reconciliation for tracked+alerting bindings: "
            "exact is bit-identical to scalar, bounded trades digest "
            "exactness for throughput"
        ),
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="bounded ingest queue size (batches in flight)",
    )
    serve.add_argument(
        "--policy",
        choices=["block", "drop"],
        default="block",
        help="backpressure when the queue is full: block the source or shed",
    )
    serve.add_argument(
        "--degraded-after",
        type=float,
        default=5.0,
        help="seconds of ingest silence before /healthz turns degraded",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="HTTP port (0 = pick a free one)"
    )
    serve.add_argument(
        "--exit-when-drained",
        action="store_true",
        help="exit once a finite source is fully applied (CI smoke mode)",
    )

    generate = sub.add_parser(
        "generate", help="emit the P4-16 program for a configuration"
    )
    generate.add_argument("--counter-num", type=int, default=8)
    generate.add_argument("--counter-size", type=int, default=256)
    generate.add_argument("--binding-stages", type=int, default=2)
    generate.add_argument(
        "--output", type=str, default="-", help="file path or - for stdout"
    )
    return parser


def _cmd_table2() -> int:
    from repro.experiments.table2_sqrt import format_table2, run_table2

    print(format_table2(run_table2()))
    return 0


def _cmd_table3(args) -> int:
    from repro.experiments.table3_median import (
        DEFAULT_SIZES,
        format_table3,
        run_table3,
    )

    sizes = [(n, label) for n, label in DEFAULT_SIZES if n <= args.max_n]
    print(format_table3(run_table3(sizes=sizes, repetitions=args.repetitions)))
    return 0


def _cmd_validate(args) -> int:
    from repro.experiments.validation import run_validation

    if args.shards:
        from repro.experiments.validation import run_validation_sharded

        sharded = run_validation_sharded(
            packets=args.packets,
            shards=args.shards,
            seed=args.seed,
            backend=args.backend,
            batch_size=args.batch_size,
            workers=args.workers,
        )
        print(
            f"packets={sharded.packets} shards={sharded.shards} "
            f"backend={sharded.backend} loads={sharded.shard_loads} "
            f"mismatches={len(sharded.mismatches)}"
        )
        for detail in sharded.mismatches:
            print(f"  {detail}")
        print("PASSED" if sharded.passed else "FAILED")
        return 0 if sharded.passed else 1

    if args.batched:
        from repro.experiments.validation import run_validation_batched

        diff = run_validation_batched(
            packets=args.packets,
            seed=args.seed,
            backend=args.backend,
            batch_size=args.batch_size,
            workers=args.workers,
        )
        print(
            f"packets={diff.packets} batches={diff.batches} "
            f"backend={diff.backend} mismatches={len(diff.mismatches)}"
        )
        for detail in diff.mismatches:
            print(f"  {detail}")
        print("PASSED" if diff.passed else "FAILED")
        return 0 if diff.passed else 1

    result = run_validation(packets=args.packets, seed=args.seed)
    print(
        f"replies={result.replies}/{result.packets_sent} "
        f"mismatches={result.mismatches} "
        f"sigma-excess={result.max_sd_relative_error * 100:.2f}%"
    )
    print("PASSED" if result.passed else "FAILED")
    return 0 if result.passed else 1


def _cmd_case_study(args) -> int:
    from repro.experiments.case_study import CaseStudySetup, run_case_study

    setup = CaseStudySetup(
        interval=args.interval,
        window=args.window,
        seed=args.seed,
        control_delay=args.control_delay,
        controller_processing=args.processing,
        spike_intervals=args.spike_intervals,
        poisson=args.poisson,
    )
    result = run_case_study(setup)
    print(f"victim:     {result.victim}")
    print(f"identified: {result.identified}")
    if result.detection_intervals is not None:
        print(f"detected:   {result.detection_intervals:.2f} intervals after onset")
    if result.pinpoint_seconds is not None:
        print(f"pinpoint:   {result.pinpoint_seconds:.2f} s after onset")
    print(f"false alerts before onset: {result.false_alerts_before_onset}")
    for when, what in result.timeline:
        print(f"  t={when:.3f}s {what}")
    return 0 if result.victim_correct else 1


def _cmd_sweep(args) -> int:
    from repro.experiments.case_study import format_sweep, run_case_study_sweep

    results = run_case_study_sweep(repetitions=args.repetitions)
    print(format_sweep(results))
    return 0 if all(r.victim_correct for r in results) else 1


def _cmd_reactivity() -> int:
    from repro.experiments.reactivity import format_reactivity, run_reactivity

    print(format_reactivity(run_reactivity()))
    return 0


def _cmd_resources() -> int:
    from repro.experiments.resources_report import build_case_study_report, summarize

    print(summarize(build_case_study_report()))
    return 0


def _cmd_multiswitch(args) -> int:
    from repro.experiments.multiswitch import run_multiswitch

    result = run_multiswitch(shards=args.shards)
    print(f"shards: {result.shards}  loads: {result.shard_loads}")
    print(f"local alerts: {result.local_alerts}")
    print(f"victim index: {result.victim_index}")
    print(f"merge exact: {'yes' if result.merge_exact else 'NO'}")
    for error in result.merge_errors:
        print(f"  {error}")
    print(f"global outliers: {result.global_outliers}")
    print(f"oracle outliers: {result.oracle_outliers}")
    print(f"control bytes: {result.control_bytes}")
    print("detected: " + ("yes" if result.detected else "NO"))
    return 0 if result.detected else 1


def _cmd_identify() -> int:
    from repro.experiments.hybrid import (
        format_strategies,
        run_identification_comparison,
    )

    print(format_strategies(run_identification_comparison()))
    return 0


def _cmd_ablations() -> int:
    from repro.experiments.ablations import (
        ablate_division_table,
        ablate_lazy_sd,
        ablate_median_steps,
        ablate_square_approx,
        ablate_unit_coarsening,
        format_division_table,
    )

    lazy = ablate_lazy_sd()
    print(f"lazy-sd amortization: {lazy.amortization:.1f}x fewer MSB comparisons")
    square = ablate_square_approx()
    print(
        f"squaring: sigma error {square.mean_sd_error_exact:.3f} (exact) vs "
        f"{square.mean_sd_error_approx:.3f} (shift-approx)"
    )
    for row in ablate_median_steps():
        print(
            f"median steps={row.steps_per_update}: converged after "
            f"{row.samples_to_converge} samples"
        )
    print(format_division_table(ablate_division_table()))
    for row in ablate_unit_coarsening():
        print(
            f"unit 2^{row.unit_shift}: {row.counter_bits_needed} counter bits, "
            f"{row.mean_relative_error * 100:.3f}% error, "
            f"{row.outlier_agreement * 100:.0f}% verdict agreement"
        )
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        Severity,
        analyze_target,
        format_json,
        format_text,
        rule_index,
    )

    if args.rules:
        print(rule_index())
        return 0
    if not args.targets:
        print("repro lint: no targets given (see --rules for the rule index)")
        return 2

    reports = []
    unresolved = []
    for target in args.targets:
        diagnostics, resolved = analyze_target(
            target, max_value=args.max_value, concurrency=args.concurrency
        )
        if not resolved:
            unresolved.append(target)
            continue
        reports.append((target, diagnostics))

    extra = None
    if args.concurrency:
        # The global kernel-table gate runs once per invocation, not per
        # target: classify every shape, diff declared vs derived (ST500),
        # and audit the TrackSpec fields (ST504).
        from repro.analysis import kernel_table_diagnostics
        from repro.analysis.concurrency import derive_eligibility_table
        from repro.stat4.parallel import DECLARED_ELIGIBILITY

        reports.append(("<kernel-table>", kernel_table_diagnostics()))
        extra = {
            "concurrency": {
                "eligibility": derive_eligibility_table(),
                "declared": dict(DECLARED_ELIGIBILITY),
            }
        }

    if args.json:
        print(format_json(reports, extra=extra))
    else:
        print(format_text(reports))
    for target in unresolved:
        print(f"repro lint: cannot resolve target {target!r}", file=sys.stderr)
    if unresolved:
        return 2
    if args.strict and any(
        diag.severity is Severity.ERROR
        for _, diagnostics in reports
        for diag in diagnostics
    ):
        return 1
    return 0


def _cmd_bench(args) -> int:
    import json as json_module
    import os

    from repro.bench import (
        DEFAULT_HISTORY_DIR,
        append_history,
        compare_reports,
        compare_scenario_reports,
        format_delta_markdown,
        format_delta_table,
        format_kernels_markdown,
        format_merge_markdown,
        format_report,
        format_scenario_delta_markdown,
        format_scenario_delta_table,
        format_suggestions,
        format_suggestions_markdown,
        format_trend,
        load_baseline,
        load_scenario_baseline,
        previous_report,
        run_suite,
        suggest_floor_bumps,
        warning_annotations,
        write_report,
    )

    # Under --json, everything except the report itself goes to stderr so
    # stdout stays parseable.
    side = sys.stderr if args.json else sys.stdout

    # A committed scenario floors file is meaningless without the scenario
    # rows to check it against, so --scenario-baseline implies --scenarios.
    want_scenarios = (
        args.scenarios or args.scenarios_only or args.scenario_baseline is not None
    )
    report = run_suite(
        quick=args.quick,
        backend=args.backend,
        workers=args.workers,
        pool=args.pool,
        scenarios=want_scenarios,
        scenarios_only=args.scenarios_only,
        scenario_engine=args.scenario_engine,
        staleness=args.staleness,
    )
    path = write_report(report, output=args.output)
    if args.json:
        print(json_module.dumps(report, indent=2))
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(format_report(report))
        print(f"wrote {path}")

    previous = None
    if args.history or args.history_dir is not None:
        history_dir = (
            args.history_dir if args.history_dir is not None else DEFAULT_HISTORY_DIR
        )
        previous = previous_report(history_dir, report["revision"])
        history_path = append_history(report, history_dir)
        print(f"history: {history_path}", file=side)
        if previous is not None:
            print(format_trend(report, previous), file=side)
        else:
            print("history: no previous revision to compare against", file=side)

    failed = False
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    # Workflow commands (::warning::) are parsed from the job log, so they
    # go to stdout — but only when actually running under Actions, to keep
    # local output clean.
    on_actions = bool(os.environ.get("GITHUB_ACTIONS"))

    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        rows = compare_reports(report, baseline, args.tolerance)
        print(format_delta_table(rows, args.tolerance), file=side)
        # With both a baseline and a previous history run on record, flag
        # floors the last two revisions both beat by a wide margin (advisory).
        suggestions = (
            suggest_floor_bumps(report, previous, baseline)
            if previous is not None
            else []
        )
        if suggestions:
            print(format_suggestions(suggestions), file=side)
        if on_actions:
            for line in warning_annotations(rows, "perf-smoke"):
                print(line)
        # On GitHub Actions, render the verdicts on the run page too.
        if summary_path:
            merge_markdown = format_merge_markdown(report)
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(format_delta_markdown(rows, args.tolerance))
                handle.write("\n")
                kernels_markdown = format_kernels_markdown(report)
                if kernels_markdown:
                    # Absolute ns/packet per kernel row: tier-vs-tier
                    # comparisons survive baseline re-anchoring.
                    handle.write(kernels_markdown)
                    handle.write("\n")
                if merge_markdown:
                    # The fallback-replay rate belongs next to the floor
                    # verdicts: a creeping rate forecasts a merge_parallel
                    # regression before the floor actually breaks.
                    handle.write(merge_markdown)
                    handle.write("\n")
                if suggestions:
                    handle.write(format_suggestions_markdown(suggestions))
                    handle.write("\n")
        failed = failed or any(row.regressed for row in rows)

    if args.scenario_baseline is not None:
        scenario_baseline = load_scenario_baseline(args.scenario_baseline)
        scenario_rows = compare_scenario_reports(report, scenario_baseline)
        print(format_scenario_delta_table(scenario_rows), file=side)
        if on_actions:
            for line in warning_annotations(scenario_rows, "scenario-smoke"):
                print(line)
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(format_scenario_delta_markdown(scenario_rows))
                handle.write("\n")
        failed = failed or any(row.regressed for row in scenario_rows)

    return 1 if failed else 0


def _cmd_serve(args) -> int:
    import json as json_module
    import time

    from repro.service import (
        DetectionService,
        FeedSource,
        RatePacer,
        ScenarioSource,
        SyntheticSource,
        TraceSource,
        install_signal_handlers,
    )
    from repro.stat4.parallel import shutdown_pools

    pacer = RatePacer(args.rate) if args.rate > 0 else None
    feed = None
    if args.scenario is not None:
        source = ScenarioSource(
            args.scenario, batch_size=args.batch_size, loop=args.loop, pacer=pacer
        )
        label = f"scenario:{args.scenario}"
    elif args.trace is not None:
        source = TraceSource(
            path=args.trace, batch_size=args.batch_size, loop=args.loop, pacer=pacer
        )
        label = f"trace:{args.trace}"
    elif args.synthetic is not None:
        source = SyntheticSource(
            packets=args.synthetic,
            batch_size=args.batch_size,
            loop=args.loop,
            pacer=pacer,
        )
        label = f"synthetic:{args.synthetic}"
    else:
        host, _, port = args.feed.rpartition(":")
        feed = source = FeedSource(
            host=host or "127.0.0.1",
            port=int(port),
            batch_size=args.batch_size,
            serve_forever=args.loop,
        )
        label = f"feed:{source.address[0]}:{source.address[1]}"

    service = DetectionService(
        source,
        engine=args.engine,
        backend=args.backend,
        workers=args.workers,
        pool=args.pool,
        staleness=args.staleness,
        queue_depth=args.queue_depth,
        policy=args.policy,
        degraded_after=args.degraded_after,
        host=args.host,
        port=args.port,
    )
    service.start()
    install_signal_handlers(service)
    print(
        f"serving {label} on {service.url} "
        f"(engine={args.engine}, policy={args.policy}, "
        f"queue_depth={args.queue_depth}, rate={args.rate or 'unpaced'})",
        flush=True,
    )
    try:
        while not service.stopping:
            if service.drained:
                if args.exit_when_drained:
                    break
                # Finite source fully applied; keep serving the HTTP API
                # (alerts and stats stay queryable) until told to stop.
            time.sleep(0.2)
    finally:
        if feed is not None:
            feed.close()
        service.close()
        shutdown_pools()
        print("final " + json_module.dumps(service.stats()), flush=True)
    if service.pipeline.error is not None:
        print(f"pipeline error: {service.pipeline.error!r}", flush=True)
        return 1
    return 0


def _cmd_generate(args) -> int:
    from repro.p4gen import generate_p4
    from repro.stat4.config import Stat4Config

    source = generate_p4(
        Stat4Config(
            counter_num=args.counter_num,
            counter_size=args.counter_size,
            binding_stages=args.binding_stages,
        )
    )
    if args.output == "-":
        print(source, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "table3":
        return _cmd_table3(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "case-study":
        return _cmd_case_study(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "reactivity":
        return _cmd_reactivity()
    if args.command == "resources":
        return _cmd_resources()
    if args.command == "multiswitch":
        return _cmd_multiswitch(args)
    if args.command == "identify":
        return _cmd_identify()
    if args.command == "ablations":
        return _cmd_ablations()
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "generate":
        return _cmd_generate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
