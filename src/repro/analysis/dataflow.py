# p4-ok-file — host-side static analyzer, not data-plane code.
"""Width/overflow dataflow: value magnitudes → register requirements.

P4 registers wrap silently.  The measure registers hold ``Xsum = Σxᵢ`` and
``Xsumsq = Σxᵢ²``; at a given value magnitude and distribution size each
has a hard ceiling before the next update wraps and every derived measure
goes quietly wrong.  This pass propagates the deployment's worst-case
value magnitude (every value at ``max_value``) through the register
layout of a :class:`~repro.stat4.config.Stat4Config` and derives

- per-register *overflow horizons* (how many worst-case values fit before
  a wrap) — the static counterpart of the Sec. 2 order-of-magnitude
  discussion;
- per-register *required bit widths* for a full distribution of
  ``counter_size`` worst-case values (checked against the widths the
  generated P4 declares, see :mod:`repro.analysis.p4source`);
- the minimal safe *unit shift* — the least ``k`` such that counting in
  ``2^k`` units makes every register absorb a full distribution.

:func:`analyze_overflow` and :func:`safe_unit_shift` are the raw
computations (formerly :mod:`repro.resources.overflow`, which now
re-exports them); :func:`check_overflow` wraps them into registered
diagnostics (ST410–ST414).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, make
from repro.stat4.config import Stat4Config

__all__ = [
    "OverflowBound",
    "analyze_overflow",
    "safe_unit_shift",
    "required_register_widths",
    "check_overflow",
]


@dataclass(frozen=True)
class OverflowBound:
    """Worst-case capacity of one measure register.

    Attributes:
        register: register name.
        width: bit width.
        max_safe_values: distribution sizes N the register can absorb with
            every value at ``max_value`` (None-like huge numbers capped).
        limiting: whether this register is the binding constraint.
    """

    register: str
    width: int
    max_safe_values: int
    limiting: bool = False


def analyze_overflow(
    config: Stat4Config, max_value: int
) -> List[OverflowBound]:
    """Bound how many worst-case values each measure register can absorb.

    Args:
        config: the deployment's register widths.
        max_value: the largest value of interest a cell can hold (e.g. the
            packets-per-interval ceiling, or 2^counter_width - 1).

    Returns:
        one bound per relevant register, with the binding constraint
        flagged.  ``variance`` uses ``N·Xsumsq`` headroom, the largest
        intermediate the paper's formula needs.
    """
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    stats_cap = (1 << config.stats_width) - 1
    cell_cap = (1 << config.counter_width) - 1
    if max_value > cell_cap:
        raise ValueError(
            f"max_value {max_value} exceeds the cell width "
            f"({config.counter_width} bits)"
        )
    bounds = [
        OverflowBound(
            register="stat4_counters",
            width=config.counter_width,
            max_safe_values=config.counter_size,
        ),
        OverflowBound(
            register="stat4_xsum",
            width=config.stats_width,
            max_safe_values=stats_cap // max_value,
        ),
        OverflowBound(
            register="stat4_xsumsq",
            width=config.stats_width,
            max_safe_values=stats_cap // (max_value * max_value),
        ),
        OverflowBound(
            register="stat4_var (N*Xsumsq)",
            width=config.stats_width,
            # N * N * max^2 <= cap  =>  N <= sqrt(cap / max^2)
            max_safe_values=math.isqrt(stats_cap // (max_value * max_value)),
        ),
    ]
    tightest = min(bounds[1:], key=lambda bound: bound.max_safe_values)
    return [
        OverflowBound(
            register=bound.register,
            width=bound.width,
            max_safe_values=bound.max_safe_values,
            limiting=(bound is tightest),
        )
        for bound in bounds
    ]


def safe_unit_shift(config: Stat4Config, max_raw_value: int) -> int:
    """Smallest unit shift making the deployment overflow-safe.

    The Sec. 2 trick operationalized: find the least ``k`` such that
    counting in ``2^k`` units lets every measure register absorb a full
    distribution (``counter_size`` values) of worst-case magnitude.
    """
    for shift in range(0, 64):
        coarse = max(max_raw_value >> shift, 1)
        bounds = analyze_overflow(config, coarse)
        if all(
            bound.max_safe_values >= config.counter_size for bound in bounds
        ):
            return shift
    raise ValueError("no unit shift makes this configuration safe")


def required_register_widths(
    counter_size: int, max_value: int
) -> Dict[str, int]:
    """Bit widths each register needs for ``counter_size`` worst-case values.

    Keyed by the register names the generated P4 program declares; the
    variance entry covers the ``N·Xsumsq`` intermediate, the widest value
    the paper's formula materializes.
    """
    return {
        "stat4_counters": max_value.bit_length(),
        "stat4_xsum": (counter_size * max_value).bit_length(),
        "stat4_xsumsq": (counter_size * max_value * max_value).bit_length(),
        "stat4_var": (
            counter_size * counter_size * max_value * max_value
        ).bit_length(),
    }


def check_overflow(
    config: Stat4Config, max_value: int, file: Optional[str] = None
) -> List[Diagnostic]:
    """Run the overflow dataflow and report ST410–ST414 diagnostics."""
    diagnostics: List[Diagnostic] = []
    cell_cap = (1 << config.counter_width) - 1
    if max_value <= 0:
        diagnostics.append(
            make("ST430", f"max_value must be positive (got {max_value})",
                 file=file)
        )
        return diagnostics
    if max_value > cell_cap:
        diagnostics.append(
            make(
                "ST410",
                f"max_value {max_value} does not fit the "
                f"{config.counter_width}-bit counter cells (cap {cell_cap})",
                file=file,
                register="stat4_counters",
                max_value=max_value,
            )
        )
        return diagnostics
    for bound in analyze_overflow(config, max_value):
        if bound.register == "stat4_counters":
            # The cell array holds exactly counter_size values per slot by
            # construction; its horizon can never exceed it.
            continue
        if bound.max_safe_values < config.counter_size:
            diagnostics.append(
                make(
                    "ST411",
                    f"{bound.register} ({bound.width} bits) wraps after "
                    f"{bound.max_safe_values} worst-case values of "
                    f"{max_value}; the distribution holds "
                    f"{config.counter_size}",
                    file=file,
                    register=bound.register,
                    horizon=bound.max_safe_values,
                    counter_size=config.counter_size,
                )
            )
        elif bound.max_safe_values < 2 * config.counter_size:
            diagnostics.append(
                make(
                    "ST412",
                    f"{bound.register} has under 2x headroom: "
                    f"{bound.max_safe_values} worst-case values vs "
                    f"counter_size {config.counter_size}",
                    file=file,
                    register=bound.register,
                    horizon=bound.max_safe_values,
                )
            )
    if any(d.code == "ST411" for d in diagnostics):
        try:
            shift = safe_unit_shift(config, max_value)
        except ValueError:
            diagnostics.append(
                make(
                    "ST414",
                    "no unit shift makes this geometry overflow-safe; "
                    "widen stats_width or shrink counter_size",
                    file=file,
                )
            )
        else:
            diagnostics.append(
                make(
                    "ST413",
                    f"counting in 2^{shift} units makes every register "
                    f"absorb a full distribution (set extract shift={shift})",
                    file=file,
                    unit_shift=shift,
                )
            )
    return diagnostics
