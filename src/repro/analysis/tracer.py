# p4-ok-file — host-side test instrumentation, not data-plane code.
"""Runtime access tracer: the sanitizer-style witness for ST5xx verdicts.

The concurrency pass (:mod:`repro.analysis.concurrency`) proves its
merge-exact / replay-exact verdicts statically.  This module lets the
test suite *witness* each "safe" verdict at runtime: wrap the mutable
surfaces of a Stat4 instance (register read/write, moment observers, the
percentile tracker), run a parallel batch, and assert that no two
threads produced a conflicting access pair — every write to kernel state
stayed on the apply thread, workers only touched their private chunks.

This is deliberately a tracer, not a blocker: it records
``(subject, op, write, thread)`` tuples under its own lock and offers
:meth:`AccessTracer.conflicts` for the assertion.  See
``tests/analysis/test_concurrency.py`` for the harness in action.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set, Tuple

__all__ = ["Access", "AccessTracer", "instrument_stat4"]


@dataclass(frozen=True)
class Access:
    """One recorded access to a traced subject."""

    subject: str
    op: str
    write: bool
    thread: str


@dataclass
class AccessTracer:
    """Records accesses from any thread; reports conflicting pairs.

    A *conflict* is the data-race shape: one subject touched by two or
    more distinct threads with at least one write among the accesses.
    """

    accesses: List[Access] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def note(self, subject: str, op: str, write: bool) -> None:
        access = Access(
            subject=subject,
            op=op,
            write=write,
            thread=threading.current_thread().name,
        )
        with self._lock:
            self.accesses.append(access)

    def wrap(
        self, obj: Any, method_name: str, subject: str, write: bool
    ) -> None:
        """Shadow ``obj.method_name`` with a noting wrapper (per instance)."""
        original = getattr(obj, method_name)

        @functools.wraps(original)
        def traced(*args: Any, **kwargs: Any) -> Any:
            self.note(subject, method_name, write)
            return original(*args, **kwargs)

        object.__setattr__(obj, method_name, traced)

    def subjects(self) -> Set[str]:
        with self._lock:
            return {a.subject for a in self.accesses}

    def threads_touching(self, subject: str) -> Set[str]:
        with self._lock:
            return {a.thread for a in self.accesses if a.subject == subject}

    def writes_by_thread(self, subject: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        with self._lock:
            for access in self.accesses:
                if access.subject == subject and access.write:
                    counts[access.thread] = counts.get(access.thread, 0) + 1
        return counts

    def conflicts(self) -> List[Tuple[str, Set[str]]]:
        """Subjects touched by ≥2 threads with ≥1 write — the race pairs."""
        with self._lock:
            snapshot = list(self.accesses)
        by_subject: Dict[str, List[Access]] = {}
        for access in snapshot:
            by_subject.setdefault(access.subject, []).append(access)
        found: List[Tuple[str, Set[str]]] = []
        for subject, accesses in sorted(by_subject.items()):
            threads = {a.thread for a in accesses}
            if len(threads) > 1 and any(a.write for a in accesses):
                found.append((subject, threads))
        return found


def _instrument_state(tracer: AccessTracer, dist: int, state: Any) -> None:
    """Wrap the mutable members of one DistributionState."""
    prefix = f"state[{dist}]"
    stats = getattr(state, "stats", None)
    if stats is not None:
        for name, write in (
            ("observe_frequency", True),
            ("observe_frequencies", True),
            ("add_value", True),
            ("replace_value", True),
            ("remove_value", True),
            ("is_outlier", False),
            ("scaled", False),
        ):
            if hasattr(stats, name):
                tracer.wrap(stats, name, f"{prefix}.stats", write)
    tracker = getattr(state, "tracker", None)
    if tracker is not None:
        for name in ("observe", "tick"):
            if hasattr(tracker, name):
                tracer.wrap(tracker, name, f"{prefix}.tracker", True)


def instrument_stat4(tracer: AccessTracer, stat4: Any) -> None:
    """Instrument a Stat4 instance's kernel-state surfaces in place.

    Wraps every register's read/write and hooks ``_state_for`` so each
    distribution's moment/tracker objects are wrapped lazily on first
    touch (states are created on demand).
    """
    for attr in vars(stat4):
        register = getattr(stat4, attr)
        if hasattr(register, "read") and hasattr(register, "write"):
            tracer.wrap(register, "read", f"register.{attr}", False)
            tracer.wrap(register, "write", f"register.{attr}", True)

    seen: Set[int] = set()
    original_state_for = stat4._state_for

    @functools.wraps(original_state_for)
    def traced_state_for(spec: Any, *args: Any, **kwargs: Any) -> Any:
        state = original_state_for(spec, *args, **kwargs)
        dist = getattr(spec, "dist", spec)
        if dist not in seen:
            seen.add(dist)
            _instrument_state(tracer, dist, state)
        return state

    object.__setattr__(stat4, "_state_for", traced_state_for)
