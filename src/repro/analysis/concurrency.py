# p4-ok-file — host-side static analysis of the parallel ingest layer;
# the data-plane code it reasons about is linted separately.
"""Concurrency-exactness pass: the ST5xx rule family.

PRs 4–5 made a strong claim: chunked fan-out of frequency runs is
bit-exact with the scalar loop.  The argument lived in the
:mod:`repro.stat4.parallel` docstring and was *encoded by hand* in the
``_fan_out_mode`` table — a human had to re-read the kernel code and
re-derive the table for every new kernel shape.  This pass derives it.

Kernel classification (the taxonomy)
------------------------------------

For every kernel shape — :class:`KernelShape`, the projection of a
:class:`~repro.stat4.distributions.TrackSpec` onto the fields that change
update-order semantics (``kind`` × tracker × k·σ × percentile-alert) —
the pass walks the AST of the scalar update functions in
:mod:`repro.stat4.library`, prunes branches that are statically dead
under the shape (``spec.k_sigma <= 0``, ``state.tracker is not None``,
``spec.percentile_alert``), and collects an :class:`Effect` set:

- **commutative-monoid updates** (cell read-modify-write, the telescoped
  moment sums, drop counters, idempotent measure mirrors): per-chunk
  results merge exactly by addition, in any order;
- **replay streams** (the percentile tracker walk; the k·σ gate reads,
  cooldown stamps and digest writes): order-dependent, but reconstructible
  by one serial replay layered on the merged monoid state;
- **mergeable register reads** (the per-packet ``reg_pos`` read feeding
  percentile-move digests): cross-chunk, but reconstructible by a serial
  replay that maintains a register mirror alongside the tracker walk;
- **order-breaking effects** (circular-window cursors, hashed-slot
  eviction): no per-chunk summary reconstructs them.

The classification follows mechanically (:func:`classify`):

- any hard order-breaking effect → **order-dependent** (serial);
- a ``reg_pos`` register read with no tracker walk to anchor the
  register mirror → **order-dependent**;
- *two* replay streams, or any replay stream plus the ``reg_pos`` read →
  **merge-replay-exact** (fan-out mode ``"merge"``): per-worker local
  tracker+alert state, merged by a deterministic serial reconciliation
  that folds provably-silent chunks and replays the rest from their
  entry state (the merge engine in :mod:`repro.stat4.parallel`);
- one replay stream → **replay-exact** (fan-out mode ``"tracked"`` or
  ``"alerting"``);
- monoid effects only → **merge-exact** (mode ``"tally"``).

:func:`derive_eligibility_table` exports the result as the
machine-readable table ``ParallelBatchEngine._fan_out_mode`` consumes;
:func:`check_eligibility` raises ST500 if the engine's declared table
(:data:`repro.stat4.parallel.DECLARED_ELIGIBILITY`) ever disagrees.

Detector backends declare their kernels with a ``# parallel-mode:`` pragma
(:func:`check_kernel_file`); a declared mode the dataflow cannot prove is
ST502 — the gate that lets backends self-declare parallel eligibility
safely (see ``docs/ANALYSIS.md``).

Shared-state race lint
----------------------

:func:`check_shared_state_source` covers the other half of the parallel
layer's safety story: module-level mutable registries (the executor
cache, the live-segment registry) mutated from *worker-reachable* context
(functions submitted to pools, signal handlers) without holding their
lock are ST503; ``multiprocessing.shared_memory`` segments created
outside :meth:`SharedColumnSegment.pack` bypass the crash sweep and are
ST505.  A trailing ``# race-ok`` comment downgrades a finding to ST506
(the documented-exception pragma, mirroring ``# p4-ok``).  At-fork child
callbacks are exempt by rule: a freshly forked child is single-threaded.

The static verdicts are witnessed at runtime by
:mod:`repro.analysis.tracer` (sanitizer-style) in the test suite.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, make
from repro.stat4.distributions import DistributionKind, TrackSpec

__all__ = [
    "Classification",
    "Effect",
    "KernelShape",
    "SHAPE_FIELDS",
    "SHAPE_IRRELEVANT_FIELDS",
    "audit_spec_fields",
    "check_eligibility",
    "check_kernel_file",
    "check_shared_state_file",
    "check_shared_state_source",
    "classification_report",
    "classify",
    "derive_eligibility_table",
    "enumerate_shapes",
    "fan_out_mode_for",
    "kernel_effects",
    "kernel_table_diagnostics",
    "shape_key_of_spec",
]

_RACE_PRAGMA = "# race-ok"
_WORKER_PRAGMA = "# worker-context"
_KERNEL_PRAGMA = re.compile(r"#\s*parallel-mode:\s*(\S+)")

#: Declared kernel modes a ``# parallel-mode:`` pragma may claim.
KERNEL_MODES = ("tally", "tracked", "alerting", "merge", "serial")


# --------------------------------------------------------------------------
# Effects and classification
# --------------------------------------------------------------------------


class Effect(enum.Enum):
    """What one kernel execution does to shared per-slot state."""

    #: Dense cell read-modify-write: increments wrap through the register
    #: mask, which composes modularly — per-value counts add across chunks.
    CELL_MONOID = "cell_monoid"
    #: The telescoped moment identity (N/Xsum/Xsumsq via
    #: ``observe_frequency``/``observe_frequencies``/``add_value``): any
    #: grouping of occurrences folds to the same sums.
    MOMENT_MONOID = "moment_monoid"
    #: ``values_dropped`` — a plain commutative count.
    DROP_COUNT = "drop_count"
    #: Idempotent mirror of derived measures into registers; a pure
    #: function of the monoid state, safe to coalesce to one final write.
    MEASURE_SYNC = "measure_sync"
    #: The percentile tracker steps once per packet — order-dependent, but
    #: it never feeds the cells or moments, so it replays serially on top.
    TRACKER_WALK = "tracker_walk"
    #: Per-packet read of the live moments / cooldown state feeding an
    #: alert decision — replayable per packet against the merged state.
    ALERT_GATE_READ = "alert_gate_read"
    #: Cooldown stamps and alert counters — state of the alert replay.
    ALERT_STATE = "alert_state"
    #: Digest-sink emission: an order-dependent output stream.
    DIGEST_WRITE = "digest_write"
    #: Per-packet ``reg_pos`` read whose value feeds percentile-move
    #: digests: a cross-chunk register read no sub-tally reconstructs —
    #: only a serial replay holding a register mirror can.
    PERCENTILE_REGISTER_READ = "percentile_register_read"
    #: Interval cursor / circular-window mutation: each update depends on
    #: the cursor the previous one left.
    WINDOW_STATE = "window_state"
    #: Hashed-slot probe/eviction (and ``remove_value``): which key is
    #: resident depends on arrival order.
    EVICTION = "eviction"
    #: A state mutation the pass does not recognize — conservatively
    #: order-dependent (backends should stick to the effect vocabulary).
    UNKNOWN = "unknown"


class Classification(enum.Enum):
    """The four-way verdict of the taxonomy."""

    MERGE_EXACT = "merge-exact"
    REPLAY_EXACT = "replay-exact"
    MERGE_REPLAY_EXACT = "merge-replay-exact"
    ORDER_DEPENDENT = "order-dependent"


_MONOID = frozenset(
    {Effect.CELL_MONOID, Effect.MOMENT_MONOID, Effect.DROP_COUNT, Effect.MEASURE_SYNC}
)
_TRACKER_STREAM = frozenset({Effect.TRACKER_WALK})
_ALERT_STREAM = frozenset(
    {Effect.DIGEST_WRITE, Effect.ALERT_GATE_READ, Effect.ALERT_STATE}
)
#: The register mirror: replayable, but only anchored to a tracker walk.
_REGISTER_MIRROR = frozenset({Effect.PERCENTILE_REGISTER_READ})
_HARD_ORDER_BREAKING = frozenset(
    {
        Effect.WINDOW_STATE,
        Effect.EVICTION,
        Effect.UNKNOWN,
    }
)
#: Kept for callers enumerating the non-mergeable effects; the register
#: read is soft (merge-replayable when a tracker walk is present).
_ORDER_BREAKING = _HARD_ORDER_BREAKING | _REGISTER_MIRROR


def classify(effects: frozenset) -> Classification:
    """Apply the taxonomy rules to one kernel's effect set."""
    if effects & _HARD_ORDER_BREAKING:
        return Classification.ORDER_DEPENDENT
    register_read = bool(effects & _REGISTER_MIRROR)
    if register_read and not effects & _TRACKER_STREAM:
        # The reg_pos mirror is maintained by the tracker-walk replay;
        # with no walk to anchor it, the read stays order-breaking.
        return Classification.ORDER_DEPENDENT
    streams = bool(effects & _TRACKER_STREAM) + bool(effects & _ALERT_STREAM)
    if streams > 1 or register_read:
        # Two replay streams (or a stream plus the register read) must
        # interleave.  No per-chunk summary derives the interleaving, but
        # the merge engine reconstructs it deterministically: fold chunks
        # whose streams are provably silent, replay the rest serially from
        # their entry state.
        return Classification.MERGE_REPLAY_EXACT
    if streams == 1:
        return Classification.REPLAY_EXACT
    return Classification.MERGE_EXACT


def _mode_of(effects: frozenset) -> Optional[str]:
    """The fan-out mode a classified effect set admits (None = serial)."""
    verdict = classify(effects)
    if verdict is Classification.ORDER_DEPENDENT:
        return None
    if verdict is Classification.MERGE_EXACT:
        return "tally"
    if verdict is Classification.MERGE_REPLAY_EXACT:
        return "merge"
    return "tracked" if effects & _TRACKER_STREAM else "alerting"


# --------------------------------------------------------------------------
# Kernel shapes (the TrackSpec projection)
# --------------------------------------------------------------------------

#: TrackSpec fields the shape projection consumes — the only fields that
#: change which code paths a kernel executes.
SHAPE_FIELDS = ("kind", "percent", "k_sigma", "percentile_alert")

#: Every other TrackSpec field, with the reason it cannot change the
#: fan-out verdict.  A field in neither mapping fails :func:`audit_spec_fields`
#: (ST504) until a human classifies it — the guard against a new spec knob
#: silently widening a fan-out mode past its exactness proof.
SHAPE_IRRELEVANT_FIELDS: Mapping[str, str] = {
    "dist": "slot routing only; never feeds update-order semantics",
    "extract": "value production happens per packet, before the kernel runs",
    "interval": "time-series cadence; every time-series shape is already serial",
    "alert": "digest stream name; digest presence is governed by k_sigma",
    "window": "circular-window length; every time-series shape is already serial",
    "min_samples": "alert-gate threshold, replayed per packet by the alert replay",
    "margin": "outlier-test slack, replayed per packet by the alert replay",
    "cooldown": "cooldown length, replayed per packet (chunk folding uses it "
    "only as a conservative bound)",
    "accept_lo": "value filter applied during extraction, before the kernel",
    "accept_hi": "value filter applied during extraction, before the kernel",
    "generation": "slot-reset marker; _state_for handles resets in apply order",
}


@dataclass(frozen=True)
class KernelShape:
    """A point of the kernel-shape lattice the classifier enumerates."""

    kind: DistributionKind
    tracked: bool  # spec.percent is not None  (a tracker exists)
    alerting: bool  # spec.k_sigma > 0
    percentile_alert: bool  # spec.percentile_alert truthy

    @classmethod
    def of_spec(cls, spec: TrackSpec) -> "KernelShape":
        """Project a TrackSpec — every shape field read, on every branch."""
        return cls(
            kind=spec.kind,
            tracked=spec.percent is not None,
            alerting=spec.k_sigma > 0,
            percentile_alert=bool(spec.percentile_alert),
        )

    @property
    def key(self) -> str:
        """Stable string key of this shape (the eligibility-table key)."""
        parts = [self.kind.value]
        if self.tracked:
            parts.append("tracked")
        if self.alerting:
            parts.append("alerting")
        if self.percentile_alert:
            parts.append("percentile_alert")
        return "+".join(parts)


def shape_key_of_spec(spec: TrackSpec) -> str:
    """The eligibility-table key of a spec (what the engine looks up)."""
    return KernelShape.of_spec(spec).key


def enumerate_shapes() -> List[KernelShape]:
    """Every constructible kernel shape, in deterministic order.

    TrackSpec validation makes the lattice smaller than 3×2×2×2: a tracker
    (``percent``) exists only on dense frequency slots, and a
    ``percentile_alert`` requires a tracker.
    """
    shapes: List[KernelShape] = []
    for kind in DistributionKind:
        tracked_options = (False, True) if kind is DistributionKind.FREQUENCY else (False,)
        for tracked in tracked_options:
            for alerting in (False, True):
                pa_options = (False, True) if tracked else (False,)
                for percentile_alert in pa_options:
                    shapes.append(
                        KernelShape(kind, tracked, alerting, percentile_alert)
                    )
    return shapes


def audit_spec_fields(
    field_names: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """ST504 audit: every TrackSpec field is shape-relevant or justified.

    This is the durable form of the ``_fan_out_mode`` asymmetry fix: the
    hand table read ``spec.percentile_alert`` on one branch only, which
    was latent (validation ties it to ``percent``) but unchecked.  The
    shape projection reads every shape field symmetrically, and any field
    added to TrackSpec fails this audit until classified here.
    """
    if field_names is None:
        field_names = [f.name for f in dataclasses.fields(TrackSpec)]
    diagnostics: List[Diagnostic] = []
    known = set(SHAPE_FIELDS) | set(SHAPE_IRRELEVANT_FIELDS)
    for name in field_names:
        if name not in known:
            diagnostics.append(
                make(
                    "ST504",
                    f"TrackSpec field {name!r} is not classified by the "
                    "concurrency shape projection; add it to SHAPE_FIELDS "
                    "or justify it in SHAPE_IRRELEVANT_FIELDS",
                    field=name,
                )
            )
    for name in sorted(known - set(field_names)):
        diagnostics.append(
            make(
                "ST504",
                f"shape projection classifies {name!r}, which is no longer "
                "a TrackSpec field; remove the stale entry",
                field=name,
                stale=True,
            )
        )
    return diagnostics


# --------------------------------------------------------------------------
# The dataflow pass over the kernel ASTs
# --------------------------------------------------------------------------

#: Call-method vocabulary → effect.  Backends registering kernels for
#: classification express state updates through these names (documented in
#: docs/ANALYSIS.md); anything else mutating non-local state is UNKNOWN.
_METHOD_EFFECTS: Mapping[str, Effect] = {
    "observe_frequency": Effect.MOMENT_MONOID,
    "observe_frequencies": Effect.MOMENT_MONOID,
    "add_value": Effect.MOMENT_MONOID,
    "replace_value": Effect.WINDOW_STATE,
    "remove_value": Effect.EVICTION,
    "increment": Effect.EVICTION,
    "observe": Effect.TRACKER_WALK,
    "tick": Effect.TRACKER_WALK,
    "emit_digest": Effect.DIGEST_WRITE,
    "is_outlier": Effect.ALERT_GATE_READ,
    "cooldown_active": Effect.ALERT_GATE_READ,
    "scaled": Effect.ALERT_GATE_READ,
}

#: Attribute-assignment vocabulary → effect.
_ASSIGN_EFFECTS: Mapping[str, Effect] = {
    "values_dropped": Effect.DROP_COUNT,
    "last_alert": Effect.ALERT_STATE,
    "last_percentile_alert": Effect.ALERT_STATE,
    "alerts_emitted": Effect.ALERT_STATE,
    "interval_start": Effect.WINDOW_STATE,
    "current_count": Effect.WINDOW_STATE,
    "window_index": Effect.WINDOW_STATE,
    "window_filled": Effect.WINDOW_STATE,
    "intervals_closed": Effect.WINDOW_STATE,
}

#: Attribute-read vocabulary → effect (reads that make a decision
#: order-sensitive; plain structural reads carry no effect).
_READ_EFFECTS: Mapping[str, Effect] = {
    "count": Effect.ALERT_GATE_READ,
    "xsum": Effect.ALERT_GATE_READ,
    "xsumsq": Effect.ALERT_GATE_READ,
    "variance_nx": Effect.ALERT_GATE_READ,
    "stddev_nx": Effect.ALERT_GATE_READ,
    "last_alert": Effect.ALERT_GATE_READ,
    "last_percentile_alert": Effect.ALERT_GATE_READ,
    "interval_start": Effect.WINDOW_STATE,
    "current_count": Effect.WINDOW_STATE,
    "window_index": Effect.WINDOW_STATE,
    "window_filled": Effect.WINDOW_STATE,
}

#: Moment reads only count when the owner chain mentions the stats object;
#: e.g. ``len(tally)``'s ``count`` name never appears as an attribute, but
#: guard anyway so a backend's unrelated ``.count`` read is not mischarged.
_STATS_GUARDED_READS = frozenset(
    {"count", "xsum", "xsumsq", "variance_nx", "stddev_nx"}
)


@dataclass(frozen=True)
class _Facts:
    """Shape facts the branch pruner evaluates tests against.

    ``None`` means unknown (pragma-declared backend kernels, where no spec
    shape is available): both branches are walked.
    """

    tracked: Optional[bool] = None
    alerting: Optional[bool] = None
    percentile_alert: Optional[bool] = None

    @classmethod
    def of_shape(cls, shape: KernelShape) -> "_Facts":
        return cls(
            tracked=shape.tracked,
            alerting=shape.alerting,
            percentile_alert=shape.percentile_alert,
        )


def _attr_chain(node: ast.AST) -> List[str]:
    """``state.stats.count`` → ``["state", "stats", "count"]`` (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_zero(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


class _EffectCollector:
    """Walks kernel functions collecting effects, pruning dead branches.

    ``functions`` maps simple names to their defs — the Stat4 methods for
    library shapes, or a standalone kernel file's functions.  Calls into
    the map recurse (cycle-safe); everything else is judged by the effect
    vocabulary above.
    """

    def __init__(
        self, functions: Mapping[str, ast.FunctionDef], facts: _Facts
    ):
        self.functions = functions
        self.facts = facts

    # -- entry ------------------------------------------------------------

    def effects_of(self, name: str) -> frozenset:
        return frozenset(self._function(name, visited=frozenset()))

    def _function(self, name: str, visited: frozenset) -> Set[Effect]:
        if name in visited:
            return set()
        func = self.functions.get(name)
        if func is None:
            return set()
        frame = _Frame(self, visited | {name})
        frame.block(func.body)
        return frame.effects

    # -- branch pruning ---------------------------------------------------

    def eval_test(self, node: ast.expr) -> Optional[bool]:
        """Statically evaluate a test under the shape facts (None = unknown)."""
        if isinstance(node, ast.BoolOp):
            values = [self.eval_test(v) for v in node.values]
            if isinstance(node.op, ast.And):
                if any(v is False for v in values):
                    return False
                if all(v is True for v in values):
                    return True
                return None
            if any(v is True for v in values):
                return True
            if all(v is False for v in values):
                return False
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            inner = self.eval_test(node.operand)
            return None if inner is None else not inner
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            tail = _attr_chain(node.left)[-1:] or [""]
            op = node.ops[0]
            right = node.comparators[0]
            if tail == ["k_sigma"] and _is_zero(right):
                if isinstance(op, (ast.LtE, ast.Lt)):
                    return _negate(self.facts.alerting)
                if isinstance(op, ast.Gt):
                    return self.facts.alerting
            if tail in (["percent"], ["tracker"]) and _is_none(right):
                if isinstance(op, ast.Is):
                    return _negate(self.facts.tracked)
                if isinstance(op, ast.IsNot):
                    return self.facts.tracked
            return None
        if isinstance(node, ast.Attribute):
            tail = node.attr
            if tail == "percentile_alert":
                return self.facts.percentile_alert
            if tail == "tracker":
                return self.facts.tracked
        return None


def _negate(value: Optional[bool]) -> Optional[bool]:
    return None if value is None else not value


class _Frame:
    """Per-function walk state: effects, deferred reads, termination."""

    def __init__(self, collector: _EffectCollector, visited: frozenset):
        self.c = collector
        self.visited = visited
        self.effects: Set[Effect] = set()
        #: local name → effect of a register read whose only consumer may
        #: be a pruned decision (the ``reg_pos``-feeds-percentile-digests
        #: pattern); materialized only if a test referencing the name
        #: guards a branch with effects.
        self.deferred: Dict[str, Effect] = {}

    # -- statements -------------------------------------------------------

    def block(self, stmts: Sequence[ast.stmt]) -> bool:
        """Walk a statement list; returns True if it always terminates."""
        for stmt in stmts:
            if self.statement(stmt):
                return True
        return False

    def statement(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.expr(stmt.value)
            return True
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If):
            return self._if(stmt)
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt)
        if isinstance(stmt, ast.AugAssign):
            self._target(stmt.target)
            self.expr(stmt.value)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._target(stmt.target)
                self.expr(stmt.value)
            return False
        if isinstance(stmt, ast.Expr):
            self.expr(stmt.value)
            return False
        if isinstance(stmt, (ast.For, ast.While)):
            head = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            self.expr(head)
            self.block(stmt.body)
            self.block(stmt.orelse)
            return False
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.expr(item.context_expr)
            return self.block(stmt.body)
        if isinstance(stmt, ast.Try):
            self.block(stmt.body)
            for handler in stmt.handlers:
                self.block(handler.body)
            self.block(stmt.orelse)
            self.block(stmt.finalbody)
            return False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target)
            return False
        # assert, pass, nested defs, imports: no kernel effects.
        return False

    def _if(self, stmt: ast.If) -> bool:
        verdict = self.c.eval_test(stmt.test)
        if verdict is True:
            self.expr(stmt.test)
            return self.block(stmt.body)
        if verdict is False:
            self.expr(stmt.test)
            return self.block(stmt.orelse)
        # Unknown test.  If it references a deferred register read, the
        # read only matters when the guarded branches do something.
        test_names = {
            n.id for n in ast.walk(stmt.test) if isinstance(n, ast.Name)
        }
        gating = sorted(test_names & set(self.deferred))
        if gating:
            branch = _Frame(self.c, self.visited)
            branch.deferred = dict(self.deferred)
            term_body = branch.block(stmt.body)
            term_else = branch.block(stmt.orelse)
            if branch.effects:
                for name in gating:
                    self.effects.add(self.deferred.pop(name))
                self.effects |= branch.effects
                self.expr(stmt.test)
            return term_body and term_else
        self.expr(stmt.test)
        term_body = self.block(stmt.body)
        term_else = self.block(stmt.orelse) if stmt.orelse else False
        return term_body and term_else

    def _assign(self, stmt: ast.Assign) -> bool:
        value_effect = None
        if isinstance(stmt.value, ast.Call):
            value_effect = self._call_effect(stmt.value.func)
        if (
            value_effect is Effect.PERCENTILE_REGISTER_READ
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            self.deferred[stmt.targets[0].id] = value_effect
            for arg in stmt.value.args:
                self.expr(arg)
            return False
        for target in stmt.targets:
            self._target(target)
        self.expr(stmt.value)
        return False

    def _target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            effect = _ASSIGN_EFFECTS.get(target.attr)
            if effect is None and chain[:1] != [""] and len(chain) > 1:
                # Assignment to non-local attribute state the vocabulary
                # does not know: conservatively order-dependent.
                effect = Effect.UNKNOWN
            if effect is not None:
                self.effects.add(effect)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self.effects.add(
                    _ASSIGN_EFFECTS.get(target.value.attr, Effect.UNKNOWN)
                )
            self.expr(target.slice)
        # plain Name targets are locals: no effect.

    # -- expressions ------------------------------------------------------

    def expr(self, node: ast.AST, skip_reads: bool = False) -> None:
        if isinstance(node, ast.Call):
            effect = self._call_effect(node.func)
            if effect is not None:
                self.effects.add(effect)
            if isinstance(node.func, ast.Attribute):
                self.expr(node.func.value, skip_reads=True)
            # Arguments of an idempotent mirror write are derived-value
            # reads, not order-sensitive decisions.
            child_skip = skip_reads or effect is Effect.MEASURE_SYNC
            for arg in node.args:
                self.expr(arg, skip_reads=child_skip)
            for kw in node.keywords:
                self.expr(kw.value, skip_reads=child_skip)
            return
        if isinstance(node, ast.Attribute):
            if not skip_reads:
                effect = _READ_EFFECTS.get(node.attr)
                if effect is not None:
                    if node.attr in _STATS_GUARDED_READS:
                        if "stats" in _attr_chain(node):
                            self.effects.add(effect)
                    else:
                        self.effects.add(effect)
            self.expr(node.value, skip_reads=True)
            return
        for child in ast.iter_child_nodes(node):
            self.expr(child, skip_reads=skip_reads)

    def _call_effect(self, func: ast.AST) -> Optional[Effect]:
        if isinstance(func, ast.Name):
            if func.id in self.c.functions:
                self.effects |= self.c._function(func.id, self.visited)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr in self.c.functions:
            # self._maybe_alert(...) / kernel helper methods: recurse.
            self.effects |= self.c._function(attr, self.visited)
            return None
        if attr in _METHOD_EFFECTS:
            return _METHOD_EFFECTS[attr]
        if attr in ("read", "write"):
            owner = _attr_chain(func)[-2:-1]
            owner_name = owner[0] if owner else ""
            if owner_name == "counters":
                return Effect.CELL_MONOID
            if owner_name == "reg_pos" and attr == "read":
                return Effect.PERCENTILE_REGISTER_READ
            if owner_name.startswith("reg_"):
                return Effect.MEASURE_SYNC
            return Effect.UNKNOWN
        return None


# --------------------------------------------------------------------------
# The library kernels: shapes → effects → eligibility table
# --------------------------------------------------------------------------

_ENTRY_FUNCTIONS: Mapping[DistributionKind, str] = {
    DistributionKind.FREQUENCY: "_update_frequency",
    DistributionKind.SPARSE_FREQUENCY: "_update_sparse",
    DistributionKind.TIME_SERIES: "_update_time_series",
}

_library_functions: Optional[Dict[str, ast.FunctionDef]] = None


def _collect_functions(tree: ast.AST) -> Dict[str, ast.FunctionDef]:
    """Every function/method def in a module AST, by simple name."""
    functions: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return functions


def _kernel_functions() -> Dict[str, ast.FunctionDef]:
    """The parsed update functions of :mod:`repro.stat4.library` (cached)."""
    global _library_functions
    if _library_functions is None:
        import inspect

        import repro.stat4.library as library

        source = inspect.getsource(library)
        _library_functions = _collect_functions(ast.parse(source))
    return _library_functions


def kernel_effects(shape: KernelShape) -> frozenset:
    """The effect set of one kernel shape's scalar update path."""
    entry = _ENTRY_FUNCTIONS[shape.kind]
    collector = _EffectCollector(_kernel_functions(), _Facts.of_shape(shape))
    return collector.effects_of(entry)


def fan_out_mode_for(shape: KernelShape) -> Optional[str]:
    """The fan-out mode the dataflow proves for a shape (None = serial)."""
    return _mode_of(kernel_effects(shape))


_table_cache: Optional[Dict[str, Optional[str]]] = None


def derive_eligibility_table() -> Dict[str, Optional[str]]:
    """The machine-readable eligibility table, derived from the ASTs.

    Keyed by :attr:`KernelShape.key`; values are the fan-out mode
    (``"tally"``/``"tracked"``/``"alerting"``/``"merge"``) or ``None``
    for serial.  :meth:`ParallelBatchEngine._fan_out_mode` consumes this
    table.
    """
    global _table_cache
    if _table_cache is None:
        _table_cache = {
            shape.key: fan_out_mode_for(shape) for shape in enumerate_shapes()
        }
    return dict(_table_cache)


def check_eligibility(
    declared: Optional[Mapping[str, Optional[str]]] = None,
) -> List[Diagnostic]:
    """ST500 differential: declared fan-out table vs the derived one."""
    if declared is None:
        from repro.stat4.parallel import DECLARED_ELIGIBILITY

        declared = DECLARED_ELIGIBILITY
    derived = derive_eligibility_table()
    diagnostics: List[Diagnostic] = []
    for key in sorted(set(declared) | set(derived)):
        if key not in derived:
            diagnostics.append(
                make(
                    "ST500",
                    f"declared eligibility names unknown kernel shape {key!r}",
                    shape=key,
                    declared=declared[key],
                )
            )
        elif key not in declared:
            diagnostics.append(
                make(
                    "ST500",
                    f"kernel shape {key!r} missing from the declared "
                    "eligibility table",
                    shape=key,
                    derived=derived[key],
                )
            )
        elif declared[key] != derived[key]:
            diagnostics.append(
                make(
                    "ST500",
                    f"kernel shape {key!r}: declared fan-out "
                    f"{declared[key]!r} but the dataflow derives "
                    f"{derived[key]!r}",
                    shape=key,
                    declared=declared[key],
                    derived=derived[key],
                )
            )
    return diagnostics


def classification_report() -> List[Diagnostic]:
    """ST501 records: one INFO per kernel shape with its full verdict."""
    diagnostics: List[Diagnostic] = []
    for shape in enumerate_shapes():
        effects = kernel_effects(shape)
        verdict = classify(effects)
        mode = _mode_of(effects)
        diagnostics.append(
            make(
                "ST501",
                f"kernel shape {shape.key}: {verdict.value} "
                f"(fan-out {mode if mode is not None else 'serial'})",
                shape=shape.key,
                classification=verdict.value,
                mode=mode,
                effects=sorted(e.value for e in effects),
            )
        )
    return diagnostics


def kernel_table_diagnostics() -> List[Diagnostic]:
    """The full kernel-table gate: classifications, drift, field audit,
    and the generated-kernel audit (op set + pragma drift)."""
    return (
        classification_report()
        + check_eligibility()
        + audit_spec_fields()
        + check_generated_kernels()
    )


# --------------------------------------------------------------------------
# Generated kernels (compiled tier, ST51x)
# --------------------------------------------------------------------------

#: Everything a generated kernel may contain.  The arithmetic mirrors the
#: line ST401 draws for hand-written detector code — adds, subtracts,
#: shifts, masks, compares, plus the host-side telescoped multiplies
#: ``library.py`` itself uses — and the statement forms are the loop/branch
#: skeleton of the templates.  Division, modulo, exponentiation, imports,
#: comprehensions, try/with, and every other construct are absent from
#: this set and therefore ST510 violations.
_GENERATED_ALLOWED = frozenset(
    {
        ast.Module, ast.FunctionDef, ast.arguments, ast.arg,
        ast.Assign, ast.AugAssign, ast.Expr, ast.Return, ast.If, ast.For,
        ast.While, ast.Break, ast.Continue, ast.Pass, ast.Raise,
        ast.Name, ast.Constant, ast.Tuple, ast.List, ast.Subscript,
        ast.Slice, ast.Compare, ast.BoolOp, ast.BinOp, ast.UnaryOp,
        ast.Call, ast.Attribute, ast.keyword, ast.Load, ast.Store,
        ast.And, ast.Or, ast.USub, ast.Not, ast.Invert,
        ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
        ast.Is, ast.IsNot,
        ast.Add, ast.Sub, ast.Mult, ast.LShift, ast.RShift,
        ast.BitAnd, ast.BitOr,
    }
)

#: Free functions a generated kernel may call: builtins with direct
#: lowering plus the two sanctioned arithmetic helpers (profile-routed
#: multiply, MSB-search square root) and the sparse-table hooks.
_GENERATED_NAME_CALLS = frozenset(
    {
        "range", "len", "int", "bool", "float", "min", "max",
        "checked_multiply", "approx_isqrt", "square", "increment",
        "ValueError",
    }
)

#: Methods a generated kernel may call on locals (list/ndarray surface).
_GENERATED_METHODS = frozenset({"append", "sum", "any", "all", "astype"})

#: The numpy namespace slice the generated-numpy backend may touch.
_GENERATED_NP_ATTRS = frozenset(
    {
        "empty", "zeros", "arange", "asarray", "fromiter",
        "bincount", "nonzero", "argmax", "int64", "float64", "bool_",
    }
)


def _generated_source_violations(tree: ast.AST) -> List[Tuple[int, str]]:
    """Every (line, reason) where a generated source leaves the op set."""
    violations: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", 0)
        if type(node) not in _GENERATED_ALLOWED:
            violations.append(
                (lineno, f"{type(node).__name__} has no restricted-op-set form")
            )
            continue
        if isinstance(node, ast.FunctionDef) and node.decorator_list:
            violations.append((lineno, "decorators are outside the op set"))
        elif isinstance(node, ast.Attribute):
            if not isinstance(node.ctx, ast.Load):
                violations.append((lineno, "attribute store"))
            elif isinstance(node.value, ast.Name) and node.value.id == "np":
                if node.attr not in _GENERATED_NP_ATTRS:
                    violations.append(
                        (lineno, f"numpy attribute np.{node.attr} not whitelisted")
                    )
            elif node.attr not in _GENERATED_METHODS and node.attr != "shape":
                violations.append(
                    (lineno, f"attribute .{node.attr} not whitelisted")
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id not in _GENERATED_NAME_CALLS:
                    violations.append(
                        (lineno, f"call to {func.id!r} not whitelisted")
                    )
            elif not isinstance(func, ast.Attribute):
                violations.append((lineno, "computed call target"))
    return violations


def check_generated_kernels() -> List[Diagnostic]:
    """Audit the compiled tier's generated sources (ST510/ST511).

    ST510 walks each reference source (one per constructible shape) and
    rejects any construct outside :data:`_GENERATED_ALLOWED` — the same
    restricted operation set the templates claim to compile from.

    ST511 cross-checks each source's ``# parallel-mode:`` pragma against
    :func:`derive_eligibility_table` for its shape.  The effect-collector
    proof behind ST501/ST502 cannot apply here — generated kernels return
    deltas and never touch engine state, so their effect sets are empty
    and the dataflow would vacuously prove ``tally`` for everything;
    instead the pragma must equal the mode the *shape* dataflow derives
    (``None`` → ``serial``), keeping fan-out derived from analysis rather
    than a hand table inside the code generator.
    """
    from repro.stat4.compiled import reference_sources  # lazy: avoids cycle

    table = derive_eligibility_table()
    diagnostics: List[Diagnostic] = []
    for shape_key, source in sorted(reference_sources().items()):
        virtual_file = f"<generated:{shape_key}>"
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            diagnostics.append(
                make(
                    "ST510",
                    f"generated kernel {shape_key!r} does not parse: {exc}",
                    file=virtual_file,
                    shape=shape_key,
                )
            )
            continue
        for lineno, reason in _generated_source_violations(tree):
            diagnostics.append(
                make(
                    "ST510",
                    f"generated kernel {shape_key!r} leaves the restricted "
                    f"op set: {reason}",
                    file=virtual_file,
                    line=lineno,
                    shape=shape_key,
                    reason=reason,
                )
            )
        match = _KERNEL_PRAGMA.search(source)
        declared = match.group(1) if match else None
        derived = table.get(shape_key)
        derived_name = derived if derived is not None else "serial"
        if declared is None:
            diagnostics.append(
                make(
                    "ST511",
                    f"generated kernel {shape_key!r} carries no "
                    "'# parallel-mode:' pragma",
                    file=virtual_file,
                    shape=shape_key,
                    derived=derived_name,
                )
            )
        elif declared != derived_name:
            diagnostics.append(
                make(
                    "ST511",
                    f"generated kernel {shape_key!r} declares parallel mode "
                    f"{declared!r} but the shape dataflow derives "
                    f"{derived_name!r}",
                    file=virtual_file,
                    shape=shape_key,
                    declared=declared,
                    derived=derived_name,
                )
            )
    return diagnostics


# --------------------------------------------------------------------------
# Pragma-declared kernels (detector backends)
# --------------------------------------------------------------------------


def _declared_kernels(
    tree: ast.AST, lines: Sequence[str]
) -> List[Tuple[ast.FunctionDef, str, int]]:
    """Functions carrying a ``# parallel-mode:`` pragma (def line or above)."""
    declared = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines):
                match = _KERNEL_PRAGMA.search(lines[lineno - 1])
                if match:
                    declared.append((node, match.group(1), node.lineno))
                    break
    return declared


def check_kernel_file(path: str) -> List[Diagnostic]:
    """Classify every pragma-declared kernel in a backend file.

    A function annotated ``# parallel-mode: <mode>`` claims its updates
    are safe under that fan-out mode.  The dataflow pass derives the mode
    it can actually prove (with no shape facts — every branch is live);
    a claim the proof does not cover is ST502, a matching claim is an
    ST501 record, and ``serial`` is always accepted (opting out).
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            make("ST502", f"cannot parse kernel file: {exc}", file=path)
        ]
    lines = source.splitlines()
    functions = _collect_functions(tree)
    collector = _EffectCollector(functions, _Facts())
    diagnostics: List[Diagnostic] = []
    for func, declared_mode, lineno in _declared_kernels(tree, lines):
        if declared_mode not in KERNEL_MODES:
            diagnostics.append(
                make(
                    "ST502",
                    f"kernel {func.name!r} declares unknown parallel mode "
                    f"{declared_mode!r} (expected one of {KERNEL_MODES})",
                    file=path,
                    line=lineno,
                    kernel=func.name,
                    declared=declared_mode,
                )
            )
            continue
        effects = collector.effects_of(func.name)
        derived_mode = _mode_of(effects)
        derived_name = derived_mode if derived_mode is not None else "serial"
        context = dict(
            kernel=func.name,
            declared=declared_mode,
            derived=derived_name,
            classification=classify(effects).value,
            effects=sorted(e.value for e in effects),
        )
        if declared_mode in (derived_name, "serial"):
            diagnostics.append(
                make(
                    "ST501",
                    f"kernel {func.name!r}: declared {declared_mode!r} is "
                    f"covered by the derived verdict ({derived_name})",
                    file=path,
                    line=lineno,
                    **context,
                )
            )
        else:
            diagnostics.append(
                make(
                    "ST502",
                    f"kernel {func.name!r} declares parallel mode "
                    f"{declared_mode!r} but the dataflow only proves "
                    f"{derived_name!r}",
                    file=path,
                    line=lineno,
                    **context,
                )
            )
    return diagnostics


# --------------------------------------------------------------------------
# Shared-state race lint (module registries, pool caches, shm lifecycle)
# --------------------------------------------------------------------------

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "remove",
        "discard",
        "add",
    }
)
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


@dataclass
class _ModuleModel:
    """What the race lint knows about one module's source."""

    mutables: Set[str]
    locks: Set[str]
    imported: Set[str]
    functions: Dict[str, ast.FunctionDef]
    calls: Dict[str, Set[str]]  # function name → called simple names
    roots: Set[str]  # worker-context entry points


def _tail_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _build_module_model(
    tree: ast.Module, lines: Sequence[str] = ()
) -> _ModuleModel:
    mutables: Set[str] = set()
    locks: Set[str] = set()
    imported: Set[str] = set()
    classes: Dict[str, ast.ClassDef] = {}

    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                  ast.ListComp, ast.SetComp)):
                mutables.add(target.id)
            elif isinstance(value, ast.Call):
                callee = _tail_name(value.func)
                if callee in _MUTABLE_FACTORIES:
                    mutables.add(target.id)
                elif callee in _LOCK_FACTORIES:
                    locks.add(target.id)
        if isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = stmt

    functions: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            functions.setdefault(node.name, node)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imported.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                imported.add(alias.asname or alias.name)
    # Methods also get class-qualified keys so instantiation edges resolve
    # to the *right* __init__ (bare names collide across classes).
    for class_def in classes.values():
        for item in class_def.body:
            if isinstance(item, ast.FunctionDef):
                functions[f"{class_def.name}.{item.name}"] = item

    calls: Dict[str, Set[str]] = {}
    for name, func in functions.items():
        called: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = _tail_name(node.func)
                if callee in classes:
                    # Instantiation runs the class's __init__.
                    qualified = f"{callee}.__init__"
                    if qualified in functions:
                        called.add(qualified)
                elif callee in functions:
                    called.add(callee)
        calls[name] = called

    roots: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _tail_name(node.func)
        if callee == "submit" and node.args:
            task = _tail_name(node.args[0])
            if task in functions:
                roots.add(task)
        elif callee == "signal" and len(node.args) >= 2:
            handler = _tail_name(node.args[1])
            if handler in functions:
                roots.add(handler)
        # os.register_at_fork callbacks are exempt by rule: the child is
        # single-threaded when they run, so no access pair can conflict.

    # Functions another module submits to a pool declare it with a
    # '# worker-context' pragma (same cross-module honesty contract as
    # '# parallel-mode:'): the per-module closure cannot see a foreign
    # .submit call, so the callee marks itself.
    for name, func in functions.items():
        for lineno in (func.lineno, func.lineno - 1):
            if 1 <= lineno <= len(lines) and _WORKER_PRAGMA in lines[lineno - 1]:
                roots.add(name)
                break

    return _ModuleModel(
        mutables=mutables,
        locks=locks,
        imported=imported,
        functions=functions,
        calls=calls,
        roots=roots,
    )


def _reachable_functions(model: _ModuleModel) -> Set[str]:
    reachable: Set[str] = set()
    frontier = list(model.roots)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(model.calls.get(name, ()))
    return reachable


def _find_mutations(
    func: ast.FunctionDef, model: _ModuleModel
) -> List[Tuple[int, str, bool]]:
    """``(line, description, guarded)`` mutations of shared module state."""
    mutations: List[Tuple[int, str, bool]] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.With):
            holds_lock = guarded or any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in model.locks
                for item in node.items
            )
            for item in node.items:
                visit(item.context_expr, guarded)
            for child in node.body:
                visit(child, holds_lock)
            return
        if isinstance(node, ast.FunctionDef) and node is not func:
            return  # nested defs are separate functions
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATOR_METHODS
                and isinstance(callee.value, ast.Name)
                and callee.value.id in model.mutables
            ):
                mutations.append(
                    (
                        node.lineno,
                        f"{callee.value.id}.{callee.attr}(...)",
                        guarded,
                    )
                )
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in model.mutables
            ):
                mutations.append(
                    (node.lineno, f"{target.value.id}[...] assignment", guarded)
                )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in model.imported
            ):
                mutations.append(
                    (
                        node.lineno,
                        f"module attribute {target.value.id}."
                        f"{target.attr} assignment",
                        guarded,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for stmt in func.body:
        visit(stmt, False)
    return mutations


def check_shared_state_source(
    source: str, file: Optional[str] = None
) -> List[Diagnostic]:
    """Race-lint one module: ST503 (unguarded worker-reachable mutation),
    ST505 (segment creation bypassing the registry), ST506 (pragma'd)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [make("ST503", f"cannot parse module: {exc}", file=file)]
    lines = source.splitlines()
    model = _build_module_model(tree, lines)
    reachable = _reachable_functions(model)
    diagnostics: List[Diagnostic] = []

    def pragma(line: int) -> bool:
        return 1 <= line <= len(lines) and _RACE_PRAGMA in lines[line - 1]

    for name in sorted(reachable):
        func = model.functions.get(name)
        if func is None:
            continue
        for lineno, description, guarded in _find_mutations(func, model):
            if guarded:
                continue
            if pragma(lineno):
                diagnostics.append(
                    make(
                        "ST506",
                        f"race finding suppressed by pragma: {description} "
                        f"in worker-reachable {name!r}",
                        file=file,
                        line=lineno,
                        function=name,
                        construct=description,
                    )
                )
            else:
                diagnostics.append(
                    make(
                        "ST503",
                        f"unguarded mutation of shared module state: "
                        f"{description} in {name!r}, reachable from worker "
                        "context without holding a module lock",
                        file=file,
                        line=lineno,
                        function=name,
                        construct=description,
                    )
                )

    # Segment-lifecycle rule: every shared_memory creation must go through
    # SharedColumnSegment.pack so the live-segment registry (and therefore
    # the atexit/SIGTERM crash sweep) knows about it.
    enclosing: Dict[int, str] = {}
    for func in model.functions.values():
        for node in ast.walk(func):
            enclosing.setdefault(id(node), func.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _tail_name(node.func) != "SharedMemory":
            continue
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if not creates:
            continue
        owner = enclosing.get(id(node), "<module>")
        if owner == "pack":
            continue
        if pragma(node.lineno):
            diagnostics.append(
                make(
                    "ST506",
                    "race finding suppressed by pragma: direct shared "
                    f"segment creation in {owner!r}",
                    file=file,
                    line=node.lineno,
                    function=owner,
                    construct="SharedMemory(create=True)",
                )
            )
        else:
            diagnostics.append(
                make(
                    "ST505",
                    f"shared segment created directly in {owner!r}; go "
                    "through SharedColumnSegment.pack so the live-segment "
                    "registry can sweep it on crash",
                    file=file,
                    line=node.lineno,
                    function=owner,
                )
            )
    return diagnostics


def check_shared_state_file(path: str) -> List[Diagnostic]:
    """Race-lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_shared_state_source(handle.read(), file=path)
