"""Consistency rules for binding-table deployments (ST42x).

A deployment description lists binding entries as plain mappings (the JSON
form of a :class:`~repro.stat4.distributions.TrackSpec` plus its stage).
Checking raw mappings — rather than constructed ``TrackSpec`` objects — is
deliberate: the analyzer must report *every* problem in a config file with
codes and context, whereas the constructors raise on the first.

Checked here:

- ST420: stage outside ``[0, binding_stages)``;
- ST421: two bindings feeding the same distribution slot;
- ST422: distribution id outside ``[0, counter_num)``;
- ST423: percentile target outside ``(0, 100)``;
- ST424: EWMA shift geometry incompatible with the stats width;
- ST425: sparse-kind binding on a slot not compiled sparse (and the
  warning-level converse);
- ST426: empty acceptance window ``[lo, hi)``;
- ST427: time-series binding without a positive interval;
- ST428: window larger than ``STAT_COUNTER_SIZE`` (silently clamped at
  runtime) or a window on a non-time-series binding.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.stat4.config import Stat4Config

__all__ = ["check_bindings", "check_ewma"]

_KINDS = ("frequency", "time_series", "sparse_frequency")


def _as_int(value: object) -> Optional[int]:
    return value if isinstance(value, int) and not isinstance(value, bool) else None


def check_bindings(
    config: Stat4Config,
    bindings: Sequence[Mapping[str, object]],
    file: Optional[str] = None,
) -> List[Diagnostic]:
    """Check every binding entry of a deployment against its config."""
    diagnostics: List[Diagnostic] = []
    slot_users: Dict[int, List[str]] = {}
    for index, binding in enumerate(bindings):
        ref = f"bindings[{index}]"

        stage = _as_int(binding.get("stage", 0))
        if stage is None or not 0 <= stage < config.binding_stages:
            diagnostics.append(
                make(
                    "ST420",
                    f"{ref} names stage {binding.get('stage')!r} but the "
                    f"config compiles {config.binding_stages} stage(s)",
                    file=file,
                    binding=index,
                )
            )

        dist = _as_int(binding.get("dist"))
        if dist is None or not 0 <= dist < config.counter_num:
            diagnostics.append(
                make(
                    "ST422",
                    f"{ref} targets distribution {binding.get('dist')!r} "
                    f"outside [0, {config.counter_num})",
                    file=file,
                    binding=index,
                )
            )
        else:
            slot_users.setdefault(dist, []).append(ref)

        kind = binding.get("kind", "frequency")
        if kind not in _KINDS:
            diagnostics.append(
                make(
                    "ST430",
                    f"{ref} has unknown kind {kind!r} "
                    f"(expected one of {', '.join(_KINDS)})",
                    file=file,
                    binding=index,
                )
            )
            kind = None

        percent = binding.get("percent")
        if percent is not None:
            as_int = _as_int(percent)
            if as_int is None or not 0 < as_int < 100:
                diagnostics.append(
                    make(
                        "ST423",
                        f"{ref} tracks percentile {percent!r}; targets must "
                        "lie strictly in (0, 100)",
                        file=file,
                        binding=index,
                    )
                )

        if dist is not None and kind is not None:
            is_sparse_slot = dist in config.sparse_dists
            if kind == "sparse_frequency" and not is_sparse_slot:
                diagnostics.append(
                    make(
                        "ST425",
                        f"{ref} uses sparse tracking but slot {dist} is not "
                        "in sparse_dists (hashed storage is compile-time)",
                        file=file,
                        binding=index,
                    )
                )
            elif kind != "sparse_frequency" and is_sparse_slot:
                diagnostics.append(
                    make(
                        "ST425",
                        f"{ref} uses dense tracking on slot {dist}, which is "
                        "compiled with hashed sparse storage",
                        file=file,
                        line=None,
                        severity=Severity.WARNING,
                        binding=index,
                    )
                )

        accept_lo = _as_int(binding.get("accept_lo", 0)) or 0
        accept_hi = _as_int(binding.get("accept_hi", 0)) or 0
        if accept_hi > 0 and accept_lo >= accept_hi:
            diagnostics.append(
                make(
                    "ST426",
                    f"{ref} filter [{accept_lo}, {accept_hi}) admits no value",
                    file=file,
                    binding=index,
                )
            )

        interval = binding.get("interval", 0)
        if kind == "time_series" and not (
            isinstance(interval, (int, float)) and interval > 0
        ):
            diagnostics.append(
                make(
                    "ST427",
                    f"{ref} is a time series but has interval "
                    f"{interval!r}; windowed tracking needs a positive one",
                    file=file,
                    binding=index,
                )
            )

        window = _as_int(binding.get("window", 0)) or 0
        if window > config.counter_size:
            diagnostics.append(
                make(
                    "ST428",
                    f"{ref} asks for a {window}-interval window but the slot "
                    f"only has {config.counter_size} cells (clamped)",
                    file=file,
                    binding=index,
                )
            )
        elif window > 0 and kind is not None and kind != "time_series":
            diagnostics.append(
                make(
                    "ST428",
                    f"{ref} sets a window on a {kind} binding; windows apply "
                    "to time series",
                    file=file,
                    binding=index,
                )
            )

    for dist, users in sorted(slot_users.items()):
        if len(users) > 1:
            diagnostics.append(
                make(
                    "ST421",
                    f"distribution slot {dist} is fed by multiple bindings "
                    f"({', '.join(users)}); concurrent updates corrupt its "
                    "moments",
                    file=file,
                    dist=dist,
                )
            )
    return diagnostics


def check_ewma(
    config: Stat4Config,
    ewma: Mapping[str, object],
    file: Optional[str] = None,
) -> List[Diagnostic]:
    """Check EWMA shift geometry against the stats register width.

    ``mean += (x - mean) >> alpha_shift`` only works when the shift leaves
    bits to fold in: a shift at or beyond the register width swallows
    every error term (the mean never moves), and a shift beyond the
    fixed-point fraction silently drops sub-unit errors.
    """
    diagnostics: List[Diagnostic] = []
    alpha_shift = _as_int(ewma.get("alpha_shift", 3)) or 0
    frac_bits = _as_int(ewma.get("frac_bits", 8)) or 0
    if alpha_shift >= config.stats_width:
        diagnostics.append(
            make(
                "ST424",
                f"alpha_shift {alpha_shift} >= stats_width "
                f"{config.stats_width}: every error term shifts to zero and "
                "the EWMA never updates",
                file=file,
                alpha_shift=alpha_shift,
                stats_width=config.stats_width,
            )
        )
    elif alpha_shift > frac_bits:
        diagnostics.append(
            make(
                "ST424",
                f"alpha_shift {alpha_shift} exceeds frac_bits {frac_bits}: "
                "sub-unit errors are truncated away (slow convergence)",
                file=file,
                severity=Severity.WARNING,
                alpha_shift=alpha_shift,
                frac_bits=frac_bits,
            )
        )
    return diagnostics
