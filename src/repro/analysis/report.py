"""Rendering diagnostics: the text and ``--json`` forms of ``repro lint``.

Output is deterministic — diagnostics sort by (file, line, code, message)
— so a golden-output test can pin the JSON for a known-bad deployment and
CI diffs stay readable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["sort_diagnostics", "severity_counts", "format_text", "format_json"]


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Deterministic presentation order."""
    return sorted(
        diagnostics,
        key=lambda d: (d.file or "", d.line or 0, d.code, d.message),
    )


def severity_counts(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    for diag in diagnostics:
        counts[diag.severity] += 1
    return {severity.value: count for severity, count in counts.items()}


def format_text(
    targets: Sequence[Tuple[str, Sequence[Diagnostic]]]
) -> str:
    """Human-readable report over ``(target, diagnostics)`` pairs."""
    lines: List[str] = []
    combined: List[Diagnostic] = []
    for target, diagnostics in targets:
        combined.extend(diagnostics)
        if not diagnostics:
            lines.append(f"{target}: clean")
            continue
        for diag in sort_diagnostics(diagnostics):
            lines.append(str(diag))
    counts = severity_counts(combined)
    lines.append(
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info(s)"
    )
    return "\n".join(lines)


def format_json(
    targets: Sequence[Tuple[str, Sequence[Diagnostic]]],
    extra: Optional[Mapping[str, object]] = None,
) -> str:
    """Stable JSON report (the golden-tested form).

    ``extra`` merges additional top-level keys into the payload — the
    ``--concurrency`` run attaches the derived/declared eligibility
    tables this way, without disturbing the golden keys.
    """
    combined: List[Diagnostic] = []
    rendered = []
    for target, diagnostics in targets:
        combined.extend(diagnostics)
        rendered.append(
            {
                "target": target,
                "diagnostics": [
                    d.to_dict() for d in sort_diagnostics(diagnostics)
                ],
                "summary": severity_counts(diagnostics),
            }
        )
    payload: Dict[str, object] = {
        "version": 1,
        "targets": rendered,
        "summary": severity_counts(combined),
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=False)
