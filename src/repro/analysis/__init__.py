"""Static analysis of Stat4 deployments (the ``repro lint`` subsystem).

The paper's central claim — every measure is computable with P4-expressible
integer operations inside fixed register budgets — is *statically
checkable*.  This package is the checker.  It unifies what used to be two
isolated helpers (:mod:`repro.resources.lint`,
:mod:`repro.resources.overflow`) into one analyzer with

- a rule registry (:mod:`repro.analysis.diagnostics`): every finding
  carries a stable ``ST4xx`` code, a severity, and file/line/register
  context, so CI and humans consume the same output;
- an expressibility pass (:mod:`repro.analysis.expressibility`): the AST
  lint generalized to packages and call graphs, with ``# p4-ok``
  suppressions for documented bounded loops;
- a width/overflow dataflow pass (:mod:`repro.analysis.dataflow`): value
  magnitudes propagated through a :class:`~repro.stat4.config.Stat4Config`
  to per-register overflow horizons and the minimal safe unit shift;
- a P4-source pass (:mod:`repro.analysis.p4source`): declared-vs-required
  register widths and inexpressible operators in emitted P4-16;
- binding-table consistency rules (:mod:`repro.analysis.bindings`);
- deployment-file analysis (:mod:`repro.analysis.deployment`) tying the
  passes together over a JSON deployment description; and
- a concurrency-exactness pass (:mod:`repro.analysis.concurrency`,
  ``ST5xx``, opt-in via ``repro lint --concurrency``): kernel-shape
  classification (merge-exact / replay-exact / order-dependent) deriving
  the parallel fan-out eligibility table, plus a shared-state race lint
  over the parallel/shm layer.

:func:`analyze_target` dispatches on what it is given (deployment config,
P4 source, Python file, directory, or dotted module name); the ``repro
lint`` CLI is a thin shell around it.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.analysis.bindings import check_bindings, check_ewma
from repro.analysis.concurrency import (
    Classification,
    Effect,
    KernelShape,
    audit_spec_fields,
    check_eligibility,
    check_generated_kernels,
    check_kernel_file,
    check_shared_state_file,
    check_shared_state_source,
    classification_report,
    classify,
    derive_eligibility_table,
    enumerate_shapes,
    kernel_effects,
    kernel_table_diagnostics,
    shape_key_of_spec,
)
from repro.analysis.dataflow import (
    OverflowBound,
    analyze_overflow,
    check_overflow,
    required_register_widths,
    safe_unit_shift,
)
from repro.analysis.deployment import (
    DeploymentSpec,
    analyze_deployment,
    load_deployment,
)
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    rule_index,
)
from repro.analysis.expressibility import (
    P4_CLAIMING_MODULES,
    scan_file,
    scan_module,
    scan_package_dir,
    scan_source,
)
from repro.analysis.p4source import check_p4_source
from repro.analysis.report import format_json, format_text, sort_diagnostics

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "rule_index",
    "scan_source",
    "scan_file",
    "scan_module",
    "scan_package_dir",
    "P4_CLAIMING_MODULES",
    "OverflowBound",
    "analyze_overflow",
    "safe_unit_shift",
    "check_overflow",
    "required_register_widths",
    "check_p4_source",
    "check_bindings",
    "check_ewma",
    "DeploymentSpec",
    "load_deployment",
    "analyze_deployment",
    "analyze_target",
    "format_text",
    "format_json",
    "sort_diagnostics",
    "Classification",
    "Effect",
    "KernelShape",
    "audit_spec_fields",
    "check_eligibility",
    "check_generated_kernels",
    "check_kernel_file",
    "check_shared_state_file",
    "check_shared_state_source",
    "classification_report",
    "classify",
    "derive_eligibility_table",
    "enumerate_shapes",
    "kernel_effects",
    "kernel_table_diagnostics",
    "shape_key_of_spec",
]


def _concurrency_file_checks(path: str) -> List[Diagnostic]:
    """The per-file half of ``--concurrency``: kernel pragmas + race lint.

    Runs on every ``.py`` file, including ``# p4-ok-file``-pragma'd ones —
    that pragma opts a *host-side* module out of the P4-expressibility
    walk, and the parallel layer's modules are exactly the host-side ones
    this pass exists to check.
    """
    return check_kernel_file(path) + check_shared_state_file(path)


def analyze_target(
    target: str, max_value: Optional[int] = None, concurrency: bool = False
) -> Tuple[List[Diagnostic], bool]:
    """Analyze one CLI target; returns ``(diagnostics, resolved)``.

    ``resolved`` is False when the target could not be interpreted at all
    (missing file, unimportable module) — the CLI turns that into exit
    code 2 rather than a clean report.

    ``concurrency=True`` adds the ST5xx pass: per-binding kernel-shape
    records for deployment configs, and the ``# parallel-mode:`` kernel
    check plus the shared-state race lint for Python files/directories.
    """
    if target.endswith(".json"):
        if not os.path.exists(target):
            return [], False
        spec, diags = load_deployment(target)
        if spec is not None:
            diags = diags + analyze_deployment(spec, concurrency=concurrency)
        return diags, True
    if target.endswith(".p4"):
        if not os.path.exists(target):
            return [], False
        with open(target, "r", encoding="utf-8") as handle:
            source = handle.read()
        return check_p4_source(source, max_value=max_value, file=target), True
    if target.endswith(".py"):
        if not os.path.exists(target):
            return [], False
        diags = scan_file(target)
        if concurrency:
            diags = diags + _concurrency_file_checks(target)
        return diags, True
    if os.path.isdir(target):
        diags = scan_package_dir(target)
        if concurrency:
            for dirpath, _dirnames, filenames in sorted(os.walk(target)):
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        diags = diags + _concurrency_file_checks(
                            os.path.join(dirpath, filename)
                        )
        return diags, True
    try:
        return scan_module(target), True
    except (ImportError, ValueError, OSError):
        return [], False
