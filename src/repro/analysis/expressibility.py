"""P4-expressibility pass: the AST lint, package- and call-graph-aware.

The original :mod:`repro.resources.lint` checked one module at a time and
only caught attribute-style library calls (``math.sqrt``).  This pass
closes the gaps:

- ``from math import sqrt`` followed by a bare ``sqrt(x)`` is flagged, as
  is ``import numpy as anything`` followed by ``anything.mean(...)``;
- a whole package can be walked recursively (every ``.py`` under it);
- when scanning a single module, calls into ``from``-imported helpers are
  followed into their defining modules, so a division hidden in a helper
  reached from a data-plane update path is still caught;
- a trailing ``# p4-ok`` comment suppresses the finding on that line
  (downgraded to an ST406 info note, so JSON output still records it) —
  the documented escape hatch for compile-time-bounded loops.  A file
  whose first lines contain ``# p4-ok-file`` is skipped entirely during
  package walks (the Welford floating-point reference), but still scanned
  when named directly.

Forbidden constructs (each a registered rule):

- ST401: ``/``, ``//``, ``%``, ``**`` (binary or augmented);
- ST402: float literals;
- ST403: calls into math/numpy/statistics, however imported;
- ST404: ``float()``, ``divmod()``, ``pow()``;
- ST405: ``while`` loops (data-dependent iteration; ``for`` over a fixed
  ``range`` is compiler unrolling and accepted).
"""

from __future__ import annotations

import ast
import importlib.util
import inspect
import os
from types import ModuleType
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, make

__all__ = [
    "P4_CLAIMING_MODULES",
    "scan_source",
    "scan_file",
    "scan_module",
    "scan_package_dir",
]

#: Modules whose data-plane paths claim P4 expressibility; the CI gate
#: (tests/analysis/test_ci_gate.py) lints every one of these on every run.
P4_CLAIMING_MODULES: Tuple[str, ...] = (
    "repro.core.bitops",
    "repro.core.approx",
    "repro.core.stats",
    "repro.core.outlier",
    "repro.core.ewma",
    "repro.core.percentile",
)

_FORBIDDEN_BINOPS = {
    ast.Div: "division",
    ast.FloorDiv: "integer division",
    ast.Mod: "modulo",
    ast.Pow: "exponentiation",
}

_FORBIDDEN_MODULES = {"math", "numpy", "np", "statistics"}
_FORBIDDEN_BUILTINS = {"float", "divmod", "pow"}

_SUPPRESS_PRAGMA = "# p4-ok"
_FILE_PRAGMA = "# p4-ok-file"

#: How deep the single-module scan follows from-imported helpers.
_MAX_FOLLOW_DEPTH = 3


def _collect_imports(tree: ast.AST) -> Tuple[Set[str], Dict[str, str]]:
    """Names that reach forbidden libraries.

    Returns ``(module_aliases, banned_names)``: aliases that refer to a
    forbidden module (``import numpy as np`` → ``np``) and bare names bound
    from one (``from math import sqrt as s`` → ``{"s": "math.sqrt"}``).
    """
    module_aliases: Set[str] = set(_FORBIDDEN_MODULES)
    banned_names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _FORBIDDEN_MODULES:
                    module_aliases.add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _FORBIDDEN_MODULES:
                for alias in node.names:
                    banned_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return module_aliases, banned_names


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        file: Optional[str],
        module_aliases: Set[str],
        banned_names: Dict[str, str],
    ):
        self.file = file
        self.module_aliases = module_aliases
        self.banned_names = banned_names
        self.diagnostics: List[Diagnostic] = []

    def _flag(self, node: ast.AST, code: str, construct: str, detail: str) -> None:
        self.diagnostics.append(
            make(
                code,
                f"{construct}: {detail}",
                file=self.file,
                line=getattr(node, "lineno", None),
                construct=construct,
                detail=detail,
            )
        )

    def _check_op(self, node: ast.AST, op: ast.operator) -> None:
        for op_type, name in _FORBIDDEN_BINOPS.items():
            if isinstance(op, op_type):
                self._flag(node, "ST401", name, "P4 ALUs have no divider")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_op(node, node.op)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_op(node, node.op)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self._flag(node, "ST402", "float literal", repr(node.value))
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._flag(node, "ST405", "while loop", "data-dependent iteration")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in self.module_aliases:
                self._flag(
                    node,
                    "ST403",
                    "library call",
                    f"{func.value.id}.{func.attr} is not a switch primitive",
                )
        if isinstance(func, ast.Name):
            if func.id in self.banned_names:
                self._flag(
                    node,
                    "ST403",
                    "library call",
                    f"{func.id} (= {self.banned_names[func.id]}) "
                    "is not a switch primitive",
                )
            elif func.id in _FORBIDDEN_BUILTINS:
                self._flag(node, "ST404", "builtin call", f"{func.id}()")
        self.generic_visit(node)


def _apply_suppressions(
    diagnostics: List[Diagnostic], source_lines: Sequence[str]
) -> List[Diagnostic]:
    """Downgrade findings whose source line carries ``# p4-ok``."""
    out: List[Diagnostic] = []
    for diag in diagnostics:
        line_text = ""
        if diag.line and 1 <= diag.line <= len(source_lines):
            line_text = source_lines[diag.line - 1]
        if _SUPPRESS_PRAGMA in line_text:
            out.append(
                make(
                    "ST406",
                    f"suppressed {diag.code} ({diag.context.get('construct')}) "
                    "via '# p4-ok'",
                    file=diag.file,
                    line=diag.line,
                    suppressed=diag.code,
                    construct=diag.context.get("construct"),
                )
            )
        else:
            out.append(diag)
    return out


def _scan_tree(
    tree: ast.AST, source_lines: Sequence[str], file: Optional[str]
) -> List[Diagnostic]:
    module_aliases, banned_names = _collect_imports(tree)
    visitor = _Visitor(file, module_aliases, banned_names)
    visitor.visit(tree)
    return _apply_suppressions(visitor.diagnostics, source_lines)


def scan_source(source: str, file: Optional[str] = None) -> List[Diagnostic]:
    """Scan Python source text; returns all diagnostics found."""
    tree = ast.parse(source)
    return _scan_tree(tree, source.splitlines(), file)


def _has_file_pragma(source: str) -> bool:
    for line in source.splitlines()[:5]:
        if _FILE_PRAGMA in line:
            return True
    return False


def _module_source_path(module_name: str, near: Optional[str]) -> Optional[str]:
    """Resolve a module name to a source file: sibling file, then importlib."""
    if near:
        candidate = (
            os.path.join(os.path.dirname(near), *module_name.split(".")) + ".py"
        )
        if os.path.exists(candidate):
            return candidate
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError, ModuleNotFoundError):
        return None
    if spec is not None and spec.origin and spec.origin.endswith(".py"):
        return spec.origin
    return None


def _imported_callables(
    tree: ast.AST, file: Optional[str]
) -> Dict[str, Tuple[str, str]]:
    """Map local name → (source path, function name) for from-imports."""
    out: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level != 0:
            continue
        root = (node.module or "").split(".")[0]
        if not node.module or root in _FORBIDDEN_MODULES:
            continue
        path = _module_source_path(node.module, near=file)
        if path is None:
            continue
        for alias in node.names:
            out[alias.asname or alias.name] = (path, alias.name)
    return out


def _called_names(tree: ast.AST) -> Set[str]:
    return {
        node.func.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
    }


def _follow_calls(
    call_tree: ast.AST,
    import_tree: ast.AST,
    file: Optional[str],
    visited: Set[Tuple[str, str]],
    depth: int,
) -> List[Diagnostic]:
    """Lint from-imported helpers that ``call_tree`` calls, recursively.

    ``import_tree`` supplies the import bindings — the whole module when
    recursing into a single helper function, since its from-imports live
    at module level, outside the function's subtree.
    """
    if depth >= _MAX_FOLLOW_DEPTH:
        return []
    diagnostics: List[Diagnostic] = []
    callables = _imported_callables(import_tree, file)
    for name in sorted(_called_names(call_tree) & set(callables)):
        path, func_name = callables[name]
        if (path, func_name) in visited:
            continue
        visited.add((path, func_name))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                helper_source = handle.read()
            helper_tree = ast.parse(helper_source)
        except (OSError, SyntaxError):
            continue
        if _has_file_pragma(helper_source):
            continue
        for node in helper_tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == func_name
            ):
                diagnostics.extend(
                    _scan_tree(node, helper_source.splitlines(), path)
                )
                diagnostics.extend(
                    _follow_calls(node, helper_tree, path, visited, depth + 1)
                )
    return diagnostics


def scan_file(path: str, follow_calls: bool = True) -> List[Diagnostic]:
    """Scan one Python file; optionally follow from-imported helpers."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    diagnostics = scan_source(source, file=path)
    if follow_calls:
        tree = ast.parse(source)
        diagnostics.extend(_follow_calls(tree, tree, path, set(), depth=0))
    return diagnostics


def scan_package_dir(directory: str) -> List[Diagnostic]:
    """Recursively scan every ``.py`` file under a directory.

    Files carrying a ``# p4-ok-file`` pragma in their first lines are
    skipped with an ST406 note — the whole-file escape hatch for
    documented host-side code (the Welford reference).
    """
    diagnostics: List[Diagnostic] = []
    for root, dirs, files in os.walk(directory):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            if _has_file_pragma(source):
                diagnostics.append(
                    make(
                        "ST406",
                        "file skipped via '# p4-ok-file' pragma",
                        file=path,
                        line=1,
                    )
                )
                continue
            diagnostics.extend(scan_source(source, file=path))
    return diagnostics


def scan_module(
    module: Union[ModuleType, str], follow_calls: bool = True
) -> List[Diagnostic]:
    """Scan an imported module, a dotted module name, or a package.

    Packages are walked recursively; plain modules are scanned with
    call-graph following (helpers reached from the module are linted too).
    """
    if isinstance(module, str):
        spec = importlib.util.find_spec(module)
        if spec is None or spec.origin is None:
            raise ImportError(f"cannot locate module {module!r}")
        if spec.submodule_search_locations:
            return scan_package_dir(list(spec.submodule_search_locations)[0])
        path = spec.origin
    else:
        path = inspect.getsourcefile(module) or inspect.getfile(module)
        if os.path.basename(path) == "__init__.py":
            return scan_package_dir(os.path.dirname(path))
    return scan_file(path, follow_calls=follow_calls)
