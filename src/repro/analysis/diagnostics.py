"""The analyzer's rule registry and structured diagnostics.

Every check the analyzer can perform is a :class:`Rule` with a stable code
(``ST4xx``), a default severity, and a note on which part of the paper it
guards.  Every finding is a :class:`Diagnostic` — code, severity, message,
file/line, plus a free-form context mapping (register name, construct,
binding index…) — with a stable dict form for ``repro lint --json``.

Code blocks:

- ``ST40x`` — P4 expressibility (the Sec. 2 division-free arithmetic);
- ``ST41x`` — register widths and overflow horizons (Sec. 2 units trick);
- ``ST42x`` — binding-table / deployment consistency (Sec. 3 tables);
- ``ST43x`` — malformed deployment descriptions;
- ``ST50x`` — concurrency exactness of the parallel ingest layer
  (:mod:`repro.analysis.concurrency`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is; ``--strict`` fails on any ERROR."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """One registered analyzer rule.

    Attributes:
        code: stable identifier (``ST401``…); never renumbered.
        severity: default severity of findings from this rule.
        title: short human name.
        guards: the paper claim this rule protects.
    """

    code: str
    severity: Severity
    title: str
    guards: str


def _rule(code: str, severity: Severity, title: str, guards: str) -> Rule:
    return Rule(code=code, severity=severity, title=title, guards=guards)


#: The full rule index, keyed by code.  docs/P4_MAPPING.md mirrors this
#: table; tests assert the two stay in sync.
RULES: Dict[str, Rule] = {
    r.code: r
    for r in (
        # -- expressibility (ST40x) ----------------------------------------
        _rule("ST401", Severity.ERROR, "inexpressible arithmetic",
              "Sec. 2: division/modulo/exponentiation have no P4 ALU form"),
        _rule("ST402", Severity.ERROR, "float literal",
              "Sec. 2: all statistics are integer-only"),
        _rule("ST403", Severity.ERROR, "forbidden library call",
              "Sec. 2/Fig. 2: math/numpy helpers are not switch primitives"),
        _rule("ST404", Severity.ERROR, "forbidden builtin call",
              "Sec. 2: float()/divmod()/pow() have no P4 counterpart"),
        _rule("ST405", Severity.ERROR, "data-dependent loop",
              "Fig. 2/3: only compile-time-bounded iteration unrolls"),
        _rule("ST406", Severity.INFO, "suppressed construct",
              "documented exceptions carry a '# p4-ok' pragma"),
        # -- width / overflow dataflow (ST41x) ------------------------------
        _rule("ST410", Severity.ERROR, "value exceeds cell width",
              "Sec. 2: a value of interest must fit its counter cell"),
        _rule("ST411", Severity.ERROR, "overflow horizon too short",
              "Sec. 2: a measure register wraps before one full distribution"),
        _rule("ST412", Severity.WARNING, "register headroom tight",
              "Sec. 2: less than 2x headroom over a full distribution"),
        _rule("ST413", Severity.INFO, "unit coarsening required",
              "Sec. 2: counting in 2^k units restores overflow safety"),
        _rule("ST414", Severity.ERROR, "no safe unit shift",
              "Sec. 2: no coarsening makes this geometry overflow-safe"),
        _rule("ST415", Severity.ERROR, "declared width below required",
              "Sec. 3: emitted register narrower than the dataflow requires"),
        _rule("ST416", Severity.WARNING, "declared width disagrees with config",
              "Sec. 3: P4 typedef widths drifted from the Stat4Config"),
        _rule("ST417", Severity.ERROR, "inexpressible operator in P4 source",
              "Sec. 2: '/' or '%' in emitted P4 would not compile to Tofino"),
        # -- binding tables (ST42x) -----------------------------------------
        _rule("ST420", Severity.ERROR, "binding stage out of range",
              "Sec. 3: a binding names a stage the config never compiled"),
        _rule("ST421", Severity.ERROR, "duplicate distribution slot",
              "Sec. 3/Fig. 4: two bindings feeding one slot corrupt it"),
        _rule("ST422", Severity.ERROR, "dangling distribution id",
              "Sec. 3: slot outside [0, STAT_COUNTER_NUM)"),
        _rule("ST423", Severity.ERROR, "percentile target out of range",
              "Sec. 2/Fig. 3: tracked percentiles live strictly in (0, 100)"),
        _rule("ST424", Severity.ERROR, "EWMA shift incompatible with width",
              "EWMA ablation: alpha shift must leave error bits to fold in"),
        _rule("ST425", Severity.ERROR, "sparse/dense slot mismatch",
              "Sec. 5: hashed storage is a compile-time slot property"),
        _rule("ST426", Severity.ERROR, "empty acceptance window",
              "Sec. 5: a bimodal filter [lo, hi) must admit some value"),
        _rule("ST427", Severity.ERROR, "time series without interval",
              "Sec. 4: windowed tracking needs a positive interval"),
        _rule("ST428", Severity.WARNING, "window inconsistent with geometry",
              "Sec. 4: windows use a prefix of STAT_COUNTER_SIZE cells"),
        # -- deployment descriptions (ST43x) --------------------------------
        _rule("ST430", Severity.ERROR, "invalid deployment description",
              "Sec. 3: the config macros themselves must be well-formed"),
        # -- concurrency exactness (ST50x) ----------------------------------
        _rule("ST500", Severity.ERROR, "fan-out eligibility drift",
              "parallel exactness: declared fan-out table must match the "
              "dataflow-derived one"),
        _rule("ST501", Severity.INFO, "kernel shape classified",
              "parallel exactness: merge/replay/serial verdict per kernel "
              "shape, on record"),
        _rule("ST502", Severity.ERROR, "kernel declares unproven fan-out",
              "parallel exactness: a '# parallel-mode:' claim exceeds what "
              "the dataflow proves"),
        _rule("ST503", Severity.ERROR, "unguarded shared-state mutation",
              "parallel exactness: worker-reachable module state must hold "
              "its lock"),
        _rule("ST504", Severity.ERROR, "spec field outside shape projection",
              "parallel exactness: every TrackSpec field is shape-relevant "
              "or audited irrelevant"),
        _rule("ST505", Severity.ERROR, "shared segment bypasses registry",
              "parallel exactness: segment creation must register for the "
              "crash sweep"),
        _rule("ST506", Severity.INFO, "suppressed race finding",
              "documented exceptions carry a '# race-ok' pragma"),
        # -- generated kernels (ST51x) --------------------------------------
        _rule("ST510", Severity.ERROR, "generated kernel outside op set",
              "compiled tier: generated source must stay inside the "
              "restricted operation set (adds, shifts, compares, constant "
              "multiplies)"),
        _rule("ST511", Severity.ERROR, "generated kernel pragma drift",
              "compiled tier: a generated kernel's '# parallel-mode:' "
              "pragma must match the dataflow-derived eligibility for its "
              "shape"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes:
        code: the rule code (key into :data:`RULES`).
        message: human-readable description of this specific finding.
        severity: resolved severity (defaults to the rule's).
        file: source/config file, when the finding is anchored to one.
        line: 1-based line number, when known.
        context: structured extras (``register``, ``construct``,
            ``binding`` index…) preserved verbatim in JSON output.
    """

    code: str
    message: str
    severity: Severity
    file: Optional[str] = None
    line: Optional[int] = None
    context: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        where = ""
        if self.file:
            where = f"{self.file}:{self.line}: " if self.line else f"{self.file}: "
        return f"{where}{self.code} {self.severity.value}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Stable dict form for ``--json`` output."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "context": dict(self.context),
        }


def make(
    code: str,
    message: str,
    *,
    file: Optional[str] = None,
    line: Optional[int] = None,
    severity: Optional[Severity] = None,
    **context: object,
) -> Diagnostic:
    """Build a diagnostic for a registered rule (severity defaults to it)."""
    rule = RULES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else rule.severity,
        file=file,
        line=line,
        context=context,
    )


def rule_index() -> str:
    """The documented rule index, one line per code."""
    lines = ["code   severity  rule"]
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(
            f"{rule.code}  {rule.severity.value:<8}  {rule.title} — {rule.guards}"
        )
    return "\n".join(lines)
