"""Static checks over P4-16 source (emitted by p4gen or hand-written).

Two classes of check, both text-level (no p4c in the container):

- **ST417** — inexpressible operators: a ``/`` or ``%`` in executable P4
  is exactly the construct the paper's arithmetic exists to avoid, and a
  Tofino-class target would reject it.  Comments and string-free
  preprocessor lines are ignored.
- **ST415/ST416** — declared-vs-required register widths: the register
  declarations (``register<bit<W>>(size) name;`` resolved through
  ``typedef bit<W> cell_t/stat_t``) are compared against the widths the
  overflow dataflow derives from the deployment's value magnitude
  (:func:`repro.analysis.dataflow.required_register_widths`), and against
  the :class:`~repro.stat4.config.Stat4Config` the program was supposedly
  generated from.

``STAT_COUNTER_SIZE`` is read from the ``#define`` when no config is
given, so a standalone ``repro lint program.p4 --max-value N`` works on a
previously generated file.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow import required_register_widths
from repro.analysis.diagnostics import Diagnostic, make
from repro.stat4.config import Stat4Config

__all__ = ["parse_p4_registers", "check_p4_source"]

_TYPEDEF_RE = re.compile(r"typedef\s+bit<(\d+)>\s+(\w+)\s*;")
_REGISTER_RE = re.compile(r"register<\s*(bit<\s*(\d+)\s*>|\w+)\s*>\s*\([^)]*\)\s+(\w+)\s*;")
_DEFINE_RE = re.compile(r"#define\s+(\w+)\s+(\d+)")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
# A '/' that is not part of a '//' comment marker (those are stripped first).
_DIVISION_RE = re.compile(r"/|%")


def _strip_comments(source: str) -> str:
    """Blank out comments, preserving line numbers."""
    def _blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    without_blocks = _BLOCK_COMMENT_RE.sub(_blank, source)
    lines = []
    for line in without_blocks.splitlines():
        cut = line.find("//")
        lines.append(line[:cut] if cut >= 0 else line)
    return "\n".join(lines)


def parse_p4_registers(source: str) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Extract ``(typedef widths, register widths)`` from P4 source.

    Register widths are resolved through the typedefs; registers typed by
    an unknown name are omitted.
    """
    stripped = _strip_comments(source)
    typedefs = {name: int(width) for width, name in _TYPEDEF_RE.findall(stripped)}
    registers: Dict[str, int] = {}
    for type_name, direct_width, reg_name in _REGISTER_RE.findall(stripped):
        if direct_width:
            registers[reg_name] = int(direct_width)
        elif type_name in typedefs:
            registers[reg_name] = typedefs[type_name]
    return typedefs, registers


def _defined_macros(source: str) -> Dict[str, int]:
    return {name: int(value) for name, value in _DEFINE_RE.findall(source)}


def check_p4_source(
    source: str,
    config: Optional[Stat4Config] = None,
    max_value: Optional[int] = None,
    file: Optional[str] = None,
) -> List[Diagnostic]:
    """Check one P4 program; returns ST415/ST416/ST417 diagnostics."""
    diagnostics: List[Diagnostic] = []
    stripped = _strip_comments(source)

    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            continue  # includes and defines carry no executable arithmetic
        match = _DIVISION_RE.search(line)
        if match:
            diagnostics.append(
                make(
                    "ST417",
                    f"inexpressible operator {match.group(0)!r} in P4 source",
                    file=file,
                    line=lineno,
                    construct="division" if match.group(0) == "/" else "modulo",
                )
            )

    typedefs, registers = parse_p4_registers(source)

    if config is not None:
        declared_cell = typedefs.get("cell_t")
        declared_stat = typedefs.get("stat_t")
        if declared_cell is not None and declared_cell != config.counter_width:
            diagnostics.append(
                make(
                    "ST416",
                    f"cell_t is bit<{declared_cell}> but the config says "
                    f"counter_width={config.counter_width}",
                    file=file,
                    register="cell_t",
                    declared=declared_cell,
                    configured=config.counter_width,
                )
            )
        if declared_stat is not None and declared_stat != config.stats_width:
            diagnostics.append(
                make(
                    "ST416",
                    f"stat_t is bit<{declared_stat}> but the config says "
                    f"stats_width={config.stats_width}",
                    file=file,
                    register="stat_t",
                    declared=declared_stat,
                    configured=config.stats_width,
                )
            )

    counter_size = (
        config.counter_size
        if config is not None
        else _defined_macros(source).get("STAT_COUNTER_SIZE")
    )
    if max_value is not None and max_value > 0 and counter_size:
        required = required_register_widths(counter_size, max_value)
        for register, needed in sorted(required.items()):
            declared = registers.get(register)
            if declared is not None and declared < needed:
                diagnostics.append(
                    make(
                        "ST415",
                        f"{register} is declared {declared} bits but needs "
                        f"{needed} for {counter_size} values of magnitude "
                        f"{max_value}",
                        file=file,
                        register=register,
                        declared=declared,
                        required=needed,
                    )
                )
    return diagnostics
