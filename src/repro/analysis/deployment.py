"""Deployment descriptions: the JSON form the analyzer checks end to end.

A deployment file describes everything the paper fixes before a Stat4
program reaches hardware: the compile-time geometry (the STAT_COUNTER_*
macros and widths), the worst-case value magnitude the registers must
absorb, and the binding-table entries the controller will install::

    {
      "description": "what this deployment tracks",
      "config":    {"counter_num": 8, "counter_size": 256, ...},
      "max_value": 10000,
      "bindings":  [{"stage": 0, "dist": 0, "kind": "frequency", ...}],
      "ewma":      {"alpha_shift": 3, "frac_bits": 8}
    }

:func:`load_deployment` parses and validates the shape (ST430 on
malformed geometry); :func:`analyze_deployment` runs every pass over it —
the overflow dataflow, the binding consistency rules, and the
declared-vs-required width check against the P4 source :mod:`repro.p4gen`
emits for the config.  Example deployments live in ``examples/configs/``;
the CI gate lints all of them on every test run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.analysis.bindings import check_bindings, check_ewma
from repro.analysis.dataflow import check_overflow
from repro.analysis.diagnostics import Diagnostic, Severity, make
from repro.analysis.p4source import check_p4_source
from repro.p4.errors import P4Error
from repro.stat4.config import Stat4Config

__all__ = ["DeploymentSpec", "load_deployment", "analyze_deployment"]

_CONFIG_KEYS = (
    "counter_num",
    "counter_size",
    "counter_width",
    "stats_width",
    "binding_stages",
    "alert_cooldown",
    "sparse_dists",
    "sparse_slots",
    "sparse_stages",
)
_TOP_LEVEL_KEYS = {"description", "config", "max_value", "bindings", "ewma"}


@dataclass(frozen=True)
class DeploymentSpec:
    """A parsed deployment description.

    Attributes:
        config: the compile-time geometry.
        max_value: worst-case value magnitude a cell must absorb.
        bindings: raw binding entries (mappings, not TrackSpecs — see
            :mod:`repro.analysis.bindings`).
        ewma: optional EWMA detector geometry to check alongside.
        source_file: where this description came from (diagnostic anchor).
    """

    config: Stat4Config
    max_value: int
    bindings: Sequence[Mapping[str, object]] = field(default_factory=tuple)
    ewma: Optional[Mapping[str, object]] = None
    source_file: Optional[str] = None


def load_deployment(
    path: str,
) -> Tuple[Optional[DeploymentSpec], List[Diagnostic]]:
    """Load a deployment JSON file.

    Returns ``(spec, diagnostics)``; the spec is None when the file is too
    malformed to analyze further (unparseable JSON, invalid geometry).
    """
    diagnostics: List[Diagnostic] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return None, [make("ST430", f"cannot read deployment: {exc}", file=path)]
    if not isinstance(raw, dict):
        return None, [
            make("ST430", "deployment must be a JSON object", file=path)
        ]

    for key in sorted(set(raw) - _TOP_LEVEL_KEYS):
        diagnostics.append(
            make(
                "ST430",
                f"unknown top-level key {key!r}",
                file=path,
                severity=Severity.WARNING,
            )
        )

    config_raw = raw.get("config", {})
    if not isinstance(config_raw, dict):
        return None, diagnostics + [
            make("ST430", "'config' must be an object", file=path)
        ]
    unknown = sorted(set(config_raw) - set(_CONFIG_KEYS))
    if unknown:
        diagnostics.append(
            make(
                "ST430",
                f"unknown config key(s): {', '.join(unknown)}",
                file=path,
            )
        )
    kwargs = {k: v for k, v in config_raw.items() if k in _CONFIG_KEYS}
    if "sparse_dists" in kwargs and isinstance(kwargs["sparse_dists"], list):
        kwargs["sparse_dists"] = tuple(kwargs["sparse_dists"])
    try:
        config = Stat4Config(**kwargs)
    except (P4Error, TypeError) as exc:
        diagnostics.append(
            make("ST430", f"invalid config geometry: {exc}", file=path)
        )
        return None, diagnostics

    max_value = raw.get("max_value")
    if not isinstance(max_value, int) or isinstance(max_value, bool):
        max_value = (1 << config.counter_width) - 1
        diagnostics.append(
            make(
                "ST413",
                "no max_value given; assuming the worst-case cell magnitude "
                f"{max_value}",
                file=path,
                assumed_max_value=max_value,
            )
        )

    bindings = raw.get("bindings", [])
    if not isinstance(bindings, list) or not all(
        isinstance(b, dict) for b in bindings
    ):
        diagnostics.append(
            make("ST430", "'bindings' must be a list of objects", file=path)
        )
        bindings = []

    ewma = raw.get("ewma")
    if ewma is not None and not isinstance(ewma, dict):
        diagnostics.append(make("ST430", "'ewma' must be an object", file=path))
        ewma = None

    spec = DeploymentSpec(
        config=config,
        max_value=max_value,
        bindings=tuple(bindings),
        ewma=ewma,
        source_file=path,
    )
    return spec, diagnostics


def _classify_bindings(spec: DeploymentSpec) -> List[Diagnostic]:
    """Per-binding ST501 records: the kernel shape each entry will run.

    Part of the opt-in ``--concurrency`` pass (keeps the default JSON
    profile golden-stable): each well-formed binding is projected onto its
    kernel shape and looked up in the derived eligibility table, so a
    deployment report states which of its distributions can fan out.
    """
    from repro.analysis.concurrency import (
        Classification,
        KernelShape,
        derive_eligibility_table,
    )
    from repro.stat4.distributions import DistributionKind

    table = derive_eligibility_table()
    diagnostics: List[Diagnostic] = []
    for index, binding in enumerate(spec.bindings):
        kind_raw = binding.get("kind", "frequency")
        try:
            kind = DistributionKind(kind_raw)
        except ValueError:
            continue  # check_bindings already flags the malformed kind
        percent = binding.get("percent")
        k_sigma = binding.get("k_sigma", 0)
        if not isinstance(k_sigma, (int, float)) or isinstance(k_sigma, bool):
            continue
        shape = KernelShape(
            kind=kind,
            tracked=percent is not None,
            alerting=k_sigma > 0,
            percentile_alert=bool(binding.get("percentile_alert")),
        )
        mode = table.get(shape.key)
        verdict = (
            Classification.ORDER_DEPENDENT.value
            if mode is None
            else (
                Classification.MERGE_EXACT.value
                if mode == "tally"
                else Classification.REPLAY_EXACT.value
            )
        )
        diagnostics.append(
            make(
                "ST501",
                f"binding {index} (dist {binding.get('dist')}): kernel shape "
                f"{shape.key} is {verdict} "
                f"(fan-out {mode if mode is not None else 'serial'})",
                file=spec.source_file,
                binding=index,
                shape=shape.key,
                classification=verdict,
                mode=mode,
            )
        )
    return diagnostics


def analyze_deployment(
    spec: DeploymentSpec, concurrency: bool = False
) -> List[Diagnostic]:
    """Run every analyzer pass over one deployment.

    ``concurrency=True`` additionally classifies each binding's kernel
    shape against the derived fan-out eligibility table (ST501 records).
    """
    file = spec.source_file
    diagnostics = check_overflow(spec.config, spec.max_value, file=file)
    diagnostics.extend(check_bindings(spec.config, spec.bindings, file=file))
    if spec.ewma is not None:
        diagnostics.extend(check_ewma(spec.config, spec.ewma, file=file))
    if concurrency:
        diagnostics.extend(_classify_bindings(spec))

    # The same width requirements, checked against the program p4gen would
    # actually emit for this geometry (import deferred: p4gen pulls in the
    # whole runtime stack, which plain expressibility lints never need).
    from repro.p4gen import generate_p4

    generated = generate_p4(spec.config)
    for diag in check_p4_source(
        generated, config=spec.config, max_value=spec.max_value, file=file
    ):
        diagnostics.append(
            Diagnostic(
                code=diag.code,
                message=f"[p4gen] {diag.message}",
                severity=diag.severity,
                file=file,
                line=None,
                context={**dict(diag.context), "origin": "p4gen"},
            )
        )
    return diagnostics
