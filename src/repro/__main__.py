"""Module entry point: ``python -m repro <experiment>``."""

import os
import sys

from repro.cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream closed the pipe (e.g. ``repro lint --rules | head``);
    # exit quietly like other well-behaved CLIs instead of tracebacking.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
