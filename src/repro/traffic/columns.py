# p4-ok-file — host-side columnar trace storage, not data-plane code.
"""Columnar trace storage: contiguous per-field arrays with zero-copy views.

The batched ingest path (``repro.stat4.batch``) originally carried every
per-packet field as a plain Python list.  Slicing those lists for the
parallel engine copied element by element, and shipping a chunk into a
process pool re-pickled the whole list on every batch — the dominant cost
on multi-GB traces (the ROADMAP's "shared-memory value columns" item).

This module provides the two layers that remove that data movement:

* :class:`ColumnStore` — named, contiguous signed-64-bit columns backed by
  a numpy ``int64`` array when numpy is importable and ``array.array('q')``
  otherwise.  ``None`` entries (packets whose header did not yield a value)
  are encoded as the :data:`NONE_SENTINEL` ``-1``; real values must be
  non-negative, which every extracted P4 field is (they are masked unsigned
  slices).  ``slice(start, stop)`` returns views — numpy slices share the
  backing buffer, and the fallback returns ``memoryview`` windows — so
  chunking a batch for worker fan-out allocates nothing per chunk.

* :class:`SharedColumnSegment` / :class:`ColumnDescriptor` — pack one or
  more columns into a single ``multiprocessing.shared_memory`` block.  A
  descriptor is a ~100-byte picklable ``(segment name, dtype, start,
  length)`` handle; a process-pool worker calls :func:`attach_column` to
  map the segment and reads the rows in place, so the per-task pickled
  payload is the descriptor instead of the data.

Segment lifecycle: every live segment is tracked in a module registry.
The parallel engine releases its segments as soon as a batch is applied;
:func:`release_all_segments` sweeps anything left behind and is wired into
``atexit`` plus a chained ``SIGTERM`` handler (installed lazily, main
thread only) so repeated bench runs cannot exhaust ``/dev/shm`` even when
a run is killed mid-batch.
"""

from __future__ import annotations

import array as _array
import atexit
import os
import signal
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "NONE_SENTINEL",
    "ColumnDescriptor",
    "ColumnStore",
    "SharedColumnSegment",
    "AttachedColumn",
    "attach_column",
    "encode_column",
    "decode_column",
    "DIGEST_KIND_PERCENTILE",
    "DIGEST_KIND_KSIGMA",
    "DIGEST_RECORD_STRIDE",
    "encode_digest_records",
    "decode_digest_records",
    "live_segment_count",
    "release_all_segments",
    "ensure_termination_cleanup",
]

#: Sentinel stored in place of ``None`` (value-free packet).  Extracted P4
#: fields are masked unsigned slices, so ``-1`` can never collide with data.
NONE_SENTINEL = -1

_ITEM_BYTES = 8  # both supported dtypes ("q" int64, "d" float64) are 8 bytes

Column = List[Optional[int]]


def _encode_item(value: Optional[int]) -> int:
    if value is None:
        return NONE_SENTINEL
    if value < 0:
        raise ValueError("columns store unsigned field values; got %r" % (value,))
    return value


def encode_column(values: Sequence[Optional[int]]) -> Any:
    """Encode a list of ``Optional[int]`` into a signed 64-bit backing array.

    ``None`` becomes :data:`NONE_SENTINEL`; negative inputs are rejected so
    the sentinel stays unambiguous.
    """

    if _np is not None:
        return _np.fromiter(
            (_encode_item(v) for v in values), dtype=_np.int64, count=len(values)
        )
    return _array.array("q", (_encode_item(v) for v in values))


def decode_column(backing: Any) -> Column:
    """Decode a backing array (or view) back into a ``None``-bearing list."""

    return [None if v == NONE_SENTINEL else int(v) for v in _tolist(backing)]


#: Digest-record kinds for the per-worker digest ship-back (the parallel
#: merge engine's local alert buffers).  Records are chunk-relative:
#: ``seq`` is the event's index *within its chunk*; the merge re-bases it
#: onto the run's absolute ``(packet, stage)`` when the chunk is adopted.
DIGEST_KIND_PERCENTILE = 0  # (kind, seq, position, previous)
DIGEST_KIND_KSIGMA = 1  # (kind, seq, index, sample, scaled_sample, xsum, stddev_nx, count)

#: Fixed row stride of the encoded digest blob, in int64 slots.
DIGEST_RECORD_STRIDE = 8

_DIGEST_KIND_WIDTHS = {DIGEST_KIND_PERCENTILE: 4, DIGEST_KIND_KSIGMA: 8}


def encode_digest_records(records: Sequence[Tuple[int, ...]]) -> bytes:
    """Pack per-worker digest records into one flat int64 byte blob.

    Each record is ``(kind, seq, *fields)`` of plain ints; rows are padded
    to :data:`DIGEST_RECORD_STRIDE` slots so the blob is random-access.
    This is the process-pool ship-back shape: a chunk's whole local digest
    buffer crosses the pool boundary as one compact ``bytes`` value
    instead of a pickled list of tuples.  Raises ``OverflowError`` if a
    field exceeds int64 (callers fall back to shipping the raw records).
    """

    flat = _array.array("q")
    for record in records:
        if len(record) > DIGEST_RECORD_STRIDE:
            raise ValueError(
                "digest record wider than %d slots: %r"
                % (DIGEST_RECORD_STRIDE, record)
            )
        flat.extend(record)
        flat.extend([0] * (DIGEST_RECORD_STRIDE - len(record)))
    return flat.tobytes()


def decode_digest_records(data: bytes) -> List[Tuple[int, ...]]:
    """Decode :func:`encode_digest_records` output back into record tuples.

    Rows are trimmed back to their kind's width, so a round trip returns
    exactly the encoded records.
    """

    flat = _array.array("q")
    flat.frombytes(data)
    records: List[Tuple[int, ...]] = []
    for i in range(0, len(flat), DIGEST_RECORD_STRIDE):
        row = flat[i : i + DIGEST_RECORD_STRIDE]
        width = _DIGEST_KIND_WIDTHS.get(row[0], DIGEST_RECORD_STRIDE)
        records.append(tuple(row[:width]))
    return records


def _tolist(backing: Any) -> List[Any]:
    if hasattr(backing, "tolist"):
        return backing.tolist()
    return list(backing)


def _raw_bytes(backing: Any) -> bytes:
    if hasattr(backing, "tobytes"):
        return backing.tobytes()
    return bytes(backing)


class ColumnStore:
    """Named, contiguous int64 columns with zero-copy slicing.

    The store is a thin container: columns are added pre-encoded (via
    :meth:`put_array`) or encoded on the way in (:meth:`put`).  ``slice``
    produces a new store whose columns are *views* of the same backing
    buffers — numpy slices, or ``memoryview`` windows in the fallback —
    so splitting a batch into worker chunks never copies row data.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Optional[Mapping[str, Any]] = None):
        self._columns: Dict[str, Any] = dict(columns) if columns else {}

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def names(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def rows(self) -> int:
        """Row count shared by every column (0 for an empty store)."""

        for backing in self._columns.values():
            return len(backing)
        return 0

    def put(self, name: str, values: Sequence[Optional[int]]) -> Any:
        backing = encode_column(values)
        self._columns[name] = backing
        return backing

    def put_array(self, name: str, backing: Any) -> Any:
        self._columns[name] = backing
        return backing

    def get(self, name: str) -> Any:
        return self._columns[name]

    def column(self, name: str) -> Column:
        """Decoded (``None``-bearing) list view of a column."""

        return decode_column(self._columns[name])

    def slice(self, start: int, stop: int) -> "ColumnStore":
        """Zero-copy sub-store covering rows ``[start, stop)``."""

        sliced: Dict[str, Any] = {}
        for name, backing in self._columns.items():
            sliced[name] = slice_backing(backing, start, stop)
        return ColumnStore(sliced)

    def share(self, names: Optional[Iterable[str]] = None) -> "SharedColumnSegment":
        """Pack the named columns (all by default) into one shared segment."""

        selected = tuple(names) if names is not None else self.names()
        return SharedColumnSegment.pack(
            [(name, "q", self._columns[name]) for name in selected]
        )


def slice_backing(backing: Any, start: int, stop: int) -> Any:
    """Zero-copy window of a backing array.

    numpy arrays slice to views natively.  ``array.array`` slicing would
    copy, so the fallback goes through a ``memoryview`` (iterating one
    yields plain ints, which is all the tally loop needs).
    """

    if _np is not None and isinstance(backing, _np.ndarray):
        return backing[start:stop]
    if isinstance(backing, memoryview):
        return backing[start:stop]
    return memoryview(backing)[start:stop]


@dataclass(frozen=True)
class ColumnDescriptor:
    """Picklable ~100-byte handle to one column inside a shared segment."""

    segment: str  # shared_memory block name
    dtype: str  # "q" (int64) or "d" (float64)
    start: int  # element offset within the segment
    length: int  # element count

    def __post_init__(self) -> None:
        if self.dtype not in ("q", "d"):
            raise ValueError("unsupported column dtype %r" % (self.dtype,))
        if self.start < 0 or self.length < 0:
            raise ValueError("descriptor offsets cannot be negative")


class SharedColumnSegment:
    """One ``multiprocessing.shared_memory`` block packing several columns.

    Created via :meth:`pack`; hand out ``descriptors[name]`` to workers and
    call :meth:`release` once every consumer future has completed.  Release
    is idempotent and also triggered by the module cleanup hooks.
    """

    def __init__(self, shm: Any, descriptors: Dict[str, ColumnDescriptor]):
        self._shm = shm
        self.descriptors = descriptors
        self.name: str = shm.name
        self._released = False

    @classmethod
    def pack(cls, columns: Sequence[Tuple[str, str, Any]]) -> "SharedColumnSegment":
        """Copy ``(name, dtype, backing)`` columns into one fresh segment."""

        from multiprocessing import shared_memory

        total = sum(len(backing) for _, _, backing in columns)
        shm = shared_memory.SharedMemory(
            create=True, size=max(total * _ITEM_BYTES, 1)
        )
        descriptors: Dict[str, ColumnDescriptor] = {}
        offset = 0
        try:
            for name, dtype, backing in columns:
                length = len(backing)
                byte_start = offset * _ITEM_BYTES
                if length:
                    if _np is not None:
                        window = _np.frombuffer(
                            shm.buf,
                            dtype=_np.int64 if dtype == "q" else _np.float64,
                            count=length,
                            offset=byte_start,
                        )
                        window[:] = _np.asarray(backing)
                        del window
                    else:
                        shm.buf[byte_start : byte_start + length * _ITEM_BYTES] = (
                            _raw_bytes(backing)
                        )
                descriptors[name] = ColumnDescriptor(
                    segment=shm.name, dtype=dtype, start=offset, length=length
                )
                offset += length
        except Exception:
            shm.close()
            shm.unlink()
            raise
        segment = cls(shm, descriptors)
        _register_segment(segment)
        return segment

    def release(self) -> None:
        """Close and unlink the segment; safe to call more than once."""

        if self._released:
            return
        self._released = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view outlived its future
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
        _discard_segment(self.name)


class AttachedColumn:
    """Worker-side zero-copy view of one shared column.

    Attach per task, read :attr:`values`, then :meth:`close` (or use as a
    context manager) so the mapping is dropped promptly — the parent may
    unlink the segment as soon as the task's future completes.
    """

    def __init__(self, descriptor: ColumnDescriptor):
        from multiprocessing import shared_memory

        self._shm = _attach_untracked(shared_memory, descriptor.segment)
        self._cast: Optional[memoryview] = None
        if _np is not None:
            self.values: Any = _np.frombuffer(
                self._shm.buf,
                dtype=_np.int64 if descriptor.dtype == "q" else _np.float64,
                count=descriptor.length,
                offset=descriptor.start * _ITEM_BYTES,
            )
        else:
            cast = memoryview(self._shm.buf).cast(descriptor.dtype)
            self._cast = cast
            self.values = cast[descriptor.start : descriptor.start + descriptor.length]

    def close(self) -> None:
        view = self.values
        self.values = None
        if isinstance(view, memoryview):
            view.release()
        del view
        if self._cast is not None:
            self._cast.release()
            self._cast = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a live view
            pass

    def __enter__(self) -> "AttachedColumn":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def attach_column(descriptor: ColumnDescriptor) -> AttachedColumn:  # worker-context
    """Map a shared column by descriptor (worker side of the fan-out)."""

    return AttachedColumn(descriptor)


def _attach_untracked(shared_memory: Any, name: str) -> Any:
    """Attach to a segment without registering it with a resource tracker.

    Only the creating process may own a segment's tracker registration
    (bpo-39959): an attacher that registers either strips the creator's
    entry (pool workers sharing the inherited tracker — the creator's
    final ``unlink`` then dies noisily in the tracker process) or, when
    the worker was forked before any tracker existed, spawns a private
    tracker that warns about "leaked" segments the parent already
    unlinked.  Python 3.13 grew ``track=False`` for exactly this; older
    interpreters need the standard workaround of suppressing ``register``
    for the duration of the attach (pool workers are single-threaded, so
    the swap cannot race).
    """

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore  # race-ok: pool workers are single-threaded
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # race-ok: restores the swap above


# --- segment registry + crash-safe cleanup ---------------------------------

_REGISTRY_LOCK = threading.Lock()
_LIVE_SEGMENTS: Dict[str, SharedColumnSegment] = {}
_CLEANUP_INSTALLED = False

if hasattr(os, "register_at_fork"):  # pragma: no branch
    # Forked pool workers inherit this module state; only the creating
    # process owns the segments, so a child must never sweep (= unlink)
    # them from its own atexit/SIGTERM hooks.
    os.register_at_fork(after_in_child=_LIVE_SEGMENTS.clear)


def _register_segment(segment: SharedColumnSegment) -> None:
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment
    _install_termination_cleanup()


def _discard_segment(name: str) -> None:
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS.pop(name, None)


def live_segment_count() -> int:
    with _REGISTRY_LOCK:
        return len(_LIVE_SEGMENTS)


def release_all_segments() -> int:
    """Release every still-registered segment; returns how many were swept.

    The normal path releases segments as soon as a batch is applied, so a
    non-zero sweep means a run died mid-batch; this keeps /dev/shm clean
    across repeated bench runs either way.
    """

    with _REGISTRY_LOCK:
        leaked = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for segment in leaked:
        segment.release()
    return len(leaked)


def _install_termination_cleanup() -> None:
    """Lazily register the atexit sweep and a chained SIGTERM handler."""

    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(release_all_segments)
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum: int, frame: Any) -> None:
            release_all_segments()
            if callable(previous):
                previous(signum, frame)
            elif previous is signal.SIG_IGN:
                return
            else:  # SIG_DFL (or unknown): restore and re-raise to die properly
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                signal.raise_signal(signum)

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def ensure_termination_cleanup() -> None:
    """Install the atexit sweep + chained SIGTERM handler now (idempotent).

    Normally the sweep chain is installed lazily by the first shared
    segment; long-running servers (``repro serve``) call this up front so
    their own SIGINT/SIGTERM handlers can chain *on top* of the sweep —
    a process killed mid-ingest then releases every live segment on the
    way down regardless of which layer fields the signal first.
    """

    _install_termination_cleanup()
