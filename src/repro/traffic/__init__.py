"""Workload generation: packet builders, phase profiles, and source nodes."""

from repro.traffic.builders import (
    PacketBuilder,
    echo_frame,
    tcp_syn_to,
    tcp_to,
    udp_to,
)
from repro.traffic.columns import (
    AttachedColumn,
    ColumnDescriptor,
    ColumnStore,
    SharedColumnSegment,
    attach_column,
    decode_column,
    encode_column,
    live_segment_count,
    release_all_segments,
)
from repro.traffic.profiles import (
    Chooser,
    TrafficPhase,
    spike_chooser,
    spike_phase,
    uniform_chooser,
    uniform_phase,
    zipf_chooser,
)
from repro.traffic.source import TrafficSource
from repro.traffic.trace import PacketTrace, TraceRecord, TraceReplayer, TraceTap

__all__ = [
    "PacketTrace",
    "TraceRecord",
    "TraceReplayer",
    "TraceTap",
    "AttachedColumn",
    "ColumnDescriptor",
    "ColumnStore",
    "SharedColumnSegment",
    "attach_column",
    "decode_column",
    "encode_column",
    "live_segment_count",
    "release_all_segments",
    "PacketBuilder",
    "udp_to",
    "tcp_to",
    "tcp_syn_to",
    "echo_frame",
    "Chooser",
    "TrafficPhase",
    "uniform_chooser",
    "spike_chooser",
    "zipf_chooser",
    "uniform_phase",
    "spike_phase",
    "TrafficSource",
]
