# p4-ok-file — host-side traffic generation, not data-plane code.
"""A traffic-source node that plays phases into the simulated network.

Abstracts the paper's "packet source" box in Figure 6: external hosts are
collapsed into one node that emits packets according to a list of
:class:`~repro.traffic.profiles.TrafficPhase` regimes, back to back, with a
seeded RNG so every experiment run is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.netsim.network import Network
from repro.p4.packet import Packet
from repro.traffic.builders import PacketBuilder
from repro.traffic.profiles import TrafficPhase

__all__ = ["TrafficSource"]


class TrafficSource:
    """Emits the configured phases once :meth:`start` is called.

    Args:
        name: node name.
        phases: regimes to play sequentially.
        seed: RNG seed (determinism is a test invariant).
        port: the node's (single) output port.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[TrafficPhase],
        seed: int = 0,
        port: int = 0,
    ):
        if not phases:
            raise ValueError("a traffic source needs at least one phase")
        self.name = name
        self.phases: List[TrafficPhase] = list(phases)
        self.rng = random.Random(seed)
        self.port = port
        self.network: Optional[Network] = None
        self.packets_sent = 0
        self.phase_starts: List[float] = []
        self._started = False

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    def receive(self, message, port: int, now: float) -> None:
        """Sources ignore inbound traffic (one-way abstraction)."""

    def start(self, at: float = 0.0) -> None:
        """Schedule the beginning of the first phase."""
        if self.network is None:
            raise RuntimeError(f"source {self.name!r} is not attached")
        if self._started:
            raise RuntimeError(f"source {self.name!r} already started")
        self._started = True
        self.network.sim.schedule_at(at, lambda: self._begin_phase(0, at))

    # -- internals -----------------------------------------------------------

    def _begin_phase(self, index: int, phase_start: float) -> None:
        if index >= len(self.phases):
            return
        self.phase_starts.append(phase_start)
        phase = self.phases[index]
        self._emit(index, phase_start, phase_start + phase.duration)

    def _emit(self, index: int, when: float, phase_end: float) -> None:
        assert self.network is not None
        phase = self.phases[index]
        if when >= phase_end:
            self._begin_phase(index + 1, phase_end)
            return
        dst = phase.chooser(self.rng)
        dport = (
            phase.port_chooser(self.rng) if phase.port_chooser is not None else None
        )
        src = phase.src_chooser(self.rng) if phase.src_chooser is not None else None
        packet = PacketBuilder.build(
            phase.kind,
            dst,
            created_at=when,
            payload_len=phase.payload_len,
            dport=dport,
            src_ip=src,
        )
        self.network.transmit(self, self.port, packet)
        self.packets_sent += 1
        next_time = when + phase.next_gap(self.rng)
        self.network.sim.schedule_at(
            max(next_time, self.network.sim.now),
            lambda: self._emit(index, next_time, phase_end),
        )

    def phase_start_of(self, label: str) -> Optional[float]:
        """Start time of the first phase with the given label (after run)."""
        for start, phase in zip(self.phase_starts, self.phases):
            if phase.label == label:
                return start
        return None
