# p4-ok-file — host-side traffic generation, not data-plane code.
"""Packet traces: record to and replay from real pcap files.

Experiments become portable when their workloads are files: a recorded
trace can be inspected with tcpdump/wireshark (the format is classic pcap,
microsecond resolution, LINKTYPE_ETHERNET), archived next to results, and
replayed bit-exactly through any switch program.

- :class:`PacketTrace` — an in-memory list of (timestamp, bytes) records
  with pcap save/load;
- :class:`TraceTap` — a transparent two-port node that records everything
  flowing through it;
- :class:`TraceReplayer` — a source node that plays a trace back on its
  original timestamps (optionally time-shifted or rate-scaled).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.netsim.network import Network
from repro.p4.packet import Packet

__all__ = ["TraceRecord", "PacketTrace", "TraceTap", "TraceReplayer"]

#: Classic pcap global header: magic, v2.4, UTC, 0 sigfigs, snaplen, ethernet.
_PCAP_MAGIC = 0xA1B2C3D4
_PCAP_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class TraceRecord:
    """One captured frame."""

    timestamp: float
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class PacketTrace:
    """An ordered packet capture with pcap (de)serialization."""

    def __init__(self, records: Optional[List[TraceRecord]] = None):
        self.records: List[TraceRecord] = list(records or [])

    def append(self, timestamp: float, data: bytes) -> None:
        """Add one frame (timestamps should be non-decreasing)."""
        self.records.append(TraceRecord(timestamp=timestamp, data=data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def iter_batches(self, size: int) -> Iterator[List[TraceRecord]]:
        """Yield the records in consecutive chunks of at most ``size``.

        The unit of work for the batched fast path: feed each chunk to
        :meth:`repro.stat4.batch.PacketBatch.from_trace`.
        """
        if size <= 0:
            raise ValueError("batch size must be positive")
        for start in range(0, len(self.records), size):
            yield self.records[start : start + size]

    def iter_packet_batches(
        self, parser: Any, size: int, ingress_port: int = 0
    ) -> Iterator[Any]:
        """Yield parsed :class:`~repro.stat4.batch.PacketBatch` chunks.

        The zero-copy pipeline entry point: each chunk of records is
        parsed once into a columnar batch (value columns and their
        :class:`~repro.traffic.columns.ColumnStore` encodings are built
        lazily, then sliced as views by the parallel engine), ready for
        ``BatchEngine.process`` / ``ParallelBatchEngine.process``.
        """
        from repro.stat4.batch import PacketBatch

        for chunk in self.iter_batches(size):
            yield PacketBatch.from_trace(
                chunk, parser, ingress_port=ingress_port
            )

    @property
    def duration(self) -> float:
        """Time span between first and last frame."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    # -- pcap I/O ------------------------------------------------------------

    def save(self, path: str, snaplen: int = 65535) -> None:
        """Write a classic little-endian pcap file."""
        with open(path, "wb") as handle:
            handle.write(
                _GLOBAL_HEADER.pack(
                    _PCAP_MAGIC,
                    _PCAP_VERSION[0],
                    _PCAP_VERSION[1],
                    0,
                    0,
                    snaplen,
                    _LINKTYPE_ETHERNET,
                )
            )
            for record in self.records:
                seconds = int(record.timestamp)
                micros = int(round((record.timestamp - seconds) * 1_000_000))
                if micros >= 1_000_000:
                    seconds += 1
                    micros -= 1_000_000
                handle.write(
                    _RECORD_HEADER.pack(
                        seconds, micros, len(record.data), len(record.data)
                    )
                )
                handle.write(record.data)

    @classmethod
    def load(cls, path: str) -> "PacketTrace":
        """Read a classic pcap file (little- or big-endian, µs resolution).

        Raises:
            ValueError: if the file is not a classic pcap capture.
        """
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _GLOBAL_HEADER.size:
            raise ValueError(f"{path}: truncated pcap header")
        magic_le = struct.unpack("<I", blob[:4])[0]
        if magic_le == _PCAP_MAGIC:
            endian = "<"
        elif struct.unpack(">I", blob[:4])[0] == _PCAP_MAGIC:
            endian = ">"
        else:
            raise ValueError(f"{path}: not a classic pcap file")
        record_header = struct.Struct(endian + "IIII")
        offset = _GLOBAL_HEADER.size
        records: List[TraceRecord] = []
        while offset + record_header.size <= len(blob):
            seconds, micros, caplen, _origlen = record_header.unpack_from(
                blob, offset
            )
            offset += record_header.size
            data = blob[offset : offset + caplen]
            if len(data) != caplen:
                raise ValueError(f"{path}: truncated packet record")
            offset += caplen
            records.append(
                TraceRecord(timestamp=seconds + micros / 1_000_000, data=data)
            )
        return cls(records)


class TraceTap:
    """A transparent bump-in-the-wire that records traversing packets.

    Wire it between two nodes: traffic entering port 0 leaves port 1 and
    vice versa, with every frame (and its arrival time) appended to the
    trace.
    """

    def __init__(self, name: str, trace: Optional[PacketTrace] = None):
        self.name = name
        self.trace = trace if trace is not None else PacketTrace()
        self.network: Optional[Network] = None

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    def receive(self, message: Any, port: int, now: float) -> None:
        """Record and forward to the opposite port."""
        assert self.network is not None
        if isinstance(message, Packet):
            self.trace.append(now, message.data)
        self.network.transmit(self, 1 - port, message)


class TraceReplayer:
    """Plays a :class:`PacketTrace` back into the network.

    Args:
        name: node name.
        trace: the capture to replay.
        time_scale: >1 slows the trace down, <1 speeds it up.
        start_at: simulation time of the first frame (original inter-frame
            gaps are preserved, scaled).
    """

    def __init__(
        self,
        name: str,
        trace: PacketTrace,
        time_scale: float = 1.0,
        start_at: float = 0.0,
    ):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.name = name
        self.trace = trace
        self.time_scale = time_scale
        self.start_at = start_at
        self.network: Optional[Network] = None
        self.replayed = 0

    def attach(self, network: Network) -> None:
        """Network callback on :meth:`Network.add`."""
        self.network = network

    def receive(self, message: Any, port: int, now: float) -> None:
        """Replayers ignore inbound traffic."""

    def start(self) -> None:
        """Schedule every frame of the trace."""
        if self.network is None:
            raise RuntimeError(f"replayer {self.name!r} is not attached")
        if not self.trace.records:
            return
        base = self.trace.records[0].timestamp

        def send(record: TraceRecord, when: float):
            def fire():
                assert self.network is not None
                self.network.transmit(
                    self, 0, Packet(record.data, created_at=when)
                )
                self.replayed += 1

            return fire

        for record in self.trace.records:
            when = self.start_at + (record.timestamp - base) * self.time_scale
            self.network.sim.schedule_at(when, send(record, when))
