# p4-ok-file — host-side traffic generation, not data-plane code.
"""Traffic phases and destination choosers.

The case study's workload (Sec. 4) is "traffic generated uniformly across
the destinations for a randomized time", followed by "much more traffic to
a randomly selected destination".  A :class:`TrafficPhase` describes one
such regime — rate, duration, packet kind, and a destination chooser — and
a source plays a list of phases back to back.

Choosers cover the distributions the paper mentions: uniform across a host
set, a fixed victim with background noise (the spike), and zipfian across
prefixes (the Sec. 5 remark that per-prefix traffic is often zipfian).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.traffic.builders import PacketBuilder

__all__ = [
    "Chooser",
    "uniform_chooser",
    "spike_chooser",
    "zipf_chooser",
    "TrafficPhase",
    "uniform_phase",
    "spike_phase",
]

#: A destination chooser: rng -> destination IP (int).
Chooser = Callable[[random.Random], int]


def uniform_chooser(destinations: Sequence[int]) -> Chooser:
    """Pick uniformly among ``destinations`` (the load-balanced baseline)."""
    if not destinations:
        raise ValueError("need at least one destination")
    pool = list(destinations)

    def choose(rng: random.Random) -> int:
        return pool[rng.randrange(len(pool))]

    return choose


def spike_chooser(
    victim: int, background: Sequence[int], victim_share: float = 0.8
) -> Chooser:
    """Send ``victim_share`` of packets to the victim, the rest uniformly.

    This is the anomalous regime of the case study: one destination
    receives "much more traffic" while the rest keep their share.
    """
    if not 0 < victim_share <= 1:
        raise ValueError("victim_share must be in (0, 1]")
    others = uniform_chooser(background) if background else None

    def choose(rng: random.Random) -> int:
        if others is None or rng.random() < victim_share:
            return victim
        return others(rng)

    return choose


def zipf_chooser(destinations: Sequence[int], exponent: float = 1.0) -> Chooser:
    """Zipf-distributed popularity over ``destinations`` (rank 1 hottest)."""
    if not destinations:
        raise ValueError("need at least one destination")
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(destinations) + 1)]
    pool = list(destinations)

    def choose(rng: random.Random) -> int:
        return rng.choices(pool, weights=weights, k=1)[0]

    return choose


@dataclass
class TrafficPhase:
    """One homogeneous traffic regime.

    Attributes:
        duration: phase length in seconds.
        rate_pps: mean packet rate; inter-arrivals are exponential when
            ``poisson`` is true (realistic), constant otherwise
            (deterministic tests).
        chooser: destination chooser.
        kind: packet kind (:class:`PacketBuilder` constants).
        payload_len: filler payload bytes (UDP only).
        poisson: exponential vs constant inter-arrival times.
        label: free-form tag carried into experiment logs.
    """

    duration: float
    rate_pps: float
    chooser: Chooser
    kind: str = PacketBuilder.UDP
    payload_len: int = 0
    poisson: bool = True
    label: str = ""

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if self.rate_pps <= 0:
            raise ValueError("phase rate must be positive")

    def next_gap(self, rng: random.Random) -> float:
        """Inter-arrival time to the next packet."""
        if self.poisson:
            return rng.expovariate(self.rate_pps)
        return 1.0 / self.rate_pps


def uniform_phase(
    destinations: Sequence[int],
    duration: float,
    rate_pps: float,
    **kwargs,
) -> TrafficPhase:
    """The load-balanced baseline regime."""
    kwargs.setdefault("label", "uniform")
    return TrafficPhase(
        duration=duration,
        rate_pps=rate_pps,
        chooser=uniform_chooser(destinations),
        **kwargs,
    )


def spike_phase(
    victim: int,
    background: Sequence[int],
    duration: float,
    rate_pps: float,
    victim_share: float = 0.8,
    **kwargs,
) -> TrafficPhase:
    """The anomalous regime: one destination soaks up most of the traffic."""
    kwargs.setdefault("label", "spike")
    return TrafficPhase(
        duration=duration,
        rate_pps=rate_pps,
        chooser=spike_chooser(victim, background, victim_share),
        **kwargs,
    )
