# p4-ok-file — host-side traffic generation, not data-plane code.
"""Traffic phases and destination choosers.

The case study's workload (Sec. 4) is "traffic generated uniformly across
the destinations for a randomized time", followed by "much more traffic to
a randomly selected destination".  A :class:`TrafficPhase` describes one
such regime — rate, duration, packet kind, and a destination chooser — and
a source plays a list of phases back to back.

Choosers cover the distributions the paper mentions: uniform across a host
set, a fixed victim with background noise (the spike), and zipfian across
prefixes (the Sec. 5 remark that per-prefix traffic is often zipfian).

Beyond the paper's single spike, this module also carries the *adversarial
generators* behind ``repro.scenarios``: phase producers for volumetric and
slow-ramp floods, vertical port scans, heavy-hitter emergence over a sparse
key population, Zipf-skew drift, and a destination-set shift that keeps the
volume constant.  Each producer returns a plain list of
:class:`TrafficPhase` regimes, so attack traffic composes with benign
phases exactly like the case study's workload — and
:func:`render_phases` turns any phase list into a deterministic
:class:`~repro.traffic.trace.PacketTrace` without spinning up the network
simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.traffic.builders import PacketBuilder

__all__ = [
    "Chooser",
    "uniform_chooser",
    "spike_chooser",
    "zipf_chooser",
    "sweep_chooser",
    "TrafficPhase",
    "uniform_phase",
    "spike_phase",
    "volumetric_flood_phases",
    "ramp_flood_phases",
    "port_scan_phases",
    "heavy_hitter_phases",
    "zipf_drift_phases",
    "mode_shift_phases",
    "render_phases",
]

#: A destination chooser: rng -> destination IP (int).
Chooser = Callable[[random.Random], int]


def uniform_chooser(destinations: Sequence[int]) -> Chooser:
    """Pick uniformly among ``destinations`` (the load-balanced baseline)."""
    if not destinations:
        raise ValueError("need at least one destination")
    pool = list(destinations)

    def choose(rng: random.Random) -> int:
        return pool[rng.randrange(len(pool))]

    return choose


def spike_chooser(
    victim: int, background: Sequence[int], victim_share: float = 0.8
) -> Chooser:
    """Send ``victim_share`` of packets to the victim, the rest uniformly.

    This is the anomalous regime of the case study: one destination
    receives "much more traffic" while the rest keep their share.
    """
    if not 0 < victim_share <= 1:
        raise ValueError("victim_share must be in (0, 1]")
    others = uniform_chooser(background) if background else None

    def choose(rng: random.Random) -> int:
        if others is None or rng.random() < victim_share:
            return victim
        return others(rng)

    return choose


def zipf_chooser(destinations: Sequence[int], exponent: float = 1.0) -> Chooser:
    """Zipf-distributed popularity over ``destinations`` (rank 1 hottest)."""
    if not destinations:
        raise ValueError("need at least one destination")
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(destinations) + 1)]
    pool = list(destinations)

    def choose(rng: random.Random) -> int:
        return rng.choices(pool, weights=weights, k=1)[0]

    return choose


def sweep_chooser(values: Sequence[int]) -> Chooser:
    """Cycle through ``values`` in order, one per call (a scanner's sweep).

    Deterministic by construction — the rng argument is ignored; the
    chooser carries its own cursor.  Phase playback calls choosers in
    packet order, so a sweep emits ``values`` round-robin.
    """
    if not values:
        raise ValueError("need at least one value to sweep")
    pool = list(values)
    cursor = {"next": 0}

    def choose(rng: random.Random) -> int:
        index = cursor["next"]
        cursor["next"] = (index + 1) % len(pool)
        return pool[index]

    return choose


@dataclass
class TrafficPhase:
    """One homogeneous traffic regime.

    Attributes:
        duration: phase length in seconds.
        rate_pps: mean packet rate; inter-arrivals are exponential when
            ``poisson`` is true (realistic), constant otherwise
            (deterministic tests).
        chooser: destination chooser.
        kind: packet kind (:class:`PacketBuilder` constants).
        payload_len: filler payload bytes (UDP only).
        poisson: exponential vs constant inter-arrival times.
        label: free-form tag carried into experiment logs.
        port_chooser: optional per-packet destination-port chooser
            (None = the builder's fixed default port).
        src_chooser: optional per-packet source-address chooser
            (None = the builder's fixed default source).
    """

    duration: float
    rate_pps: float
    chooser: Chooser
    kind: str = PacketBuilder.UDP
    payload_len: int = 0
    poisson: bool = True
    label: str = ""
    port_chooser: Optional[Chooser] = None
    src_chooser: Optional[Chooser] = None

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if self.rate_pps <= 0:
            raise ValueError("phase rate must be positive")

    def next_gap(self, rng: random.Random) -> float:
        """Inter-arrival time to the next packet."""
        if self.poisson:
            return rng.expovariate(self.rate_pps)
        return 1.0 / self.rate_pps


def uniform_phase(
    destinations: Sequence[int],
    duration: float,
    rate_pps: float,
    **kwargs,
) -> TrafficPhase:
    """The load-balanced baseline regime."""
    kwargs.setdefault("label", "uniform")
    return TrafficPhase(
        duration=duration,
        rate_pps=rate_pps,
        chooser=uniform_chooser(destinations),
        **kwargs,
    )


def spike_phase(
    victim: int,
    background: Sequence[int],
    duration: float,
    rate_pps: float,
    victim_share: float = 0.8,
    **kwargs,
) -> TrafficPhase:
    """The anomalous regime: one destination soaks up most of the traffic."""
    kwargs.setdefault("label", "spike")
    return TrafficPhase(
        duration=duration,
        rate_pps=rate_pps,
        chooser=spike_chooser(victim, background, victim_share),
        **kwargs,
    )


# -- adversarial phase producers -----------------------------------------------
#
# Each producer returns a list of TrafficPhases: benign regime(s), the
# attack regime(s), and (where the scenario wants one) a recovery regime.
# A recovery duration of 0 skips the phase entirely — scenarios whose
# detectors rebalance after the attack (percentile walks, resident sparse
# keys) end at the attack edge so aftermath alerts cannot masquerade as
# false positives.  The scenario catalog (repro.scenarios) derives its
# ground-truth windows from the same durations it passes in here, so labels
# and traffic can never drift apart.


def volumetric_flood_phases(
    victim: int,
    background: Sequence[int],
    rate_pps: float,
    benign: float,
    flood: float,
    recovery: float,
    flood_factor: float = 8.0,
    victim_share: float = 0.9,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """A classic volumetric flood: benign → N× rate at one victim → calm."""
    if flood_factor <= 1:
        raise ValueError("a flood needs flood_factor > 1")
    hosts = list(background)
    phases = [
        uniform_phase(hosts, benign, rate_pps, poisson=poisson, label="benign"),
        spike_phase(
            victim,
            hosts,
            flood,
            rate_pps * flood_factor,
            victim_share=victim_share,
            poisson=poisson,
            label="flood",
        ),
    ]
    if recovery > 0:
        phases.append(
            uniform_phase(hosts, recovery, rate_pps, poisson=poisson, label="recovery")
        )
    return phases


def ramp_flood_phases(
    victim: int,
    background: Sequence[int],
    rate_pps: float,
    benign: float,
    step_duration: float,
    step_factors: Sequence[float],
    plateau: float,
    recovery: float,
    victim_share: float = 0.9,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """A slow-ramp flood: the rate climbs through ``step_factors`` before
    holding a plateau at the last factor — the shape built to slip under
    naive "current ≫ baseline" checks by dragging the baseline up with it.
    """
    if not step_factors:
        raise ValueError("a ramp needs at least one step factor")
    hosts = list(background)
    phases = [
        uniform_phase(hosts, benign, rate_pps, poisson=poisson, label="benign")
    ]
    for step, factor in enumerate(step_factors):
        if factor <= 1:
            raise ValueError("ramp step factors must exceed 1")
        phases.append(
            spike_phase(
                victim,
                hosts,
                step_duration,
                rate_pps * factor,
                victim_share=victim_share,
                poisson=poisson,
                label=f"ramp_{step}",
            )
        )
    phases.append(
        spike_phase(
            victim,
            hosts,
            plateau,
            rate_pps * step_factors[-1],
            victim_share=victim_share,
            poisson=poisson,
            label="plateau",
        )
    )
    if recovery > 0:
        phases.append(
            uniform_phase(hosts, recovery, rate_pps, poisson=poisson, label="recovery")
        )
    return phases


def port_scan_phases(
    target: int,
    background: Sequence[int],
    service_ports: Sequence[int],
    scan_ports: Sequence[int],
    rate_pps: float,
    benign: float,
    scan: float,
    recovery: float,
    scan_rate_factor: float = 1.5,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """A vertical port scan: benign service traffic, then a sweep over
    ``scan_ports`` against one target.  The volume barely moves — the
    signature is the destination-port distribution flattening out.
    """
    hosts = list(background)
    phases = [
        TrafficPhase(
            duration=benign,
            rate_pps=rate_pps,
            chooser=uniform_chooser(hosts),
            poisson=poisson,
            label="benign",
            port_chooser=uniform_chooser(service_ports),
        ),
        TrafficPhase(
            duration=scan,
            rate_pps=rate_pps * scan_rate_factor,
            chooser=uniform_chooser([target]),
            poisson=poisson,
            label="scan",
            port_chooser=sweep_chooser(scan_ports),
        ),
    ]
    if recovery > 0:
        phases.append(
            TrafficPhase(
                duration=recovery,
                rate_pps=rate_pps,
                chooser=uniform_chooser(hosts),
                poisson=poisson,
                label="recovery",
                port_chooser=uniform_chooser(service_ports),
            )
        )
    return phases


def heavy_hitter_phases(
    victim: int,
    population: Sequence[int],
    rate_pps: float,
    benign: float,
    emergence: float,
    recovery: float,
    victim_share: float = 0.6,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """Heavy-hitter emergence: a wide, flat sparse population until one key
    starts soaking up ``victim_share`` of the traffic."""
    keys = list(population)
    phases = [
        uniform_phase(keys, benign, rate_pps, poisson=poisson, label="benign"),
        spike_phase(
            victim,
            keys,
            emergence,
            rate_pps,
            victim_share=victim_share,
            poisson=poisson,
            label="emergence",
        ),
    ]
    if recovery > 0:
        phases.append(
            uniform_phase(keys, recovery, rate_pps, poisson=poisson, label="recovery")
        )
    return phases


def zipf_drift_phases(
    destinations: Sequence[int],
    rate_pps: float,
    benign: float,
    drift_durations: Sequence[float],
    drift_exponents: Sequence[float],
    benign_exponent: float = 0.8,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """Zipf-skew drift: popularity stays zipfian but the exponent climbs,
    concentrating mass on the head keys at an unchanged total rate."""
    if len(drift_durations) != len(drift_exponents):
        raise ValueError("drift_durations and drift_exponents must pair up")
    dests = list(destinations)
    phases = [
        TrafficPhase(
            duration=benign,
            rate_pps=rate_pps,
            chooser=zipf_chooser(dests, exponent=benign_exponent),
            poisson=poisson,
            label="benign",
        )
    ]
    for step, (duration, exponent) in enumerate(
        zip(drift_durations, drift_exponents)
    ):
        phases.append(
            TrafficPhase(
                duration=duration,
                rate_pps=rate_pps,
                chooser=zipf_chooser(dests, exponent=exponent),
                poisson=poisson,
                label=f"drift_{step}",
            )
        )
    return phases


def mode_shift_phases(
    mode_a: Sequence[int],
    mode_b: Sequence[int],
    rate_pps: float,
    benign: float,
    shifted: float,
    poisson: bool = False,
) -> List[TrafficPhase]:
    """Distribution shift without a volume change: the destination set jumps
    from ``mode_a`` to ``mode_b`` at exactly the same packet rate — invisible
    to any rate check, loud in the frequency distribution."""
    if set(mode_a) & set(mode_b):
        raise ValueError("mode_a and mode_b must be disjoint destination sets")
    return [
        uniform_phase(list(mode_a), benign, rate_pps, poisson=poisson, label="benign"),
        uniform_phase(list(mode_b), shifted, rate_pps, poisson=poisson, label="shift"),
    ]


# -- deterministic phase playback ----------------------------------------------


def render_phases(
    phases: Sequence[TrafficPhase], seed: int = 0, start: float = 0.0
):
    """Play phases back-to-back into a :class:`~repro.traffic.trace.PacketTrace`.

    The pure-function twin of :class:`~repro.traffic.source.TrafficSource`:
    the same regime walk (first packet at each phase start, inter-arrivals
    from :meth:`TrafficPhase.next_gap`), but without the event loop — the
    scenario suite needs traces, not a live simulation, and determinism is
    the whole point: one seed, one bit-exact trace.
    """
    from repro.traffic.trace import PacketTrace

    if not phases:
        raise ValueError("need at least one phase to render")
    rng = random.Random(seed)
    trace = PacketTrace()
    phase_start = start
    for phase in phases:
        phase_end = phase_start + phase.duration
        when = phase_start
        while when < phase_end:
            dst = phase.chooser(rng)
            dport = (
                phase.port_chooser(rng) if phase.port_chooser is not None else None
            )
            src = phase.src_chooser(rng) if phase.src_chooser is not None else None
            packet = PacketBuilder.build(
                phase.kind,
                dst,
                created_at=when,
                payload_len=phase.payload_len,
                dport=dport,
                src_ip=src,
            )
            trace.append(when, packet.data)
            when += phase.next_gap(rng)
        phase_start = phase_end
    return trace
