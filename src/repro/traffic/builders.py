# p4-ok-file — host-side traffic generation, not data-plane code.
"""Packet construction helpers shared by generators and experiments."""

from __future__ import annotations

from typing import Optional

from repro.p4 import headers as hdr
from repro.p4.packet import Packet

__all__ = ["udp_to", "tcp_to", "tcp_syn_to", "echo_frame", "PacketBuilder"]


def udp_to(
    dst_ip: int,
    src_ip: int = 0x01010101,
    sport: int = 40000,
    dport: int = 9000,
    payload_len: int = 0,
    created_at: float = 0.0,
    trace_id: Optional[int] = None,
) -> Packet:
    """A UDP datagram with ``payload_len`` filler bytes."""
    eth = hdr.ethernet(dst=0x0200_0000_0001, src=0x0200_0000_0002, ether_type=hdr.ETHERTYPE_IPV4)
    ip = hdr.ipv4(
        src=src_ip,
        dst=dst_ip,
        protocol=hdr.PROTO_UDP,
        total_len=20 + 8 + payload_len,
    )
    udp = hdr.udp(sport, dport, length=8 + payload_len)
    data = eth.pack() + ip.pack() + udp.pack() + b"\x00" * payload_len
    return Packet(data, created_at=created_at, trace_id=trace_id)


def tcp_to(
    dst_ip: int,
    flags: int = hdr.TCP_FLAG_ACK,
    src_ip: int = 0x01010101,
    sport: int = 40000,
    dport: int = 80,
    created_at: float = 0.0,
    trace_id: Optional[int] = None,
) -> Packet:
    """A bare TCP segment with the given flags."""
    eth = hdr.ethernet(dst=0x0200_0000_0001, src=0x0200_0000_0002, ether_type=hdr.ETHERTYPE_IPV4)
    ip = hdr.ipv4(src=src_ip, dst=dst_ip, protocol=hdr.PROTO_TCP, total_len=40)
    tcp = hdr.tcp(sport, dport, flags=flags)
    return Packet(eth.pack() + ip.pack() + tcp.pack(), created_at=created_at, trace_id=trace_id)


def tcp_syn_to(dst_ip: int, src_ip: int = 0x01010101, **kwargs) -> Packet:
    """A TCP SYN — the unit of a SYN flood."""
    return tcp_to(dst_ip, flags=hdr.TCP_FLAG_SYN, src_ip=src_ip, **kwargs)


def echo_frame(value: int, created_at: float = 0.0) -> Packet:
    """A Stat4 validation echo request (Figure 5)."""
    eth = hdr.ethernet(dst=0x0200_0000_0001, src=0x0200_0000_0002, ether_type=hdr.ETHERTYPE_STAT4_ECHO)
    return Packet(eth.pack() + hdr.echo_request(value).pack(), created_at=created_at)


class PacketBuilder:
    """A named packet-construction strategy for traffic phases."""

    UDP = "udp"
    SYN = "syn"

    #: Defaults used when a phase does not vary the field per packet.
    DEFAULT_SRC = 0x01010101
    DEFAULT_DPORT = 9000

    @staticmethod
    def build(
        kind: str,
        dst_ip: int,
        created_at: float,
        payload_len: int = 0,
        dport: Optional[int] = None,
        src_ip: Optional[int] = None,
    ) -> Packet:
        """Build one packet of the phase's kind toward ``dst_ip``.

        ``dport``/``src_ip`` override the fixed defaults — attack phases
        (port scans, spoofed-source floods) choose them per packet.
        """
        if src_ip is None:
            src_ip = PacketBuilder.DEFAULT_SRC
        if kind == PacketBuilder.UDP:
            return udp_to(
                dst_ip,
                src_ip=src_ip,
                dport=dport if dport is not None else PacketBuilder.DEFAULT_DPORT,
                payload_len=payload_len,
                created_at=created_at,
            )
        if kind == PacketBuilder.SYN:
            return tcp_syn_to(
                dst_ip,
                src_ip=src_ip,
                dport=dport if dport is not None else 80,
                created_at=created_at,
            )
        raise ValueError(f"unknown packet kind {kind!r}")
