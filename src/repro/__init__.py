"""Reproduction of "Stats 101 in P4: Towards In-Switch Anomaly Detection".

HotNets '21, Gao, Handley, Vissicchio.  The package implements the Stat4
in-switch statistics library, the P4 behavioral-model substrate it runs on,
a discrete-event network simulator for the paper's case study, the
controller-side drill-down logic, and the sketch-only baseline architecture
the paper argues against.

Quickstart::

    from repro.core import ScaledStats, PercentileTracker, approx_isqrt

    stats = ScaledStats()
    for rate in [10, 12, 11, 9, 10, 11]:
        stats.add_value(rate)
    stats.is_outlier(40)   # True: 40 is far above the mean

See ``examples/quickstart.py`` for the full tour and DESIGN.md for the
architecture.
"""

__version__ = "1.0.0"
