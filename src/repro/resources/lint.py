"""Static P4-expressibility lint.

The whole point of the paper is that its statistics avoid operations P4
cannot express.  This linter makes that claim *checkable*: it parses a
module's source and reports every construct that has no P4 counterpart —

- division (``/``, ``//``), modulo (``%``) and exponentiation (``**``);
- float literals and calls into :mod:`math`;
- ``while`` loops (data-dependent iteration; ``for`` over a fixed ``range``
  is accepted as compiler unrolling, matching how the MSB if-chain and the
  parser's bounded traversal map to hardware).

The test suite runs it over every module that claims P4 expressibility
(:mod:`repro.core` except the Welford reference, and the Stat4 update
paths), so a regression that sneaks a division into the data plane fails CI
rather than a hardware port.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass
from types import ModuleType
from typing import List, Union

__all__ = ["LintViolation", "lint_source", "lint_module", "assert_p4_expressible"]

_FORBIDDEN_BINOPS = {
    ast.Div: "division",
    ast.FloorDiv: "integer division",
    ast.Mod: "modulo",
    ast.Pow: "exponentiation",
}

_FORBIDDEN_CALL_MODULES = {"math", "numpy", "np", "statistics"}


@dataclass(frozen=True)
class LintViolation:
    """One P4-inexpressible construct found in the source."""

    line: int
    construct: str
    detail: str

    def __str__(self) -> str:
        return f"line {self.line}: {self.construct} ({self.detail})"


class _Visitor(ast.NodeVisitor):
    def __init__(self):
        self.violations: List[LintViolation] = []

    def _flag(self, node: ast.AST, construct: str, detail: str) -> None:
        self.violations.append(
            LintViolation(line=getattr(node, "lineno", 0), construct=construct, detail=detail)
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        for op_type, name in _FORBIDDEN_BINOPS.items():
            if isinstance(node.op, op_type):
                self._flag(node, name, "P4 ALUs have no divider")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for op_type, name in _FORBIDDEN_BINOPS.items():
            if isinstance(node.op, op_type):
                self._flag(node, name, "P4 ALUs have no divider")
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self._flag(node, "float literal", f"{node.value!r}")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._flag(node, "while loop", "data-dependent iteration")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in _FORBIDDEN_CALL_MODULES:
                self._flag(
                    node,
                    "library call",
                    f"{func.value.id}.{func.attr} is not a switch primitive",
                )
        if isinstance(func, ast.Name) and func.id in {"float", "divmod", "pow"}:
            self._flag(node, "builtin call", f"{func.id}()")
        self.generic_visit(node)


def lint_source(source: str) -> List[LintViolation]:
    """Lint Python source text; returns all violations found."""
    tree = ast.parse(source)
    visitor = _Visitor()
    visitor.visit(tree)
    return visitor.violations


def lint_module(module: Union[ModuleType, str]) -> List[LintViolation]:
    """Lint an imported module (or a module's source path)."""
    if isinstance(module, str):
        with open(module, "r", encoding="utf-8") as handle:
            return lint_source(handle.read())
    return lint_source(inspect.getsource(module))


def assert_p4_expressible(module: Union[ModuleType, str]) -> None:
    """Raise AssertionError listing every violation, if any exist."""
    violations = lint_module(module)
    if violations:
        name = module if isinstance(module, str) else module.__name__
        listing = "\n  ".join(str(v) for v in violations)
        raise AssertionError(
            f"{name} uses P4-inexpressible constructs:\n  {listing}"
        )
