"""Static P4-expressibility lint (compatibility surface).

The whole point of the paper is that its statistics avoid operations P4
cannot express.  The actual checker now lives in
:mod:`repro.analysis.expressibility` — the rule-registry analyzer behind
``repro lint`` — which also closes this module's historical blind spot:
``from math import sqrt`` followed by a bare ``sqrt(x)`` is flagged just
like ``math.sqrt(x)``, as are aliased imports (``import numpy as anything``).

This module keeps the original lightweight API (:class:`LintViolation`,
:func:`lint_source`, :func:`lint_module`, :func:`assert_p4_expressible`)
that the test suite and downstream callers use; violations are the
analyzer's error-severity diagnostics re-shaped.  Lines suppressed with a
``# p4-ok`` pragma are accepted here too.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass
from types import ModuleType
from typing import List, Union

from repro.analysis.diagnostics import Severity
from repro.analysis.expressibility import scan_source

warnings.warn(
    "repro.resources.lint is a compatibility shim scheduled for removal; "
    "use repro.analysis (scan_source/scan_module and the ST4xx "
    "diagnostics) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["LintViolation", "lint_source", "lint_module", "assert_p4_expressible"]


@dataclass(frozen=True)
class LintViolation:
    """One P4-inexpressible construct found in the source."""

    line: int
    construct: str
    detail: str

    def __str__(self) -> str:
        return f"line {self.line}: {self.construct} ({self.detail})"


def lint_source(source: str) -> List[LintViolation]:
    """Lint Python source text; returns all violations found."""
    return [
        LintViolation(
            line=diag.line or 0,
            construct=str(diag.context.get("construct", diag.code)),
            detail=str(diag.context.get("detail", diag.message)),
        )
        for diag in scan_source(source)
        if diag.severity is not Severity.INFO
    ]


def lint_module(module: Union[ModuleType, str]) -> List[LintViolation]:
    """Lint an imported module (or a module's source path)."""
    if isinstance(module, str):
        with open(module, "r", encoding="utf-8") as handle:
            return lint_source(handle.read())
    return lint_source(inspect.getsource(module))


def assert_p4_expressible(module: Union[ModuleType, str]) -> None:
    """Raise AssertionError listing every violation, if any exist."""
    violations = lint_module(module)
    if violations:
        name = module if isinstance(module, str) else module.__name__
        listing = "\n  ".join(str(v) for v in violations)
        raise AssertionError(
            f"{name} uses P4-inexpressible constructs:\n  {listing}"
        )
