"""Register-overflow analysis: how long until Xsumsq wraps?

P4 registers wrap silently.  The paper's measure registers hold
``Xsum = Σxᵢ`` and ``Xsumsq = Σxᵢ²``; at a given value magnitude and
distribution size, each has a hard ceiling before the next update wraps
and every derived measure goes quietly wrong.  This module computes those
ceilings so a deployment can be checked *before* it is compiled — the
static counterpart of the Sec. 2 order-of-magnitude discussion (counting
in coarse units exists precisely to keep these sums small).

All bounds are conservative (worst case: every value at ``max_value``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.stat4.config import Stat4Config

__all__ = ["OverflowBound", "analyze_overflow", "safe_unit_shift"]


@dataclass(frozen=True)
class OverflowBound:
    """Worst-case capacity of one measure register.

    Attributes:
        register: register name.
        width: bit width.
        max_safe_values: distribution sizes N the register can absorb with
            every value at ``max_value`` (None-like huge numbers capped).
        limiting: whether this register is the binding constraint.
    """

    register: str
    width: int
    max_safe_values: int
    limiting: bool = False


def _floor_div_pow2(value: int, divisor: int) -> int:
    # Host-side analysis; plain division is fine here.
    return value // divisor if divisor else 0


def analyze_overflow(
    config: Stat4Config, max_value: int
) -> List[OverflowBound]:
    """Bound how many worst-case values each measure register can absorb.

    Args:
        config: the deployment's register widths.
        max_value: the largest value of interest a cell can hold (e.g. the
            packets-per-interval ceiling, or 2^counter_width - 1).

    Returns:
        one bound per relevant register, with the binding constraint
        flagged.  ``variance`` uses ``N·Xsumsq`` headroom, the largest
        intermediate the paper's formula needs.
    """
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    stats_cap = (1 << config.stats_width) - 1
    cell_cap = (1 << config.counter_width) - 1
    if max_value > cell_cap:
        raise ValueError(
            f"max_value {max_value} exceeds the cell width "
            f"({config.counter_width} bits)"
        )
    bounds = [
        OverflowBound(
            register="stat4_counters",
            width=config.counter_width,
            max_safe_values=config.counter_size if max_value <= cell_cap else 0,
        ),
        OverflowBound(
            register="stat4_xsum",
            width=config.stats_width,
            max_safe_values=_floor_div_pow2(stats_cap, max_value),
        ),
        OverflowBound(
            register="stat4_xsumsq",
            width=config.stats_width,
            max_safe_values=_floor_div_pow2(stats_cap, max_value * max_value),
        ),
        OverflowBound(
            register="stat4_var (N*Xsumsq)",
            width=config.stats_width,
            # N * N * max^2 <= cap  =>  N <= sqrt(cap / max^2)
            max_safe_values=_isqrt(_floor_div_pow2(stats_cap, max_value * max_value)),
        ),
    ]
    tightest = min(bounds[1:], key=lambda bound: bound.max_safe_values)
    return [
        OverflowBound(
            register=bound.register,
            width=bound.width,
            max_safe_values=bound.max_safe_values,
            limiting=(bound is tightest),
        )
        for bound in bounds
    ]


def _isqrt(value: int) -> int:
    # Exact integer sqrt (host-side; not the data-plane approximation).
    if value < 0:
        raise ValueError("negative")
    x = value
    y = (x + 1) >> 1
    while y < x:
        x = y
        y = (x + value // x) >> 1 if x else 0
    return x


def safe_unit_shift(config: Stat4Config, max_raw_value: int) -> int:
    """Smallest unit shift making the deployment overflow-safe.

    The Sec. 2 trick operationalized: find the least ``k`` such that
    counting in ``2^k`` units lets every measure register absorb a full
    distribution (``counter_size`` values) of worst-case magnitude.
    """
    for shift in range(0, 64):
        coarse = max(max_raw_value >> shift, 1)
        bounds = analyze_overflow(config, coarse)
        if all(
            bound.max_safe_values >= config.counter_size for bound in bounds
        ):
            return shift
    raise ValueError("no unit shift makes this configuration safe")
