"""Register-overflow analysis (compatibility surface).

P4 registers wrap silently; the paper's Sec. 2 order-of-magnitude trick
exists precisely to keep ``Xsum``/``Xsumsq`` small enough to fit.  The
computation moved into :mod:`repro.analysis.dataflow`, the width/overflow
pass of the ``repro lint`` analyzer, which also reports the bounds as
structured ST41x diagnostics; this module keeps the original import
surface for callers that want the raw numbers.
"""

from __future__ import annotations

import warnings

from repro.analysis.dataflow import (
    OverflowBound,
    analyze_overflow,
    safe_unit_shift,
)

warnings.warn(
    "repro.resources.overflow is a compatibility shim scheduled for "
    "removal; use repro.analysis.dataflow instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["OverflowBound", "analyze_overflow", "safe_unit_shift"]
