"""Static analysis: resource footprints and P4-expressibility linting."""

from repro.resources.lint import (
    LintViolation,
    assert_p4_expressible,
    lint_module,
    lint_source,
)
from repro.resources.model import (
    ResourceReport,
    TableCost,
    analyze_program,
    table_entry_bytes,
)
from repro.resources.overflow import (
    OverflowBound,
    analyze_overflow,
    safe_unit_shift,
)

__all__ = [
    "LintViolation",
    "assert_p4_expressible",
    "lint_module",
    "lint_source",
    "ResourceReport",
    "TableCost",
    "analyze_program",
    "table_entry_bytes",
    "OverflowBound",
    "analyze_overflow",
    "safe_unit_shift",
]
