"""Static analysis: resource footprints and P4-expressibility linting.

The lint/overflow halves of this package are deprecated compatibility
shims over :mod:`repro.analysis` (they warn on import and will be removed
in a later revision); their names are re-exported lazily here so that
``import repro.resources`` for the still-canonical resource model does
not trigger the deprecation warnings.
"""

from repro.resources.model import (
    ResourceReport,
    TableCost,
    analyze_program,
    table_entry_bytes,
)

__all__ = [
    "LintViolation",
    "assert_p4_expressible",
    "lint_module",
    "lint_source",
    "ResourceReport",
    "TableCost",
    "analyze_program",
    "table_entry_bytes",
    "OverflowBound",
    "analyze_overflow",
    "safe_unit_shift",
]

_LINT_NAMES = {
    "LintViolation",
    "assert_p4_expressible",
    "lint_module",
    "lint_source",
}
_OVERFLOW_NAMES = {"OverflowBound", "analyze_overflow", "safe_unit_shift"}


def __getattr__(name: str):
    # PEP 562: defer the deprecated shims until something actually asks
    # for one of their names (the shim module itself then warns).
    if name in _LINT_NAMES:
        from repro.resources import lint

        return getattr(lint, name)
    if name in _OVERFLOW_NAMES:
        from repro.resources import overflow

        return getattr(overflow, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
