# p4-ok-file — host-side resource accounting model, not data-plane code.
"""Static resource analysis of a pipeline program (paper Sec. 4).

Reproduces the three numbers the paper reports for the case-study
application:

- **memory footprint** ("occupies 3.1KB") — register bytes plus installed
  table-entry bytes;
- **match-action rule dependencies** ("at most one dependency between
  match-action rules, since at most two rules with independent actions
  match each packet") — derived from how many sequential tables can match
  one packet and whether their actions touch the same state;
- **longest dependency chain** ("12 sequential steps") and whether it fits
  a target's stage budget ("we expect that our code be deployable in most
  commercial targets, as they typically support more than 10 pipeline
  stages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.p4.pipeline import PipelineProgram
from repro.p4.tables import Table
from repro.p4.values import TargetProfile, TOFINO_LIKE

__all__ = ["TableCost", "ResourceReport", "analyze_program", "table_entry_bytes"]

#: Flat per-entry cost model: match key bytes + action id + parameter words.
_ENTRY_OVERHEAD_BYTES = 4


def table_entry_bytes(table: Table) -> int:
    """Estimated bytes consumed by a table's *installed* entries."""
    key_bytes = sum((key.width + 7) >> 3 for key in table.keys)
    total = 0
    for entry in table.entries():
        param_bytes = 8 * len(entry.params)
        total += key_bytes + param_bytes + _ENTRY_OVERHEAD_BYTES
    return total


@dataclass
class TableCost:
    """Per-table footprint summary."""

    name: str
    entries: int
    capacity: int
    bytes_used: int


@dataclass
class ResourceReport:
    """The Sec.-4 resource numbers for one program.

    Attributes:
        program: program name.
        register_bytes: per-register-array byte usage.
        table_costs: per-table entry counts and bytes.
        longest_chain: length of the longest declared dependency chain.
        chain_steps: the step names along that chain.
        rule_dependencies: sequential dependencies between match-action
            rules that can match the same packet.
        rules_per_packet: maximum rules matching one packet.
    """

    program: str
    register_bytes: Dict[str, int] = field(default_factory=dict)
    table_costs: List[TableCost] = field(default_factory=list)
    longest_chain: int = 0
    chain_steps: List[str] = field(default_factory=list)
    rule_dependencies: int = 0
    rules_per_packet: int = 0

    @property
    def total_register_bytes(self) -> int:
        """All register memory."""
        return sum(self.register_bytes.values())

    @property
    def total_table_bytes(self) -> int:
        """All installed-entry memory."""
        return sum(cost.bytes_used for cost in self.table_costs)

    @property
    def total_bytes(self) -> int:
        """The headline footprint (registers + installed entries)."""
        return self.total_register_bytes + self.total_table_bytes

    def fits_target(self, target: TargetProfile = TOFINO_LIKE) -> bool:
        """Whether the longest chain fits the target's stage budget."""
        return self.longest_chain <= target.max_pipeline_stages

    def summary_lines(self) -> List[str]:
        """Human-readable report (printed by the resources bench)."""
        lines = [f"program: {self.program}"]
        lines.append(f"registers: {self.total_register_bytes} B")
        for name, used in sorted(self.register_bytes.items()):
            lines.append(f"  {name}: {used} B")
        lines.append(f"table entries: {self.total_table_bytes} B")
        for cost in self.table_costs:
            lines.append(
                f"  {cost.name}: {cost.entries}/{cost.capacity} entries, "
                f"{cost.bytes_used} B"
            )
        lines.append(f"total: {self.total_bytes} B ({self.total_bytes / 1024:.1f} KB)")
        lines.append(
            f"longest dependency chain: {self.longest_chain} steps "
            f"({' -> '.join(self.chain_steps)})"
        )
        lines.append(
            f"match-action rules per packet: {self.rules_per_packet} "
            f"({self.rule_dependencies} dependency)"
        )
        return lines


def _binding_rule_structure(program: PipelineProgram) -> Tuple[int, int]:
    """(max rules matching one packet, dependencies between them).

    Sequential binding stages each contribute at most one matching rule.
    Two rules depend on each other only if their actions update the same
    distribution slot; the library's convention gives each binding its own
    slot, so the common case is independent actions — one *ordering*
    dependency between consecutive stages, as the paper counts it.
    """
    stages = [
        table
        for name, table in sorted(program.tables.items())
        if name.startswith("stat4_binding_")
    ]
    populated = [table for table in stages if len(table) > 0]
    rules_per_packet = len(populated)
    if rules_per_packet <= 1:
        return max(rules_per_packet, len(populated)), 0
    # Count slot collisions across stages; independent actions otherwise.
    slots_per_stage = [
        {entry.params["spec"].dist for entry in table.entries()}
        for table in populated
    ]
    dependencies = 0
    for i in range(1, len(slots_per_stage)):
        overlap = slots_per_stage[i] & set().union(*slots_per_stage[:i])
        dependencies += 1 if not overlap else 2  # shared state costs extra
    return rules_per_packet, dependencies


def analyze_program(program: PipelineProgram) -> ResourceReport:
    """Compute the full resource report for a program."""
    report = ResourceReport(program=program.name)
    for array in program.registers:
        report.register_bytes[array.name] = array.bytes_used
    for name, table in sorted(program.tables.items()):
        report.table_costs.append(
            TableCost(
                name=name,
                entries=len(table),
                capacity=table.max_size,
                bytes_used=table_entry_bytes(table),
            )
        )
    length, chain = program.graph.longest_chain()
    report.longest_chain = length
    report.chain_steps = chain
    rules, dependencies = _binding_rule_structure(program)
    report.rules_per_packet = rules
    report.rule_dependencies = dependencies
    return report
