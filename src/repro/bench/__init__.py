# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""Throughput benchmarks for the Stat4 hot loop (``repro bench``).

The suite measures packets/second through the scalar :meth:`Stat4.process`
path and the batched :class:`~repro.stat4.batch.BatchEngine` path for each
distribution kind, plus wall-clock for the paper-table experiments, and
emits a schema-versioned ``BENCH_<rev>.json`` artifact.  CI compares the
*speedup ratios* (batched over scalar, machine-independent to first order)
against committed floors in ``benchmarks/baseline.json`` — see
``docs/BENCHMARKS.md``.
"""

from repro.bench.compare import (
    ComparisonRow,
    ScenarioComparisonRow,
    compare_reports,
    compare_scenario_reports,
    format_delta_markdown,
    format_delta_table,
    format_scenario_delta_markdown,
    format_scenario_delta_table,
    load_baseline,
    load_scenario_baseline,
    warning_annotations,
)
from repro.bench.history import (
    DEFAULT_HISTORY_DIR,
    HISTORY_SCHEMA,
    FloorSuggestion,
    append_history,
    format_suggestions,
    format_suggestions_markdown,
    format_trend,
    load_index,
    previous_report,
    suggest_floor_bumps,
)
from repro.bench.suite import (
    SCENARIO_SCHEMA,
    SCHEMA_VERSION,
    format_kernels_markdown,
    format_merge_markdown,
    format_report,
    format_scenario_table,
    run_suite,
    write_report,
)

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIO_SCHEMA",
    "run_suite",
    "write_report",
    "format_report",
    "format_kernels_markdown",
    "format_merge_markdown",
    "format_scenario_table",
    "compare_reports",
    "format_delta_table",
    "format_delta_markdown",
    "load_baseline",
    "ComparisonRow",
    "ScenarioComparisonRow",
    "compare_scenario_reports",
    "format_scenario_delta_table",
    "format_scenario_delta_markdown",
    "load_scenario_baseline",
    "warning_annotations",
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_DIR",
    "append_history",
    "load_index",
    "previous_report",
    "format_trend",
    "FloorSuggestion",
    "suggest_floor_bumps",
    "format_suggestions",
    "format_suggestions_markdown",
]
