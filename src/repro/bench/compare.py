# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""Baseline comparison for the CI perf-smoke gate.

CI never compares absolute packets/second — runners differ too much.  What
is stable across machines (to first order: both paths run on the same
interpreter on the same box) is the batched-over-scalar *speedup ratio*
per kernel.  ``benchmarks/baseline.json`` commits conservative floors for
those ratios; a change that drags a ratio more than ``tolerance`` below
its floor is a perf regression and fails the job.

The comparison is also checked in the *other* direction: a kernel the
report measures but the baseline has no floor for is surfaced as a WARN
row instead of silently passing — a newly added kernel must get a
committed floor before its performance is actually gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "BASELINE_SCHEMA",
    "SCENARIO_BASELINE_SCHEMA",
    "ComparisonRow",
    "ScenarioComparisonRow",
    "load_baseline",
    "load_scenario_baseline",
    "compare_reports",
    "compare_scenario_reports",
    "format_delta_table",
    "format_delta_markdown",
    "format_scenario_delta_table",
    "format_scenario_delta_markdown",
    "warning_annotations",
]

BASELINE_SCHEMA = "repro-bench-baseline/1"
SCENARIO_BASELINE_SCHEMA = "repro-scenario-baseline/1"

#: Scenario quality metrics: (row key, floor key, direction).  ``min_*``
#: floors require current >= floor, the ``max_*`` ceiling requires
#: current <= ceiling (detection latency: lower is better).
_SCENARIO_METRICS = (
    ("precision", "min_precision", "min"),
    ("recall", "min_recall", "min"),
    ("f1", "min_f1", "min"),
    ("latency_intervals", "max_latency_intervals", "max"),
)


@dataclass
class ComparisonRow:
    """One (kernel, backend) pair checked against its committed floor.

    Attributes:
        kernel: kernel name from the suite.
        backend: batch backend the floor applies to.
        baseline: the committed speedup floor (None when the kernel has no
            floor at all — a WARN row, see ``missing_floor``).
        current: the measured speedup (None when the backend did not run —
            e.g. a numpy floor on a machine without numpy).
        regressed: measured more than ``tolerance`` below the floor.
        missing_floor: measured by the suite but absent from the baseline —
            not gated, listed so the gap is visible instead of silent.
    """

    kernel: str
    backend: str
    baseline: Optional[float]
    current: Optional[float]
    regressed: bool
    missing_floor: bool = False

    @property
    def delta_percent(self) -> Optional[float]:
        """Relative change vs the floor, in percent (None = not derivable)."""
        if self.current is None or self.baseline is None or self.baseline <= 0:
            return None
        return (self.current - self.baseline) / self.baseline * 100.0

    @property
    def label(self) -> str:
        """Identifier used in summaries and CI annotations."""
        return f"{self.kernel}/{self.backend}"


@dataclass
class ScenarioComparisonRow:
    """One (scenario, engine, metric) checked against its committed floor.

    Quality scores are bit-deterministic (fixed traces, fixed seeds), so
    unlike speedup floors these are compared exactly — no tolerance band.

    Attributes:
        scenario: scenario name from the catalog.
        engine: replay engine the row was measured under.
        metric: row metric name (``precision``/``recall``/``f1``/
            ``latency_intervals``).
        baseline: the committed floor (ceiling for latency); None on WARN
            rows for scenarios without any committed floors.
        current: the measured value; None when the scenario was not
            replayed (a FAIL) or latency is undefined (nothing detected —
            also a FAIL when a ceiling is committed).
        regressed: the floor/ceiling was violated.
        missing_floor: measured but not gated by the baseline.
    """

    scenario: str
    engine: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    regressed: bool
    missing_floor: bool = False

    @property
    def label(self) -> str:
        """Identifier used in summaries and CI annotations."""
        return f"{self.scenario}[{self.engine}]"


def load_baseline(path: str) -> Dict[str, Any]:
    """Read and sanity-check a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {baseline.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    if not isinstance(baseline.get("speedups"), dict):
        raise ValueError(f"{path}: baseline has no 'speedups' mapping")
    return baseline


def compare_reports(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
) -> List[ComparisonRow]:
    """Check a bench report against baseline floors.

    A (kernel, backend) floor the report has no measurement for is only a
    regression when the backend *should* have run: a missing numpy or
    compiled measurement on a numpy-less machine, a backend outside the
    run's ``report["backends"]`` selection (a ``--backend python`` matrix
    leg), or the staleness twin the merge kernel did not run under
    (``merge_parallel`` vs ``merge_parallel_bounded``) are recorded as
    unmeasured (``current=None, regressed=False``) so restricted runs
    stay green, while the CI leg that measures everything still gates
    every floor.

    Conversely, every measured (kernel, backend) pair with no committed
    floor yields a ``missing_floor`` WARN row — never a silent pass.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    measured = report.get("speedups", {})
    has_numpy = report.get("numpy") is not None
    run_backends = report.get("backends")
    staleness = (report.get("merge") or {}).get("staleness")
    merge_twins = ("merge_parallel", "merge_parallel_bounded")
    measured_merge = (
        "merge_parallel_bounded" if staleness == "bounded" else "merge_parallel"
    )
    floors = baseline["speedups"]
    rows: List[ComparisonRow] = []
    for kernel in sorted(floors):
        for backend in sorted(floors[kernel]):
            floor = float(floors[kernel][backend])
            current = measured.get(kernel, {}).get(backend)
            if current is None:
                skippable = (
                    (backend in ("numpy", "compiled") and not has_numpy)
                    or (run_backends is not None and backend not in run_backends)
                    or (
                        kernel in merge_twins
                        and staleness is not None
                        and kernel != measured_merge
                    )
                )
                rows.append(
                    ComparisonRow(
                        kernel=kernel,
                        backend=backend,
                        baseline=floor,
                        current=None,
                        regressed=not skippable,
                    )
                )
                continue
            regressed = current < floor * (1.0 - tolerance)
            rows.append(
                ComparisonRow(
                    kernel=kernel,
                    backend=backend,
                    baseline=floor,
                    current=float(current),
                    regressed=regressed,
                )
            )
    for kernel in sorted(measured):
        for backend in sorted(measured[kernel]):
            if backend in floors.get(kernel, {}):
                continue
            rows.append(
                ComparisonRow(
                    kernel=kernel,
                    backend=backend,
                    baseline=None,
                    current=float(measured[kernel][backend]),
                    regressed=False,
                    missing_floor=True,
                )
            )
    return rows


def load_scenario_baseline(path: str) -> Dict[str, Any]:
    """Read and sanity-check committed scenario quality floors."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != SCENARIO_BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {baseline.get('schema')!r} "
            f"(expected {SCENARIO_BASELINE_SCHEMA!r})"
        )
    if not isinstance(baseline.get("floors"), dict):
        raise ValueError(f"{path}: baseline has no 'floors' mapping")
    return baseline


def compare_scenario_reports(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
) -> List[ScenarioComparisonRow]:
    """Check a report's scenario leaderboard against committed floors.

    Mirrors :func:`compare_reports` in both directions: a committed floor
    with no measured row is a FAIL (the scenario silently dropped out of
    the suite), and a measured scenario with no committed floors is a WARN
    row — quality is only actually gated once a floor lands in
    ``benchmarks/scenario_baseline.json``.

    Floors apply per scenario, to *every* engine the report replayed —
    scalar and parallel paths must both clear them.
    """
    section = report.get("scenarios") or {}
    measured: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for row in section.get("rows", []):
        measured.setdefault(row["scenario"], {})[row["engine"]] = row
    floors = baseline["floors"]
    rows: List[ScenarioComparisonRow] = []
    engines = sorted({engine for by_engine in measured.values() for engine in by_engine})
    for scenario in sorted(floors):
        scenario_floors = floors[scenario]
        by_engine = measured.get(scenario, {})
        if not by_engine:
            # Committed floor, nothing measured: the scenario fell out of
            # the suite — fail every metric the floor gates.
            for _, floor_key, _ in _SCENARIO_METRICS:
                if floor_key not in scenario_floors:
                    continue
                for engine in engines or ["scalar"]:
                    rows.append(
                        ScenarioComparisonRow(
                            scenario=scenario,
                            engine=engine,
                            metric=floor_key,
                            baseline=float(scenario_floors[floor_key]),
                            current=None,
                            regressed=True,
                        )
                    )
            continue
        for engine in sorted(by_engine):
            row = by_engine[engine]
            for metric, floor_key, direction in _SCENARIO_METRICS:
                if floor_key not in scenario_floors:
                    continue
                floor = float(scenario_floors[floor_key])
                current = row.get(metric)
                if current is None:
                    # Undefined latency = nothing detected; with a
                    # committed ceiling that is a regression.
                    regressed = True
                elif direction == "min":
                    regressed = float(current) < floor
                else:
                    regressed = float(current) > floor
                rows.append(
                    ScenarioComparisonRow(
                        scenario=scenario,
                        engine=engine,
                        metric=metric,
                        baseline=floor,
                        current=None if current is None else float(current),
                        regressed=regressed,
                    )
                )
    for scenario in sorted(measured):
        if scenario in floors:
            continue
        for engine in sorted(measured[scenario]):
            rows.append(
                ScenarioComparisonRow(
                    scenario=scenario,
                    engine=engine,
                    metric="f1",
                    baseline=None,
                    current=float(measured[scenario][engine]["f1"]),
                    regressed=False,
                    missing_floor=True,
                )
            )
    return rows


def _verdict_of(row: ComparisonRow) -> str:
    if row.missing_floor:
        return "WARN (no baseline floor)"
    if row.current is None:
        return "FAIL (not measured)" if row.regressed else "skipped"
    return "FAIL" if row.regressed else "ok"


def _summary_lines(rows: List[ComparisonRow]) -> List[str]:
    failed = sum(1 for row in rows if row.regressed)
    lines = [
        "perf-smoke: "
        + (f"{failed} regression(s) detected" if failed else "no regressions")
    ]
    unbaselined = sorted(
        {f"{row.kernel}/{row.backend}" for row in rows if row.missing_floor}
    )
    if unbaselined:
        lines.append(
            "perf-smoke: measured but missing a committed floor "
            "(not gated): " + ", ".join(unbaselined)
        )
    return lines


def format_delta_table(rows: List[ComparisonRow], tolerance: float = 0.2) -> str:
    """The per-kernel delta table the perf-smoke job prints."""
    lines = [
        f"perf-smoke: speedup floors ± {tolerance * 100:.0f}% tolerance",
        f"{'kernel':<22} {'backend':<8} {'floor':>7} {'current':>8} "
        f"{'delta':>8}  verdict",
    ]
    for row in rows:
        floor = f"{row.baseline:.2f}x" if row.baseline is not None else "-"
        current = f"{row.current:.2f}x" if row.current is not None else "-"
        delta = (
            f"{row.delta_percent:+.0f}%" if row.delta_percent is not None else "-"
        )
        lines.append(
            f"{row.kernel:<22} {row.backend:<8} {floor:>7} "
            f"{current:>8} {delta:>8}  {_verdict_of(row)}"
        )
    lines.extend(_summary_lines(rows))
    return "\n".join(lines)


def format_delta_markdown(rows: List[ComparisonRow], tolerance: float = 0.2) -> str:
    """The same delta table as GitHub-flavored markdown (job summaries).

    CI appends this to ``$GITHUB_STEP_SUMMARY`` so the per-kernel verdicts
    render on the workflow run page instead of hiding in the logs.
    """
    verdict_marks = {"ok": "✅ ok", "FAIL": "❌ FAIL"}
    lines = [
        f"### perf-smoke: speedup floors ± {tolerance * 100:.0f}% tolerance",
        "",
        "| kernel | backend | floor | current | delta | verdict |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        floor = f"{row.baseline:.2f}x" if row.baseline is not None else "—"
        current = f"{row.current:.2f}x" if row.current is not None else "—"
        delta = (
            f"{row.delta_percent:+.0f}%" if row.delta_percent is not None else "—"
        )
        verdict = _verdict_of(row)
        if row.missing_floor:
            verdict = "⚠️ " + verdict
        elif verdict == "skipped":
            verdict = "➖ skipped"
        else:
            verdict = verdict_marks.get(verdict, "❌ " + verdict)
        lines.append(
            f"| `{row.kernel}` | {row.backend} | {floor} | {current} | "
            f"{delta} | {verdict} |"
        )
    lines.append("")
    lines.extend(_summary_lines(rows))
    return "\n".join(lines)


# -- scenario quality comparison ------------------------------------------------


def _scenario_verdict(row: ScenarioComparisonRow) -> str:
    if row.missing_floor:
        return "WARN (no quality floor)"
    if row.current is None and row.regressed:
        return "FAIL (not measured)"
    return "FAIL" if row.regressed else "ok"


def _scenario_summary_lines(rows: List[ScenarioComparisonRow]) -> List[str]:
    failed = sum(1 for row in rows if row.regressed)
    lines = [
        "scenario-smoke: "
        + (
            f"{failed} quality regression(s) detected"
            if failed
            else "no quality regressions"
        )
    ]
    unbaselined = sorted({row.label for row in rows if row.missing_floor})
    if unbaselined:
        lines.append(
            "scenario-smoke: scored but missing a committed quality floor "
            "(not gated): " + ", ".join(unbaselined)
        )
    return lines


def _scenario_value(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def format_scenario_delta_table(rows: List[ScenarioComparisonRow]) -> str:
    """The per-scenario quality table the scenario-smoke job prints."""
    lines = [
        "scenario-smoke: quality floors (exact — scores are deterministic)",
        f"{'scenario':<18} {'engine':<9} {'metric':<18} {'floor':>7} "
        f"{'current':>8}  verdict",
    ]
    for row in rows:
        lines.append(
            f"{row.scenario:<18} {row.engine:<9} {row.metric:<18} "
            f"{_scenario_value(row.baseline):>7} "
            f"{_scenario_value(row.current):>8}  {_scenario_verdict(row)}"
        )
    lines.extend(_scenario_summary_lines(rows))
    return "\n".join(lines)


def format_scenario_delta_markdown(rows: List[ScenarioComparisonRow]) -> str:
    """The scenario quality table as GitHub-flavored markdown."""
    lines = [
        "### scenario-smoke: detection quality floors",
        "",
        "| scenario | engine | metric | floor | current | verdict |",
        "| --- | --- | --- | ---: | ---: | --- |",
    ]
    for row in rows:
        verdict = _scenario_verdict(row)
        if row.missing_floor:
            verdict = "⚠️ " + verdict
        elif row.regressed:
            verdict = "❌ " + verdict
        else:
            verdict = "✅ " + verdict
        lines.append(
            f"| `{row.scenario}` | {row.engine} | {row.metric} | "
            f"{_scenario_value(row.baseline)} | {_scenario_value(row.current)} | "
            f"{verdict} |"
        )
    lines.append("")
    lines.extend(_scenario_summary_lines(rows))
    return "\n".join(lines)


def warning_annotations(rows: List[Any], job: str) -> List[str]:
    """GitHub Actions ``::warning::`` lines for missing-floor WARN rows.

    Works for both perf (:class:`ComparisonRow`) and scenario
    (:class:`ScenarioComparisonRow`) comparisons — anything with ``label``
    and ``missing_floor``.  The CLI prints these when running under CI so
    silent baseline gaps surface in the PR checks UI, not just in a table
    nobody scrolls to.
    """
    labels = sorted({row.label for row in rows if row.missing_floor})
    return [
        f"::warning title={job}: missing committed floor::"
        f"{label} is measured but has no committed floor — add it to the "
        "baseline so it is actually gated"
        for label in labels
    ]
