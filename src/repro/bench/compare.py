# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""Baseline comparison for the CI perf-smoke gate.

CI never compares absolute packets/second — runners differ too much.  What
is stable across machines (to first order: both paths run on the same
interpreter on the same box) is the batched-over-scalar *speedup ratio*
per kernel.  ``benchmarks/baseline.json`` commits conservative floors for
those ratios; a change that drags a ratio more than ``tolerance`` below
its floor is a perf regression and fails the job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "BASELINE_SCHEMA",
    "ComparisonRow",
    "load_baseline",
    "compare_reports",
    "format_delta_table",
]

BASELINE_SCHEMA = "repro-bench-baseline/1"


@dataclass
class ComparisonRow:
    """One (kernel, backend) pair checked against its committed floor.

    Attributes:
        kernel: kernel name from the suite.
        backend: batch backend the floor applies to.
        baseline: the committed speedup floor.
        current: the measured speedup (None when the backend did not run —
            e.g. a numpy floor on a machine without numpy).
        regressed: measured more than ``tolerance`` below the floor.
    """

    kernel: str
    backend: str
    baseline: float
    current: Optional[float]
    regressed: bool

    @property
    def delta_percent(self) -> Optional[float]:
        """Relative change vs the floor, in percent (None = not measured)."""
        if self.current is None or self.baseline <= 0:
            return None
        return (self.current - self.baseline) / self.baseline * 100.0


def load_baseline(path: str) -> Dict[str, Any]:
    """Read and sanity-check a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {baseline.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    if not isinstance(baseline.get("speedups"), dict):
        raise ValueError(f"{path}: baseline has no 'speedups' mapping")
    return baseline


def compare_reports(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
) -> List[ComparisonRow]:
    """Check a bench report against baseline floors.

    A (kernel, backend) floor the report has no measurement for is only a
    regression when the backend *should* have run: a missing numpy
    measurement on a numpy-less machine is recorded as unmeasured
    (``current=None, regressed=False``) so local runs stay green, while CI
    (which installs numpy) always measures it.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    measured = report.get("speedups", {})
    has_numpy = report.get("numpy") is not None
    rows: List[ComparisonRow] = []
    for kernel in sorted(baseline["speedups"]):
        floors = baseline["speedups"][kernel]
        for backend in sorted(floors):
            floor = float(floors[backend])
            current = measured.get(kernel, {}).get(backend)
            if current is None:
                skippable = backend == "numpy" and not has_numpy
                rows.append(
                    ComparisonRow(
                        kernel=kernel,
                        backend=backend,
                        baseline=floor,
                        current=None,
                        regressed=not skippable,
                    )
                )
                continue
            regressed = current < floor * (1.0 - tolerance)
            rows.append(
                ComparisonRow(
                    kernel=kernel,
                    backend=backend,
                    baseline=floor,
                    current=float(current),
                    regressed=regressed,
                )
            )
    return rows


def format_delta_table(rows: List[ComparisonRow], tolerance: float = 0.2) -> str:
    """The per-kernel delta table the perf-smoke job prints."""
    lines = [
        f"perf-smoke: speedup floors ± {tolerance * 100:.0f}% tolerance",
        f"{'kernel':<14} {'backend':<8} {'floor':>7} {'current':>8} "
        f"{'delta':>8}  verdict",
    ]
    for row in rows:
        if row.current is None:
            current = "-"
            delta = "-"
            verdict = "FAIL (not measured)" if row.regressed else "skipped"
        else:
            current = f"{row.current:.2f}x"
            delta = f"{row.delta_percent:+.0f}%"
            verdict = "FAIL" if row.regressed else "ok"
        lines.append(
            f"{row.kernel:<14} {row.backend:<8} {row.baseline:>6.2f}x "
            f"{current:>8} {delta:>8}  {verdict}"
        )
    failed = sum(1 for row in rows if row.regressed)
    lines.append(
        "perf-smoke: "
        + (f"{failed} regression(s) detected" if failed else "no regressions")
    )
    return "\n".join(lines)
