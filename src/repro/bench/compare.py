# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""Baseline comparison for the CI perf-smoke gate.

CI never compares absolute packets/second — runners differ too much.  What
is stable across machines (to first order: both paths run on the same
interpreter on the same box) is the batched-over-scalar *speedup ratio*
per kernel.  ``benchmarks/baseline.json`` commits conservative floors for
those ratios; a change that drags a ratio more than ``tolerance`` below
its floor is a perf regression and fails the job.

The comparison is also checked in the *other* direction: a kernel the
report measures but the baseline has no floor for is surfaced as a WARN
row instead of silently passing — a newly added kernel must get a
committed floor before its performance is actually gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "BASELINE_SCHEMA",
    "ComparisonRow",
    "load_baseline",
    "compare_reports",
    "format_delta_table",
    "format_delta_markdown",
]

BASELINE_SCHEMA = "repro-bench-baseline/1"


@dataclass
class ComparisonRow:
    """One (kernel, backend) pair checked against its committed floor.

    Attributes:
        kernel: kernel name from the suite.
        backend: batch backend the floor applies to.
        baseline: the committed speedup floor (None when the kernel has no
            floor at all — a WARN row, see ``missing_floor``).
        current: the measured speedup (None when the backend did not run —
            e.g. a numpy floor on a machine without numpy).
        regressed: measured more than ``tolerance`` below the floor.
        missing_floor: measured by the suite but absent from the baseline —
            not gated, listed so the gap is visible instead of silent.
    """

    kernel: str
    backend: str
    baseline: Optional[float]
    current: Optional[float]
    regressed: bool
    missing_floor: bool = False

    @property
    def delta_percent(self) -> Optional[float]:
        """Relative change vs the floor, in percent (None = not derivable)."""
        if self.current is None or self.baseline is None or self.baseline <= 0:
            return None
        return (self.current - self.baseline) / self.baseline * 100.0


def load_baseline(path: str) -> Dict[str, Any]:
    """Read and sanity-check a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {baseline.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    if not isinstance(baseline.get("speedups"), dict):
        raise ValueError(f"{path}: baseline has no 'speedups' mapping")
    return baseline


def compare_reports(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
) -> List[ComparisonRow]:
    """Check a bench report against baseline floors.

    A (kernel, backend) floor the report has no measurement for is only a
    regression when the backend *should* have run: a missing numpy
    measurement on a numpy-less machine is recorded as unmeasured
    (``current=None, regressed=False``) so local runs stay green, while CI
    (which installs numpy) always measures it.

    Conversely, every measured (kernel, backend) pair with no committed
    floor yields a ``missing_floor`` WARN row — never a silent pass.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    measured = report.get("speedups", {})
    has_numpy = report.get("numpy") is not None
    floors = baseline["speedups"]
    rows: List[ComparisonRow] = []
    for kernel in sorted(floors):
        for backend in sorted(floors[kernel]):
            floor = float(floors[kernel][backend])
            current = measured.get(kernel, {}).get(backend)
            if current is None:
                skippable = backend == "numpy" and not has_numpy
                rows.append(
                    ComparisonRow(
                        kernel=kernel,
                        backend=backend,
                        baseline=floor,
                        current=None,
                        regressed=not skippable,
                    )
                )
                continue
            regressed = current < floor * (1.0 - tolerance)
            rows.append(
                ComparisonRow(
                    kernel=kernel,
                    backend=backend,
                    baseline=floor,
                    current=float(current),
                    regressed=regressed,
                )
            )
    for kernel in sorted(measured):
        for backend in sorted(measured[kernel]):
            if backend in floors.get(kernel, {}):
                continue
            rows.append(
                ComparisonRow(
                    kernel=kernel,
                    backend=backend,
                    baseline=None,
                    current=float(measured[kernel][backend]),
                    regressed=False,
                    missing_floor=True,
                )
            )
    return rows


def _verdict_of(row: ComparisonRow) -> str:
    if row.missing_floor:
        return "WARN (no baseline floor)"
    if row.current is None:
        return "FAIL (not measured)" if row.regressed else "skipped"
    return "FAIL" if row.regressed else "ok"


def _summary_lines(rows: List[ComparisonRow]) -> List[str]:
    failed = sum(1 for row in rows if row.regressed)
    lines = [
        "perf-smoke: "
        + (f"{failed} regression(s) detected" if failed else "no regressions")
    ]
    unbaselined = sorted(
        {f"{row.kernel}/{row.backend}" for row in rows if row.missing_floor}
    )
    if unbaselined:
        lines.append(
            "perf-smoke: measured but missing a committed floor "
            "(not gated): " + ", ".join(unbaselined)
        )
    return lines


def format_delta_table(rows: List[ComparisonRow], tolerance: float = 0.2) -> str:
    """The per-kernel delta table the perf-smoke job prints."""
    lines = [
        f"perf-smoke: speedup floors ± {tolerance * 100:.0f}% tolerance",
        f"{'kernel':<22} {'backend':<8} {'floor':>7} {'current':>8} "
        f"{'delta':>8}  verdict",
    ]
    for row in rows:
        floor = f"{row.baseline:.2f}x" if row.baseline is not None else "-"
        current = f"{row.current:.2f}x" if row.current is not None else "-"
        delta = (
            f"{row.delta_percent:+.0f}%" if row.delta_percent is not None else "-"
        )
        lines.append(
            f"{row.kernel:<22} {row.backend:<8} {floor:>7} "
            f"{current:>8} {delta:>8}  {_verdict_of(row)}"
        )
    lines.extend(_summary_lines(rows))
    return "\n".join(lines)


def format_delta_markdown(rows: List[ComparisonRow], tolerance: float = 0.2) -> str:
    """The same delta table as GitHub-flavored markdown (job summaries).

    CI appends this to ``$GITHUB_STEP_SUMMARY`` so the per-kernel verdicts
    render on the workflow run page instead of hiding in the logs.
    """
    verdict_marks = {"ok": "✅ ok", "FAIL": "❌ FAIL"}
    lines = [
        f"### perf-smoke: speedup floors ± {tolerance * 100:.0f}% tolerance",
        "",
        "| kernel | backend | floor | current | delta | verdict |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        floor = f"{row.baseline:.2f}x" if row.baseline is not None else "—"
        current = f"{row.current:.2f}x" if row.current is not None else "—"
        delta = (
            f"{row.delta_percent:+.0f}%" if row.delta_percent is not None else "—"
        )
        verdict = _verdict_of(row)
        if row.missing_floor:
            verdict = "⚠️ " + verdict
        elif verdict == "skipped":
            verdict = "➖ skipped"
        else:
            verdict = verdict_marks.get(verdict, "❌ " + verdict)
        lines.append(
            f"| `{row.kernel}` | {row.backend} | {floor} | {current} | "
            f"{delta} | {verdict} |"
        )
    lines.append("")
    lines.extend(_summary_lines(rows))
    return "\n".join(lines)
