# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""Revision-over-revision bench history (``repro bench --history``).

Each run's report is appended under ``benchmarks/history/`` as
``BENCH_<rev>.json`` next to a small ``index.json`` recording run order and
the per-run speedup summaries.  The trend printer compares the current
report against the most recent run of a *different* revision, so CI output
answers "did this commit move the needle?" rather than re-stating floors.

Re-running the same revision replaces its history entry (latest wins) —
the index holds one entry per revision, ordered by first appearance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_DIR",
    "FloorSuggestion",
    "append_history",
    "load_index",
    "previous_report",
    "format_trend",
    "suggest_floor_bumps",
    "format_suggestions",
    "format_suggestions_markdown",
]

HISTORY_SCHEMA = "repro-bench-history/1"
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")
_INDEX_NAME = "index.json"


def load_index(history_dir: str) -> Dict[str, Any]:
    """Read the history index (an empty one when none exists yet)."""
    path = os.path.join(history_dir, _INDEX_NAME)
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "runs": []}
    with open(path, "r", encoding="utf-8") as handle:
        index = json.load(handle)
    if index.get("schema") != HISTORY_SCHEMA:
        raise ValueError(
            f"{path}: unknown history schema {index.get('schema')!r} "
            f"(expected {HISTORY_SCHEMA!r})"
        )
    return index


def append_history(
    report: Dict[str, Any], history_dir: str = DEFAULT_HISTORY_DIR
) -> str:
    """Write the report into the history and update the index.

    Returns the path of the written ``BENCH_<rev>.json``.
    """
    os.makedirs(history_dir, exist_ok=True)
    # The suite guarantees a non-empty revision (the "unknown" sentinel at
    # worst); keep a belt-and-braces fallback so a hand-built report can
    # never index under an empty key or write "BENCH_.json".
    revision = report.get("revision") or "unknown"
    filename = f"BENCH_{revision}.json"
    report_path = os.path.join(history_dir, filename)
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    index = load_index(history_dir)
    entry = {
        "revision": revision,
        "file": filename,
        "quick": report.get("quick", False),
        "python": report.get("python"),
        "numpy": report.get("numpy"),
        "speedups": report.get("speedups", {}),
        "shipping": report.get("shipping"),
        "scenarios": _scenario_summary(report),
    }
    runs: List[Dict[str, Any]] = index["runs"]
    for position, run in enumerate(runs):
        if run.get("revision") == revision:
            runs[position] = entry
            break
    else:
        runs.append(entry)
    with open(os.path.join(history_dir, _INDEX_NAME), "w", encoding="utf-8") as handle:
        json.dump(index, handle, indent=2)
        handle.write("\n")
    return report_path


def _scenario_summary(
    report: Dict[str, Any]
) -> Optional[Dict[str, Dict[str, float]]]:
    """``scenario -> engine -> f1`` from a report (None when none ran)."""
    section = report.get("scenarios")
    if not section or not section.get("rows"):
        return None
    summary: Dict[str, Dict[str, float]] = {}
    for row in section["rows"]:
        summary.setdefault(row["scenario"], {})[row["engine"]] = row["f1"]
    return summary


def previous_report(
    history_dir: str, revision: str
) -> Optional[Dict[str, Any]]:
    """The most recent history report from a different revision.

    Returns None when the history is empty, holds only this revision, or
    the indexed file has gone missing.
    """
    try:
        index = load_index(history_dir)
    except (OSError, ValueError, json.JSONDecodeError):
        return None
    for run in reversed(index.get("runs", [])):
        if run.get("revision") == revision:
            continue
        path = os.path.join(history_dir, run.get("file", ""))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
    return None


def format_trend(current: Dict[str, Any], previous: Dict[str, Any]) -> str:
    """Per-kernel speedup deltas vs the previous revision's report."""
    lines = [
        f"trend vs revision {previous.get('revision', '?')}:",
        f"{'kernel':<22} {'backend':<8} {'previous':>9} {'current':>8} {'delta':>8}",
    ]
    current_speedups = current.get("speedups", {})
    previous_speedups = previous.get("speedups", {})
    kernels = sorted(set(current_speedups) | set(previous_speedups))
    for kernel in kernels:
        backends = sorted(
            set(current_speedups.get(kernel, {}))
            | set(previous_speedups.get(kernel, {}))
        )
        for backend in backends:
            now = current_speedups.get(kernel, {}).get(backend)
            before = previous_speedups.get(kernel, {}).get(backend)
            now_text = f"{now:.2f}x" if now is not None else "-"
            before_text = f"{before:.2f}x" if before is not None else "-"
            if now is not None and before is not None and before > 0:
                delta = f"{(now - before) / before * 100.0:+.0f}%"
            elif now is not None and before is None:
                delta = "new"
            elif now is None and before is not None:
                delta = "gone"
            else:
                delta = "-"
            lines.append(
                f"{kernel:<22} {backend:<8} {before_text:>9} "
                f"{now_text:>8} {delta:>8}"
            )
    ship_now = current.get("shipping")
    ship_before = previous.get("shipping")
    if ship_now and ship_before:
        lines.append(
            "process-pool shipping (pickled bytes/batch): "
            f"shm {ship_before.get('shm_bytes_per_batch'):,}"
            f" -> {ship_now.get('shm_bytes_per_batch'):,}, "
            f"list {ship_before.get('list_bytes_per_batch'):,}"
            f" -> {ship_now.get('list_bytes_per_batch'):,}"
        )
    merge_now = {row["shards"]: row for row in current.get("cluster", [])}
    merge_before = {row["shards"]: row for row in previous.get("cluster", [])}
    shared = sorted(set(merge_now) & set(merge_before))
    if shared:
        lines.append("cluster merge overhead (seconds):")
        for shards in shared:
            lines.append(
                f"  {shards} shard(s): {merge_before[shards]['merge_seconds']:.4f}"
                f" -> {merge_now[shards]['merge_seconds']:.4f}"
            )
    scen_now = _scenario_summary(current)
    scen_before = _scenario_summary(previous)
    if scen_now and scen_before:
        shared_scenarios = sorted(set(scen_now) & set(scen_before))
        if shared_scenarios:
            lines.append("scenario detection quality (F1):")
            for scenario in shared_scenarios:
                engines = sorted(
                    set(scen_now[scenario]) & set(scen_before[scenario])
                )
                for engine in engines:
                    lines.append(
                        f"  {scenario} [{engine}]: "
                        f"{scen_before[scenario][engine]:.3f}"
                        f" -> {scen_now[scenario][engine]:.3f}"
                    )
    return "\n".join(lines)


@dataclass(frozen=True)
class FloorSuggestion:
    """A committed floor that two consecutive revisions left far behind."""

    kernel: str
    backend: str
    floor: float
    current: float
    previous: float
    suggested: float


def suggest_floor_bumps(
    current: Dict[str, Any],
    previous: Dict[str, Any],
    baseline: Dict[str, Any],
    margin: float = 0.25,
) -> List[FloorSuggestion]:
    """Floors that both the current and previous revision beat by > ``margin``.

    Floors are deliberately conservative, so one lucky run is no reason to
    raise one — but when two consecutive revisions each clear a floor by
    more than 25%, the improvement has held and the floor is stale.  The
    suggested value follows the documented refresh rule
    (``docs/BENCHMARKS.md``): half the worst observed ratio, rounded to
    two decimals, and only suggested when that actually raises the floor.
    Advisory output only; nothing here changes what the gate enforces.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    current_speedups = current.get("speedups", {})
    previous_speedups = previous.get("speedups", {})
    suggestions: List[FloorSuggestion] = []
    for kernel in sorted(baseline.get("speedups", {})):
        for backend in sorted(baseline["speedups"][kernel]):
            floor = baseline["speedups"][kernel][backend]
            now = current_speedups.get(kernel, {}).get(backend)
            before = previous_speedups.get(kernel, {}).get(backend)
            if now is None or before is None or floor <= 0:
                continue
            threshold = floor * (1.0 + margin)
            if now <= threshold or before <= threshold:
                continue
            suggested = round(min(now, before) / 2.0, 2)
            if suggested <= floor:
                continue
            suggestions.append(
                FloorSuggestion(
                    kernel=kernel,
                    backend=backend,
                    floor=floor,
                    current=now,
                    previous=before,
                    suggested=suggested,
                )
            )
    return suggestions


def format_suggestions(suggestions: List[FloorSuggestion]) -> str:
    """Human-readable floor-bump advisory for the trend output."""
    if not suggestions:
        return ""
    lines = [
        "baseline floors beaten by >25% across two consecutive revisions "
        "(advisory; see docs/BENCHMARKS.md \"Refreshing the baseline\"):",
        f"{'kernel':<24} {'backend':<8} {'floor':>7} {'prev':>7} "
        f"{'current':>8} {'suggest':>8}",
    ]
    for s in suggestions:
        lines.append(
            f"{s.kernel:<24} {s.backend:<8} {s.floor:>6.2f}x {s.previous:>6.2f}x "
            f"{s.current:>7.2f}x {s.suggested:>7.2f}x"
        )
    return "\n".join(lines)


def format_suggestions_markdown(suggestions: List[FloorSuggestion]) -> str:
    """The same advisory as a GitHub-flavoured markdown table."""
    if not suggestions:
        return ""
    lines = [
        "### bench floors ready for a bump",
        "",
        "Beaten by >25% across two consecutive revisions — consider the",
        'refresh procedure in `docs/BENCHMARKS.md` ("Refreshing the baseline").',
        "",
        "| kernel | backend | floor | previous | current | suggested |",
        "|---|---|---|---|---|---|",
    ]
    for s in suggestions:
        lines.append(
            f"| `{s.kernel}` | {s.backend} | {s.floor:.2f}x | {s.previous:.2f}x "
            f"| {s.current:.2f}x | **{s.suggested:.2f}x** |"
        )
    return "\n".join(lines)
