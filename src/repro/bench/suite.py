# p4-ok-file — host-side benchmarking harness, not data-plane code.
"""The fixed benchmark suite behind ``repro bench``.

Six kernels, one per hot loop:

- ``mean_variance`` — dense frequency counting with moments only (the
  batched counting kernel; the headline scalar-vs-batched ratio);
- ``percentile``  — frequency counting plus the one-step-per-packet
  median walk (order-dependent, so batching only amortizes dispatch);
- ``time_series`` — interval closes over a circular window;
- ``sparse``      — HashPipe-style hashed slots (order-dependent);
- ``ewma``        — the shift-based EWMA detector, loop vs ``update_many``;
- ``sharded_mean_variance`` — the cluster hot loop: key-hash routing,
  per-shard counting on a 4-shard :class:`~repro.cluster.sharded.ShardedStat4`,
  and the exact network-wide merge;
- ``parallel_mean_variance`` — the same counting workload through
  :class:`~repro.stat4.parallel.ParallelBatchEngine` at ``--workers``
  workers (chunked tallies merged exactly), against the scalar loop;
  ``--pool`` selects the executor (thread or process) for this kernel;
- ``shm_parallel_mean_variance`` — the zero-copy process-pool path:
  columns packed into ``multiprocessing.shared_memory`` segments, workers
  attaching by descriptor, against the same scalar loop.  A separate
  ``shipping`` report section records the per-batch pickled payload of the
  shared-memory path next to the legacy list-shipping path;
- ``service_throughput`` — the always-on serving stack end to end:
  pre-built batches through :class:`~repro.service.server.DetectionService`
  (bounded queue, producer/worker threads, alert log) against the scalar
  per-packet loop with the same default bindings.  A ``service`` report
  section records sustained pps and p99 batch/alert latency per backend.

A separate ``cluster`` report section sweeps the same workload across
1→8 shards, splitting routed-ingest time from controller-side merge time
(the scale-out overhead curve in ``docs/BENCHMARKS.md``).

Each kernel times the *same* prepared workload through the scalar path and
the batched path (per backend), best-of-``repeats``, on a fresh
:class:`Stat4` instance per measurement.  Batch *assembly* (parsing,
column extraction) is excluded from the batched timings: the artifact
reports steady-state ingestion throughput, and the value-column cache is
shared across repeats exactly as a long-lived engine would share it.

The emitted report is schema-versioned (``repro-bench/1``); CI compares
the ``speedups`` section against committed floors, never the absolute pps
(machine-dependent).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.ewma import EwmaDetector
from repro.p4.parser import standard_parser
from repro.p4.switch import PacketContext, StandardMetadata
from repro.stat4.batch import HAS_NUMPY, BatchEngine, PacketBatch, resolve_backend
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime
from repro.traffic.builders import udp_to

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIO_SCHEMA",
    "run_suite",
    "write_report",
    "format_report",
    "format_kernels_markdown",
    "format_merge_markdown",
    "format_scenario_table",
]

SCHEMA_VERSION = "repro-bench/1"
SCENARIO_SCHEMA = "repro-scenarios/1"

#: (packets per kernel, timing repeats) per profile.
_FULL_PROFILE = (20_000, 3)
_QUICK_PROFILE = (4_000, 2)


def _revision() -> str:
    """Short git revision of *this checkout*, or the ``"unknown"`` sentinel.

    Anchored to the package directory (not the caller's cwd) so running the
    bench from inside an unrelated git repository cannot stamp that repo's
    revision onto the report — history indexing keys on this value and must
    never see an empty or foreign string.
    """
    anchor = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
            cwd=anchor,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _best_of(repeats: int, run: Callable[[], None]) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best if best is not None else 0.0


def _make_contexts(packets: int, dst_values: int, timestamp_gap: float):
    """Parse a UDP workload into packet contexts (shared by both paths)."""
    parser = standard_parser()
    contexts = []
    for index in range(packets):
        # Deterministic value stream without random: a multiplicative walk
        # over the dst domain gives every cell roughly equal mass.
        dst = (index * 2654435761) % dst_values
        packet = udp_to(0x0A000000 | dst)
        ctx = PacketContext(
            parsed=parser.parse(packet),
            meta=StandardMetadata(
                ingress_port=0, timestamp=index * timestamp_gap
            ),
        )
        ctx.user["frame_bytes"] = len(packet)
        contexts.append(ctx)
    return contexts


def _bind(build_spec: Callable[[Stat4Runtime], Any], config: Stat4Config) -> Stat4:
    stat4 = Stat4(config)
    runtime = Stat4Runtime(stat4)
    spec = build_spec(runtime)
    runtime.bind(0, BindingMatch(ether_type=0x0800), spec)
    return stat4


#: name -> (config, spec builder, timestamp gap).
def _kernel_definitions() -> Dict[str, Any]:
    freq_config = Stat4Config(counter_num=2, counter_size=256, binding_stages=1)
    sparse_config = Stat4Config(
        counter_num=2, counter_size=64, binding_stages=1, sparse_dists=(0,)
    )
    return {
        "mean_variance": (
            freq_config,
            lambda rt: rt.frequency_of(0, ExtractSpec.field("ipv4.dst", mask=0xFF)),
            1e-4,
        ),
        "percentile": (
            freq_config,
            lambda rt: rt.frequency_of(
                0, ExtractSpec.field("ipv4.dst", mask=0xFF), percent=50
            ),
            1e-4,
        ),
        "time_series": (
            freq_config,
            lambda rt: rt.rate_over_time(0, interval=0.008, k_sigma=2),
            1e-3,
        ),
        "sparse": (
            sparse_config,
            lambda rt: rt.sparse_frequency_of(0, ExtractSpec.field("ipv4.dst")),
            1e-4,
        ),
    }


def _time_stat4_kernels(
    packets: int, repeats: int, backends: List[str]
) -> List[Dict[str, Any]]:
    results: List[Dict[str, Any]] = []
    for name, (config, build_spec, gap) in _kernel_definitions().items():
        contexts = _make_contexts(packets, dst_values=1024, timestamp_gap=gap)

        def run_scalar():
            stat4 = _bind(build_spec, config)
            for ctx in contexts:
                stat4.process(ctx)

        seconds = _best_of(repeats, run_scalar)
        results.append(
            {
                "name": name,
                "mode": "scalar",
                "backend": None,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
        batch = PacketBatch.from_contexts(contexts)
        for backend in backends:

            def run_batched():
                stat4 = _bind(build_spec, config)
                BatchEngine(stat4, backend=backend).process(batch)

            seconds = _best_of(repeats, run_batched)
            results.append(
                {
                    "name": name,
                    "mode": "batched",
                    "backend": backend,
                    "packets": packets,
                    "seconds": seconds,
                    "pps": packets / seconds if seconds > 0 else 0.0,
                }
            )
    return results


def _parallel_workload():
    """Config + spec builder shared by the parallel ingest kernels."""
    config = Stat4Config(counter_num=2, counter_size=256, binding_stages=1)

    def build_spec(rt):
        return rt.frequency_of(0, ExtractSpec.field("ipv4.dst", mask=0xFF))

    return config, build_spec


def _time_parallel_kernels(
    packets: int,
    repeats: int,
    backends: List[str],
    workers: int,
    pool: str = "thread",
) -> List[Dict[str, Any]]:
    """The ``parallel_mean_variance`` kernel: multi-worker chunked ingest.

    Same dense counting workload as ``mean_variance``, driven through
    :class:`~repro.stat4.parallel.ParallelBatchEngine` with a ``pool``
    executor (``repro bench --pool``) at ``workers`` workers, against the
    scalar per-packet loop.  The ratio uses the repo's standard definition
    (batched pps / scalar pps), so the committed floor gates the whole
    parallel path — chunking, dispatch, and exact merge — never falling
    below it even at ``workers=1``, where the engine delegates to the
    serial fast path.
    """
    from repro.stat4.parallel import ParallelBatchEngine

    config, build_spec = _parallel_workload()
    contexts = _make_contexts(packets, dst_values=1024, timestamp_gap=1e-4)
    results: List[Dict[str, Any]] = []

    def run_scalar():
        stat4 = _bind(build_spec, config)
        for ctx in contexts:
            stat4.process(ctx)

    seconds = _best_of(repeats, run_scalar)
    results.append(
        {
            "name": "parallel_mean_variance",
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    )
    batch = PacketBatch.from_contexts(contexts)
    for backend in backends:

        def run_parallel():
            stat4 = _bind(build_spec, config)
            ParallelBatchEngine(
                stat4, backend=backend, workers=workers, executor=pool
            ).process(batch)

        seconds = _best_of(repeats, run_parallel)
        results.append(
            {
                "name": "parallel_mean_variance",
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
    return results


def _time_shm_parallel_kernels(
    packets: int, repeats: int, backends: List[str], workers: int
) -> List[Dict[str, Any]]:
    """The ``shm_parallel_mean_variance`` kernel: zero-copy process fan-out.

    Always uses the process pool with shared-memory column shipping, so the
    committed floor gates the whole zero-copy path — segment packing,
    descriptor pickling, worker attach, tally, merge — against the scalar
    loop.  At ``workers=1`` the engine delegates to the serial fast path,
    which keeps the one-worker CI leg meaningful (the floor then gates the
    serial batched kernel, exactly like ``parallel_mean_variance``).
    """
    from repro.stat4.parallel import ParallelBatchEngine

    config, build_spec = _parallel_workload()
    contexts = _make_contexts(packets, dst_values=1024, timestamp_gap=1e-4)
    results: List[Dict[str, Any]] = []

    def run_scalar():
        stat4 = _bind(build_spec, config)
        for ctx in contexts:
            stat4.process(ctx)

    seconds = _best_of(repeats, run_scalar)
    results.append(
        {
            "name": "shm_parallel_mean_variance",
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    )
    batch = PacketBatch.from_contexts(contexts)
    for backend in backends:

        def run_shm():
            stat4 = _bind(build_spec, config)
            ParallelBatchEngine(
                stat4,
                backend=backend,
                workers=workers,
                executor="process",
                share_columns=True,
            ).process(batch)

        seconds = _best_of(repeats, run_shm)
        results.append(
            {
                "name": "shm_parallel_mean_variance",
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
    return results


def _merge_workload():
    """Config + spec builder for the merge-engine ingest kernel.

    The all-three shape (tracker + k·σ + percentile alert) over the
    hot-key workload: both alert streams fire once the min-samples gate
    opens, and the day-long cooldown then covers every later chunk, so
    steady state exercises the fold path (telescoped moments + resumable
    tracker walk) while the leading chunk exercises speculative adoption —
    the regime the committed ``merge_parallel`` floor gates.
    """
    config = Stat4Config(counter_num=2, counter_size=256, binding_stages=1)

    def build_spec(rt):
        return rt.frequency_of(
            0,
            ExtractSpec.field("ipv4.dst", mask=0xFF),
            percent=50,
            percentile_alert="median_moved",
            k_sigma=2,
            min_samples=64,
            cooldown=86_400.0,
        )

    return config, build_spec


def _time_merge_parallel_kernels(
    packets: int,
    repeats: int,
    backends: List[str],
    workers: int,
    staleness: str = "exact",
) -> Any:
    """The ``merge_parallel`` kernel: tracked+alerting fan-out with merge.

    The last previously-serial shape, driven through the merge engine on
    the process pool with shared-memory columns (the same transport the
    ``shm_parallel_mean_variance`` floor gates), against the scalar
    per-packet loop.  Returns ``(kernel rows, merge section)``; the
    section records the chunk-resolution mix (adopted / folded / replayed
    / stale) per backend so the replay-fallback rate is a reported number
    rather than prose — CI surfaces it next to the speedup delta.

    This kernel pins its own geometry at four workers: below two the
    engine delegates to the serial exact loop (there is no serial fast
    path for this shape — that is the point of the merge engine), which
    would measure the scalar path against itself; the committed floor
    gates the engine at its deployment geometry, not the CI matrix axis.
    """
    from repro.stat4.parallel import ParallelBatchEngine

    workers = max(workers, 4)
    config, build_spec = _merge_workload()
    contexts = _make_service_contexts(packets)
    # Bounded staleness trades the replay fallback away, so it is a
    # different kernel with its own committed floor — the row name keys
    # the floor, and compare.py skips whichever staleness twin a run
    # did not measure.
    name = "merge_parallel_bounded" if staleness == "bounded" else "merge_parallel"
    results: List[Dict[str, Any]] = []
    section: Dict[str, Any] = {
        "packets": packets,
        "workers": workers,
        "staleness": staleness,
        "backends": {},
    }

    def run_scalar():
        stat4 = _bind(build_spec, config)
        for ctx in contexts:
            stat4.process(ctx)

    seconds = _best_of(repeats, run_scalar)
    results.append(
        {
            "name": name,
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    )
    batch = PacketBatch.from_contexts(contexts)
    for backend in backends:
        holder: Dict[str, Any] = {}

        def run_merge():
            stat4 = _bind(build_spec, config)
            engine = ParallelBatchEngine(
                stat4,
                backend=backend,
                workers=workers,
                executor="process",
                share_columns=True,
                staleness=staleness,
            )
            engine.process(batch)
            holder["engine"] = engine

        # One untimed warm-up: the pinned geometry means this kernel may
        # be the first to spawn its pool size (a workers=1 matrix leg
        # never spawned one), and process spawn plus worker imports are
        # not what the floor gates.
        run_merge()
        seconds = _best_of(repeats, run_merge)
        results.append(
            {
                "name": name,
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
        engine = holder["engine"]
        resolved = (
            engine.merge_adopted_chunks
            + engine.merge_folded_chunks
            + engine.merge_replayed_chunks
            + engine.merge_stale_chunks
        )
        section["backends"][backend] = {
            "adopted_chunks": engine.merge_adopted_chunks,
            "folded_chunks": engine.merge_folded_chunks,
            "replayed_chunks": engine.merge_replayed_chunks,
            "stale_chunks": engine.merge_stale_chunks,
            "fallback_replay_rate": (
                engine.merge_replayed_chunks / resolved if resolved else 0.0
            ),
        }
    return results, section


def _measure_shipping(
    packets: int, backend: str, workers: int
) -> Dict[str, Any]:
    """Per-batch pickled payload of the two process-pool shipping modes.

    One instrumented pass each: shared-memory descriptors vs legacy list
    chunks.  Recorded in the report (and bench history) so the zero-copy
    claim — descriptors instead of data on the pickle wire — stays a
    measured number rather than prose.
    """
    from repro.stat4.parallel import ParallelBatchEngine

    config, build_spec = _parallel_workload()
    contexts = _make_contexts(packets, dst_values=1024, timestamp_gap=1e-4)
    batch = PacketBatch.from_contexts(contexts)
    # At --workers 1 the engine delegates to the serial path and ships
    # nothing; measure at two workers so the payload numbers stay real.
    workers = max(workers, 2)
    row: Dict[str, Any] = {
        "packets": packets,
        "backend": backend,
        "workers": workers,
    }
    for label, share in (("shm", True), ("list", False)):
        engine = ParallelBatchEngine(
            _bind(build_spec, config),
            backend=backend,
            workers=workers,
            executor="process",
            share_columns=share,
            measure_shipping=True,
        )
        engine.process(batch)
        row[f"{label}_bytes_per_batch"] = engine.last_batch_shipped_bytes
        row[f"{label}_tasks_per_batch"] = engine.shipped_tasks
    return row


def _make_service_contexts(packets: int, hot_every: int = 16):
    """The serving workload: the multiplicative walk plus a standing hot key.

    Every ``hot_every``-th packet hits one destination, so the default
    imbalance detector (2σ on the last octet) keeps firing once its
    ``min_samples`` gate opens — the service kernel must price alert
    emission and the alert-log append, not just silent counting.
    """
    parser = standard_parser()
    contexts = []
    for index in range(packets):
        if hot_every and index % hot_every == 0:
            dst = 0x0A000007
        else:
            dst = 0x0A000000 | ((index * 2654435761) % 1024)
        packet = udp_to(dst)
        ctx = PacketContext(
            parsed=parser.parse(packet),
            meta=StandardMetadata(ingress_port=0, timestamp=index * 1e-3),
        )
        ctx.user["frame_bytes"] = len(packet)
        contexts.append(ctx)
    return contexts


def _time_service_kernels(
    packets: int, repeats: int, backends: List[str]
) -> Any:
    """The ``service_throughput`` kernel: the whole serving stack in-process.

    Scalar mode is the per-packet loop over the same workload with the
    same default bindings (rate spike + imbalance).  Batched mode drives
    :class:`~repro.service.server.DetectionService` end to end — bounded
    queue, producer and worker threads, alert log — over pre-built
    batches (``with_http=False``; the HTTP listener idles off-thread in a
    real deployment and would not be in the packet path anyway).  The
    ratio therefore prices everything the server adds on top of the batch
    engine: queue hops, thread handoff, telemetry, alert-log appends.

    Returns ``(kernel rows, service report section)`` — the section
    carries sustained pps and p99 batch/alert latency per backend
    (absolute, machine-dependent, never gated; the gated number is the
    speedup ratio like every other kernel).
    """
    from repro.service import DetectionService, ListSource
    from repro.service.server import default_bindings, default_config

    config = default_config()
    contexts = _make_service_contexts(packets)
    results: List[Dict[str, Any]] = []
    section: Dict[str, Any] = {"packets": packets, "backends": {}}

    def run_scalar():
        stat4 = Stat4(config)
        runtime = Stat4Runtime(stat4)
        for stage, match, spec in default_bindings():
            runtime.bind(stage, match, spec)
        for ctx in contexts:
            stat4.process(ctx)

    seconds = _best_of(repeats, run_scalar)
    results.append(
        {
            "name": "service_throughput",
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    )
    batch_size = 2048
    batches = [
        PacketBatch.from_contexts(contexts[start : start + batch_size])
        for start in range(0, len(contexts), batch_size)
    ]
    for backend in backends:
        holder: Dict[str, Any] = {}

        def run_service():
            service = DetectionService(
                ListSource(batches),
                config=config,
                bindings=default_bindings(),
                engine="scalar",
                backend=backend,
                with_http=False,
            )
            service.start()
            drained = service.wait(300)
            service.close()
            if not drained or service.pipeline.error is not None:
                raise RuntimeError(
                    f"service pipeline failed: {service.pipeline.error!r}"
                )
            holder["service"] = service

        seconds = _best_of(repeats, run_service)
        results.append(
            {
                "name": "service_throughput",
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
        snapshot = holder["service"].metrics.snapshot()
        section["backends"][backend] = {
            "pps": packets / seconds if seconds > 0 else 0.0,
            "alerts": snapshot["alerts"],
            "batch_latency_p99_ms": snapshot["batch_latency_p99_ms"],
            "alert_latency_p99_ms": snapshot["alert_latency_p99_ms"],
            "dropped_batches": snapshot["dropped_batches"],
        }
    return results, section


#: Shard counts the merge-overhead scaling section sweeps.
_CLUSTER_SHARDS = (1, 2, 4, 8)
#: Cluster size the gated sharded kernel runs at.
_CLUSTER_KERNEL_SHARDS = 4


def _cluster_workload(packets: int):
    """The sharded kernel's workload + binding (dense frequency, dst-keyed)."""
    from repro.cluster.sharded import ShardedStat4

    config = Stat4Config(counter_num=2, counter_size=256, binding_stages=1)
    contexts = _make_contexts(packets, dst_values=1024, timestamp_gap=1e-4)
    match = BindingMatch(ether_type=0x0800)

    def build(shards: int, backend: str) -> ShardedStat4:
        cluster = ShardedStat4(shards, config=config, backend=backend)
        spec = cluster.specs.frequency_of(
            0, ExtractSpec.field("ipv4.dst", mask=0xFF)
        )
        cluster.bind(0, match, spec)
        return cluster

    return contexts, build


def _time_cluster_kernels(
    packets: int, repeats: int, backends: List[str]
) -> List[Dict[str, Any]]:
    """The ``sharded_mean_variance`` kernel: routed ingest plus merge.

    Scalar mode routes every packet individually through the owner shard's
    per-packet path; batched mode routes the batch once and runs the
    per-shard counting kernels.  Both end with the exact network-wide merge
    (:meth:`ShardedStat4.merged`), so the ratio prices routing, per-shard
    ingestion, and merging — the whole cluster hot loop.
    """
    contexts, build = _cluster_workload(packets)
    results: List[Dict[str, Any]] = []

    def run_scalar():
        cluster = build(_CLUSTER_KERNEL_SHARDS, "python")
        for ctx in contexts:
            cluster.process(ctx)
        cluster.merged(0)

    seconds = _best_of(repeats, run_scalar)
    results.append(
        {
            "name": "sharded_mean_variance",
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    )
    batch = PacketBatch.from_contexts(contexts)
    for backend in backends:

        def run_batched():
            cluster = build(_CLUSTER_KERNEL_SHARDS, backend)
            cluster.ingest(batch)
            cluster.merged(0)

        seconds = _best_of(repeats, run_batched)
        results.append(
            {
                "name": "sharded_mean_variance",
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
    return results


def _time_cluster_scaling(
    packets: int, repeats: int, backend: str
) -> List[Dict[str, Any]]:
    """Merge-overhead scaling: the same batch at 1→8 shards.

    Separates routed ingestion from the controller-side merge so the
    artifact shows where scale-out costs land as the cluster grows (the
    merge is O(cells·shards) host-side work; ingestion throughput should
    hold roughly flat since the same packets run the same kernels, just
    partitioned).
    """
    contexts, build = _cluster_workload(packets)
    batch = PacketBatch.from_contexts(contexts)
    rows: List[Dict[str, Any]] = []
    for shards in _CLUSTER_SHARDS:
        cluster = build(shards, backend)
        holder = {}

        def run_ingest():
            fresh = build(shards, backend)
            fresh.ingest(batch)
            holder["cluster"] = fresh

        ingest_seconds = _best_of(repeats, run_ingest)
        ingested = holder["cluster"]

        def run_merge():
            ingested.merged(0)

        merge_seconds = _best_of(repeats, run_merge)
        rows.append(
            {
                "shards": shards,
                "backend": backend,
                "packets": packets,
                "ingest_seconds": ingest_seconds,
                "ingest_pps": packets / ingest_seconds if ingest_seconds > 0 else 0.0,
                "merge_seconds": merge_seconds,
            }
        )
    return rows


def _time_ewma(packets: int, repeats: int, backends: List[str]) -> List[Dict[str, Any]]:
    samples = [(index * 2654435761) % 97 for index in range(packets)]

    def run_scalar():
        detector = EwmaDetector()
        for sample in samples:
            detector.update(sample)

    seconds = _best_of(repeats, run_scalar)
    results = [
        {
            "name": "ewma",
            "mode": "scalar",
            "backend": None,
            "packets": packets,
            "seconds": seconds,
            "pps": packets / seconds if seconds > 0 else 0.0,
        }
    ]
    for backend in backends:

        def run_batched():
            EwmaDetector().update_many(samples)

        seconds = _best_of(repeats, run_batched)
        results.append(
            {
                "name": "ewma",
                "mode": "batched",
                "backend": backend,
                "packets": packets,
                "seconds": seconds,
                "pps": packets / seconds if seconds > 0 else 0.0,
            }
        )
    return results


def _time_experiments(quick: bool) -> List[Dict[str, Any]]:
    from repro.experiments.table2_sqrt import run_table2
    from repro.experiments.validation import run_validation, run_validation_batched

    experiments: List[Dict[str, Any]] = []

    def timed(name: str, run: Callable[[], Any]) -> None:
        start = time.perf_counter()
        run()
        experiments.append(
            {"name": name, "seconds": time.perf_counter() - start}
        )

    timed("table2_sqrt", run_table2)
    packets = 2_000 if quick else 10_000
    timed(f"validation_{packets}", lambda: run_validation(packets=packets))
    timed(
        f"validation_batched_{packets}",
        lambda: run_validation_batched(packets=packets),
    )
    if not quick:
        from repro.experiments.table3_median import DEFAULT_SIZES, run_table3

        sizes = [(n, label) for n, label in DEFAULT_SIZES if n <= 4096]
        timed("table3_median_4096", lambda: run_table3(sizes=sizes, repetitions=3))
    return experiments


def _speedups(kernels: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    scalar_pps: Dict[str, float] = {}
    for row in kernels:
        if row["mode"] == "scalar":
            scalar_pps[row["name"]] = row["pps"]
    speedups: Dict[str, Dict[str, float]] = {}
    for row in kernels:
        if row["mode"] != "batched":
            continue
        base = scalar_pps.get(row["name"], 0.0)
        if base <= 0 or row["pps"] <= 0:
            continue
        speedups.setdefault(row["name"], {})[row["backend"]] = row["pps"] / base
    return speedups


def _run_scenarios(
    backend: str, workers: int, scenario_engine: str
) -> Dict[str, Any]:
    """The adversarial quality leaderboard (``repro bench --scenarios``).

    Scenario sizes are fixed by the catalog — never scaled by ``--quick``
    — so every row is bit-deterministic and the committed floors in
    ``benchmarks/scenario_baseline.json`` can be exact.
    """
    from repro.scenarios import ENGINES, run_scenario_suite

    engines = list(ENGINES) if scenario_engine == "both" else [scenario_engine]
    rows: List[Dict[str, Any]] = []
    for engine in engines:
        rows.extend(
            run_scenario_suite(engine=engine, backend=backend, workers=workers)
        )
    return {
        "schema": SCENARIO_SCHEMA,
        "engines": engines,
        "workers": workers,
        "rows": rows,
    }


def run_suite(
    quick: bool = False,
    backend: str = "auto",
    skip_experiments: bool = False,
    packets: Optional[int] = None,
    repeats: Optional[int] = None,
    workers: int = 4,
    pool: str = "thread",
    scenarios: bool = False,
    scenarios_only: bool = False,
    scenario_engine: str = "scalar",
    staleness: str = "exact",
) -> Dict[str, Any]:
    """Run the full suite; returns the report as a plain dict.

    Args:
        quick: the CI profile — fewer packets, fewer repeats, cheaper
            experiment set.
        backend: ``"auto"`` benchmarks every available backend (numpy,
            compiled, and python when numpy is importable); a specific
            backend name restricts to that one.
        skip_experiments: kernels only (used by unit tests).
        packets / repeats: override the profile (tests use tiny values).
        workers: worker count for the parallel ingest kernels
            (``repro bench --workers``); recorded in the report.
        pool: executor for the ``parallel_mean_variance`` kernel
            (``repro bench --pool``, ``"thread"`` or ``"process"``);
            ``shm_parallel_mean_variance`` always runs on the process
            pool, so a thread-pool run still measures the zero-copy path.
        scenarios: also run the labeled adversarial scenario suite and
            attach its quality leaderboard under ``report["scenarios"]``.
        scenarios_only: skip the perf kernels entirely — the scenario CI
            job wants quality rows without paying for timing runs.
        scenario_engine: replay path for the scenario rows — ``"scalar"``,
            ``"parallel"`` (process pool + shared-memory columns),
            ``"bounded"`` (merge engine with ``staleness="bounded"``), or
            ``"both"`` (scalar + parallel).
        staleness: merge-engine reconciliation for the ``merge_parallel``
            kernel (``repro bench --staleness``) — ``"exact"`` keeps the
            replay fallback, ``"bounded"`` skips it; recorded in the
            report's ``merge`` section.
    """
    if pool not in ("thread", "process"):
        raise ValueError(f"unknown pool {pool!r}; pick 'thread' or 'process'")
    if staleness not in ("exact", "bounded"):
        raise ValueError(
            f"unknown staleness {staleness!r}; pick 'exact' or 'bounded'"
        )
    if scenario_engine not in ("scalar", "parallel", "bounded", "both"):
        raise ValueError(
            f"unknown scenario engine {scenario_engine!r}; "
            "pick 'scalar', 'parallel', 'bounded' or 'both'"
        )
    run_scenario_rows = scenarios or scenarios_only
    profile_packets, profile_repeats = _QUICK_PROFILE if quick else _FULL_PROFILE
    n = packets if packets is not None else profile_packets
    reps = repeats if repeats is not None else profile_repeats
    if backend == "auto":
        # numpy first: backends[0] drives the cluster-scaling, shipping,
        # and scenario sections, which predate the compiled tier.
        backends = ["numpy", "compiled", "python"] if HAS_NUMPY else ["python"]
    else:
        backends = [resolve_backend(backend)]
    if scenarios_only:
        kernels: List[Dict[str, Any]] = []
        service_section: Optional[Dict[str, Any]] = None
        merge_section: Optional[Dict[str, Any]] = None
    else:
        kernels = _time_stat4_kernels(n, reps, backends)
        kernels.extend(_time_ewma(n, reps, backends))
        kernels.extend(_time_cluster_kernels(n, reps, backends))
        kernels.extend(_time_parallel_kernels(n, reps, backends, workers, pool))
        kernels.extend(_time_shm_parallel_kernels(n, reps, backends, workers))
        merge_rows, merge_section = _time_merge_parallel_kernels(
            n, reps, backends, workers, staleness
        )
        kernels.extend(merge_rows)
        service_rows, service_section = _time_service_kernels(n, reps, backends)
        kernels.extend(service_rows)
    # Absolute per-packet cost per row: the speedup ratios re-anchor
    # whenever the scalar baseline moves, so tier-vs-tier comparisons
    # (numpy vs compiled) need a machine-local absolute column too.
    for row in kernels:
        row["ns_per_packet"] = 1e9 / row["pps"] if row["pps"] > 0 else None
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "revision": _revision(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "quick": quick,
        "workers": workers,
        "pool": pool,
        "backends": backends,
        "kernels": kernels,
        "experiments": (
            []
            if skip_experiments or scenarios_only
            else _time_experiments(quick)
        ),
        "cluster": [] if scenarios_only else _time_cluster_scaling(n, reps, backends[0]),
        "shipping": None if scenarios_only else _measure_shipping(n, backends[0], workers),
        "service": service_section,
        "merge": merge_section,
        "speedups": _speedups(kernels),
    }
    if run_scenario_rows:
        report["scenarios"] = _run_scenarios(
            backends[0], workers, scenario_engine
        )
    return report


def _numpy_version() -> Optional[str]:
    if not HAS_NUMPY:
        return None
    import numpy

    return numpy.__version__


def write_report(report: Dict[str, Any], output: Optional[str] = None) -> str:
    """Write the artifact; returns the path written.

    Default filename is ``BENCH_<rev>.json`` in the working directory.
    """
    path = output if output is not None else f"BENCH_{report['revision']}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable kernel table plus experiment timings."""
    lines = [
        f"repro bench — revision {report['revision']} "
        f"(python {report['python']}, "
        f"numpy {report['numpy'] or 'unavailable'}, "
        f"{'quick' if report['quick'] else 'full'} profile)",
        "",
        f"{'kernel':<22} {'mode':<8} {'backend':<8} {'pps':>12} "
        f"{'ns/pkt':>9} {'speedup':>8}",
    ]
    speedups = report.get("speedups", {})
    for row in report["kernels"]:
        backend = row["backend"] or "-"
        ratio = ""
        if row["mode"] == "batched":
            value = speedups.get(row["name"], {}).get(row["backend"])
            if value is not None:
                ratio = f"{value:.1f}x"
        ns = row.get("ns_per_packet")
        ns_text = f"{ns:,.0f}" if ns is not None else "-"
        lines.append(
            f"{row['name']:<22} {row['mode']:<8} {backend:<8} "
            f"{row['pps']:>12,.0f} {ns_text:>9} {ratio:>8}"
        )
    shipping = report.get("shipping")
    if shipping:
        lines.append("")
        lines.append(
            "process-pool shipping (pickled payload per batch, "
            f"{shipping['packets']:,} packets, {shipping['workers']} workers):"
        )
        lines.append(
            f"  shm descriptors: {shipping['shm_bytes_per_batch']:,} B "
            f"({shipping['shm_tasks_per_batch']} tasks)   "
            f"list chunks: {shipping['list_bytes_per_batch']:,} B "
            f"({shipping['list_tasks_per_batch']} tasks)"
        )
    merge = report.get("merge")
    if merge and merge.get("backends"):
        lines.append("")
        lines.append(
            f"merge-engine chunk resolution ({merge['packets']:,} packets, "
            f"{merge['workers']} workers, staleness={merge['staleness']}):"
        )
        lines.append(
            f"  {'backend':<8} {'adopted':>8} {'folded':>7} {'replayed':>9} "
            f"{'stale':>6} {'fallback':>9}"
        )
        for backend, row in merge["backends"].items():
            lines.append(
                f"  {backend:<8} {row['adopted_chunks']:>8} "
                f"{row['folded_chunks']:>7} {row['replayed_chunks']:>9} "
                f"{row['stale_chunks']:>6} "
                f"{row['fallback_replay_rate'] * 100:>8.1f}%"
            )
    service = report.get("service")
    if service and service.get("backends"):
        lines.append("")
        lines.append(
            f"service throughput ({service['packets']:,} packets through "
            "the bounded-queue serving stack):"
        )
        lines.append(
            f"  {'backend':<8} {'pps':>12} {'alerts':>7} "
            f"{'batch p99':>10} {'alert p99':>10} {'dropped':>8}"
        )
        for backend, row in service["backends"].items():
            batch_p99 = (
                "-"
                if row["batch_latency_p99_ms"] is None
                else f"{row['batch_latency_p99_ms']:.2f}ms"
            )
            alert_p99 = (
                "-"
                if row["alert_latency_p99_ms"] is None
                else f"{row['alert_latency_p99_ms']:.2f}ms"
            )
            lines.append(
                f"  {backend:<8} {row['pps']:>12,.0f} {row['alerts']:>7} "
                f"{batch_p99:>10} {alert_p99:>10} {row['dropped_batches']:>8}"
            )
    if report.get("cluster"):
        lines.append("")
        lines.append("cluster scaling (routed ingest + merge):")
        lines.append(
            f"  {'shards':>6} {'backend':<8} {'ingest pps':>12} {'merge':>10}"
        )
        for row in report["cluster"]:
            lines.append(
                f"  {row['shards']:>6} {row['backend']:<8} "
                f"{row['ingest_pps']:>12,.0f} {row['merge_seconds'] * 1e3:>8.2f}ms"
            )
    if report.get("experiments"):
        lines.append("")
        lines.append("experiments:")
        for row in report["experiments"]:
            lines.append(f"  {row['name']:<28} {row['seconds']:.2f}s")
    scenario_section = format_scenario_table(report)
    if scenario_section:
        lines.append("")
        lines.append(scenario_section)
    return "\n".join(lines)


def format_merge_markdown(report: Dict[str, Any]) -> str:
    """Markdown twin of the merge-resolution table, or ``""`` without one.

    CI appends this to ``GITHUB_STEP_SUMMARY`` so the fallback-replay
    rate — the health metric of the merge engine's speculation — shows
    on the run page next to the floor verdicts.  A creeping rate means
    chunks keep missing the fixpoint/fold fast paths and the committed
    ``merge_parallel`` floor is living on borrowed time.
    """
    merge = report.get("merge")
    if not merge or not merge.get("backends"):
        return ""
    lines = [
        "### Merge-engine chunk resolution",
        "",
        f"{merge['packets']:,} packets, {merge['workers']} workers, "
        f"staleness={merge['staleness']}",
        "",
        "| backend | adopted | folded | replayed | stale | fallback replay |",
        "| --- | ---: | ---: | ---: | ---: | ---: |",
    ]
    for backend, row in merge["backends"].items():
        lines.append(
            f"| {backend} | {row['adopted_chunks']} | {row['folded_chunks']} "
            f"| {row['replayed_chunks']} | {row['stale_chunks']} "
            f"| {row['fallback_replay_rate'] * 100:.1f}% |"
        )
    lines.append("")
    return "\n".join(lines)


def format_kernels_markdown(report: Dict[str, Any]) -> str:
    """Markdown twin of the per-kernel table, or ``""`` without kernels.

    CI appends this to ``GITHUB_STEP_SUMMARY`` next to the floor
    verdicts: the speedup ratios re-anchor whenever the scalar baseline
    moves, so the absolute ns/packet column is what makes tier-vs-tier
    comparisons (numpy vs compiled) readable across revisions of the
    same runner.
    """
    kernels = report.get("kernels")
    if not kernels:
        return ""
    speedups = report.get("speedups", {})
    lines = [
        "### Kernel timings",
        "",
        f"revision {report['revision']}, "
        f"{'quick' if report.get('quick') else 'full'} profile, "
        f"backends: {', '.join(report.get('backends') or [])}",
        "",
        "| kernel | mode | backend | pps | ns/pkt | speedup |",
        "| --- | --- | --- | ---: | ---: | ---: |",
    ]
    for row in kernels:
        ratio = ""
        if row["mode"] == "batched":
            value = speedups.get(row["name"], {}).get(row["backend"])
            if value is not None:
                ratio = f"{value:.1f}x"
        ns = row.get("ns_per_packet")
        ns_text = f"{ns:,.0f}" if ns is not None else "-"
        lines.append(
            f"| {row['name']} | {row['mode']} | {row['backend'] or '-'} "
            f"| {row['pps']:,.0f} | {ns_text} | {ratio} |"
        )
    lines.append("")
    return "\n".join(lines)


def format_scenario_table(report: Dict[str, Any]) -> str:
    """The quality-leaderboard table, or ``""`` when no scenarios ran."""
    section = report.get("scenarios")
    if not section or not section.get("rows"):
        return ""
    lines = [
        f"scenario quality leaderboard ({section['schema']}):",
        f"  {'scenario':<18} {'engine':<9} {'prec':>6} {'recall':>6} "
        f"{'f1':>6} {'latency':>8} {'fp':>4} {'victim':>7}",
    ]
    for row in section["rows"]:
        latency = (
            "-"
            if row["latency_intervals"] is None
            else f"{row['latency_intervals']:.1f}iv"
        )
        victim = "-" if row["victim_identified"] is None else str(row["victim_identified"]).lower()
        lines.append(
            f"  {row['scenario']:<18} {row['engine']:<9} "
            f"{row['precision']:>6.3f} {row['recall']:>6.3f} "
            f"{row['f1']:>6.3f} {latency:>8} "
            f"{row['false_positive_intervals']:>4} {victim:>7}"
        )
    return "\n".join(lines)
