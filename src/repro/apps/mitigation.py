# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""Local in-switch reaction: detect a spike, then rate-limit it — no controller.

The paper's Figure-1c architecture lets switches "locally react to
anomalies (e.g., rate limiting some flows or rerouting packets) and notify
the controller for longer-term reaction".  This application composes the
case-study monitor with a token-bucket policer:

- Stat4 tracks packets-per-interval for the protected aggregate and runs
  the mean + 2σ check;
- when the check fires, the ingress arms a pre-configured policer (a
  register flag; the rate is installed by the operator at deployment like
  any meter configuration) *in the same pipeline* — reaction latency is one
  interval, not a control-channel round trip;
- arming **freezes the pre-spike threshold** (``Xsum + k·σ`` at alert
  time).  The rolling window keeps absorbing the spike and would normalize
  it within one window length — the adaptive check alone cannot *hold* a
  mitigation — so while armed, each completed interval is compared against
  the frozen threshold (register reads and one constant multiply);
- the policer disarms once no interval has exceeded the frozen threshold
  for ``hold`` seconds.

The digest is still pushed, so the controller can drill down in parallel —
exactly the division of labor the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p4 import headers as hdr
from repro.p4.meter import TokenBucket
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["MitigationParams", "build_mitigating_app"]


@dataclass(frozen=True)
class MitigationParams:
    """Tunables of the self-defending monitor.

    Attributes:
        prefix: the protected aggregate.
        prefix_len: its length.
        interval: monitoring interval (seconds).
        window: circular window length (intervals).
        limit_pps: policer rate armed during an anomaly — the operator sets
            it to a generous multiple of the expected load.
        limit_burst: policer depth in packets.
        hold: seconds the policer stays armed after the last alert.
        k_sigma / margin / min_samples / cooldown: the detection knobs.
    """

    prefix: str = "10.0.0.0"
    prefix_len: int = 8
    interval: float = 0.01
    window: int = 50
    limit_pps: int = 2000
    limit_burst: int = 64
    hold: float = 0.25
    k_sigma: int = 2
    margin: int = 3
    min_samples: int = 5
    cooldown: float = 0.05


def build_mitigating_app(params: MitigationParams = MitigationParams()) -> AppBundle:
    """Build the detect-and-rate-limit program (forwarding out port 1)."""
    config = Stat4Config(
        counter_num=1,
        counter_size=max(params.window, 64),
        binding_stages=1,
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)
    spec = runtime.rate_over_time(
        dist=0,
        interval=params.interval,
        k_sigma=params.k_sigma,
        alert="traffic_spike",
        min_samples=params.min_samples,
        margin=params.margin,
        cooldown=params.cooldown,
        window=params.window,
    )
    handle, _ = runtime.bind(
        0, BindingMatch.ipv4_prefix(params.prefix, params.prefix_len), spec
    )
    policer = TokenBucket(
        params.limit_pps, params.limit_burst, registers=registers, name="mitigation"
    )
    # [0] = armed flag, [1] = last-exceeded timestamp (us),
    # [2] = frozen scaled threshold (Xsum + k*sigma + N*margin at arming),
    # [3] = frozen N (the threshold's scale).
    armed = registers.declare("mitigation_armed", 64, 4)
    prefix_value = hdr.ip_to_int(params.prefix)
    prefix_shift = 32 - params.prefix_len
    window = params.window if params.window > 0 else config.counter_size

    def in_aggregate(ctx: PacketContext) -> bool:
        if not ctx.parsed.has("ipv4"):
            return False
        dst = ctx.parsed["ipv4"].get("dst")
        return (dst >> prefix_shift) == (prefix_value >> prefix_shift)

    def last_completed_count() -> int:
        index = stat4.reg_window_index.read(0)
        previous = index - 1 if index > 0 else window - 1
        return stat4.counters.read(config.cell_index(0, previous))

    def ingress(ctx: PacketContext) -> None:
        now = ctx.meta.timestamp
        stat4.process(ctx)
        now_us = int(now * 1_000_000)
        spike = next((d for d in ctx.digests if d.name == "traffic_spike"), None)
        if spike is not None and armed.read(0) == 0:
            # Arm the local policer and freeze the pre-spike threshold the
            # alert was judged against (the rolling window will absorb the
            # spike; the frozen threshold is what "back to normal" means).
            armed.write(0, 1)
            armed.write(1, now_us)
            armed.write(2, spike.fields["xsum"] + params.k_sigma * spike.fields["stddev_nx"])
            armed.write(3, spike.fields["count"])
        elif armed.read(0) == 1:
            # Does the most recently completed interval still exceed the
            # frozen (pre-spike) threshold?
            frozen_n = armed.read(3)
            if frozen_n * last_completed_count() > armed.read(2):
                armed.write(1, now_us)
            elif now_us - armed.read(1) > int(params.hold * 1_000_000):
                armed.write(0, 0)
        if armed.read(0) == 1 and in_aggregate(ctx):
            if not policer.allow(now):
                ctx.drop()
                return
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_mitigation",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    bundle = AppBundle(
        program=program, stat4=stat4, runtime=runtime, handles={"monitor": handle}
    )
    bundle.policer = policer  # exposed for tests/experiments
    bundle.armed_register = armed
    return bundle
