# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""Remote-failure detection (Table 1: "remote failure — stalled flows over time").

The paper's first use case — and the one its own citation [12] (Blink)
pioneered: when a remote link or path fails, affected TCP flows stop making
progress and *retransmit*; a burst of retransmissions across many flows is
the data-plane-visible signature of the failure.

The switch detects retransmissions statelessly-ish with a hashed
last-sequence table (the Sec. 5 sparse machinery reused): for each TCP
segment it looks up the flow's slot; seeing the *same* sequence number
again marks a retransmission.  Stat4 then tracks **retransmissions per
interval** in a circular window and raises ``remote_failure`` when an
interval is a mean + kσ outlier — "the order of magnitude of stalled
flows … likely changes when a failure occurs" (Sec. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["FailureParams", "build_failure_app"]

# Multiply-shift seeds for the flow and sequence hashing.
_FLOW_SEED = 0x9E3779B97F4A7C15
_SLOT_SEED = 0xC2B2AE3D27D4EB4F


@dataclass(frozen=True)
class FailureParams:
    """Tunables of the failure monitor.

    Attributes:
        interval: retransmission-count interval in seconds.
        window: circular window length in intervals.
        flow_slots: hashed flow-state slots (power of two).
        k_sigma: outlier check k.
        margin: flat margin in retransmissions per interval.
        min_samples: intervals required before checks fire.
        cooldown: alert cooldown in seconds.
    """

    interval: float = 0.05
    window: int = 40
    flow_slots: int = 1024
    k_sigma: int = 2
    margin: int = 3
    min_samples: int = 5
    cooldown: float = 0.25


def build_failure_app(params: FailureParams = FailureParams()) -> AppBundle:
    """Build the stalled-flows monitor (pass-through forwarding)."""
    config = Stat4Config(
        counter_num=1,
        counter_size=max(params.window, 64),
        binding_stages=1,
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)
    # The time series counts *retransmissions*, not packets: its extractor
    # reads the 0/1 flag the retransmission detector computes into user
    # metadata earlier in the ingress (P4 passes derived values between
    # pipeline stages through metadata exactly like this).
    from repro.stat4.distributions import DistributionKind, TrackSpec

    spec = TrackSpec(
        dist=0,
        kind=DistributionKind.TIME_SERIES,
        extract=ExtractSpec.metadata("retransmission"),
        interval=params.interval,
        k_sigma=params.k_sigma,
        alert="remote_failure",
        min_samples=params.min_samples,
        margin=params.margin,
        cooldown=params.cooldown,
        window=params.window,
    )
    handle, _ = runtime.bind(
        0,
        BindingMatch(ether_type=0x0800, protocol=6),
        spec,
    )

    # Hashed per-flow last-sequence slots: [flow_tag(32) | seq(32)].
    flow_state = registers.declare("failure_flow_seq", 64, params.flow_slots)
    slots_mask = params.flow_slots - 1
    counters = {"retransmissions": 0, "new_flows": 0, "collisions": 0}

    def flow_slot(src: int, dst: int, sport: int, dport: int) -> int:
        key = (((src << 32) | dst) * _FLOW_SEED + ((sport << 16) | dport)) & (
            (1 << 64) - 1
        )
        return (key >> 20) & slots_mask

    def flow_tag(src: int, dst: int, sport: int, dport: int) -> int:
        key = (((dst << 32) | src) * _SLOT_SEED + ((dport << 16) | sport)) & (
            (1 << 64) - 1
        )
        return (key >> 32) & 0xFFFFFFFF

    def ingress(ctx: PacketContext) -> None:
        ctx.user["retransmission"] = 0
        if ctx.parsed.has("tcp") and ctx.parsed.has("ipv4"):
            ipv4 = ctx.parsed["ipv4"]
            tcp = ctx.parsed["tcp"]
            slot = flow_slot(
                ipv4.get("src"), ipv4.get("dst"),
                tcp.get("src_port"), tcp.get("dst_port"),
            )
            tag = flow_tag(
                ipv4.get("src"), ipv4.get("dst"),
                tcp.get("src_port"), tcp.get("dst_port"),
            )
            seq = tcp.get("seq_no")
            stored = flow_state.read(slot)
            stored_tag = stored >> 32
            stored_seq = stored & 0xFFFFFFFF
            if stored_tag == tag and stored_seq == seq and stored != 0:
                ctx.user["retransmission"] = 1
                counters["retransmissions"] += 1
            else:
                if stored == 0:
                    counters["new_flows"] += 1
                elif stored_tag != tag:
                    counters["collisions"] += 1
                flow_state.write(slot, (tag << 32) | seq)
        stat4.process(ctx)
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_failure",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    bundle = AppBundle(
        program=program, stat4=stat4, runtime=runtime, handles={"failure": handle}
    )
    bundle.counters = counters
    return bundle
