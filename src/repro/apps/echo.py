"""The Sec. 3 validation application (Figure 5).

"For each packet it receives, this application instructs the switch to
report the tracked statistical measures in a reply packet.  […] The host
sends Ethernet frames whose payload only contains a randomly generated
integer between −255 and 255.  The switch tracks the occurrences of the
integers in the received frames" — i.e. a frequency distribution over the
(offset) value domain — "and replies with a frame including the updated
statistical measures of the distribution."

The build function returns a pipeline program whose ingress feeds the echo
value into Stat4, copies N / Xsum / Xsumsq / σ²_NX / σ_NX and the tracked
median out of the registers into the reply header, swaps the Ethernet
addresses, and bounces the frame out of its ingress port.
"""

from __future__ import annotations

from repro.p4 import headers as hdr
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["ECHO_DOMAIN", "build_echo_app"]

#: Echo values live in [-255, 255], offset by 256 on the wire: 512 cells.
ECHO_DOMAIN = 512


def build_echo_app(track_median: bool = True) -> AppBundle:
    """Build the echo validation application.

    Args:
        track_median: also run the online median tracker over the value
            distribution (reported in the reply's ``median`` field).
    """
    config = Stat4Config(
        counter_num=1, counter_size=ECHO_DOMAIN, binding_stages=1
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)
    spec = runtime.frequency_of(
        dist=0,
        extract=ExtractSpec.field("stat4_echo.value"),
        percent=50 if track_median else None,
    )
    handle, _ = runtime.bind(0, BindingMatch.echo_packets(), spec)

    def ingress(ctx: PacketContext) -> None:
        if not ctx.parsed.has("stat4_echo"):
            ctx.drop()
            return
        echo = ctx.parsed["stat4_echo"]
        if echo.get("op") != hdr.ECHO_OP_REQUEST:
            # A reflected reply must not feed the distribution again.
            ctx.drop()
            return
        stat4.process(ctx)
        measures = stat4.read_measures(0)
        echo["op"] = hdr.ECHO_OP_REPLY
        echo["n"] = measures["n"]
        echo["xsum"] = measures["xsum"]
        echo["xsumsq"] = measures["xsumsq"]
        echo["variance"] = measures["variance"]
        echo["stddev"] = measures["stddev"]
        echo["median"] = measures["percentile_pos"]
        ethernet = ctx.parsed["ethernet"]
        dst, src = ethernet.get("dst"), ethernet.get("src")
        ethernet["dst"] = src
        ethernet["src"] = dst
        ctx.meta.egress_spec = ctx.meta.ingress_port

    program = PipelineProgram(
        name="stat4_echo",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    return AppBundle(
        program=program, stat4=stat4, runtime=runtime, handles={"echo": handle}
    )
