"""Shared plumbing for the bundled applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.p4.pipeline import PipelineProgram
from repro.stat4.library import Stat4
from repro.stat4.runtime import BindingHandle, Stat4Runtime

__all__ = ["AppBundle"]


@dataclass
class AppBundle:
    """Everything an application build function hands back.

    Attributes:
        program: the deployable pipeline program.
        stat4: the library instance wired into the program's ingress.
        runtime: a local control-plane handle (tests and standalone runs
            tune bindings through it; networked runs use a controller).
        handles: named binding handles for the pre-installed rules.
    """

    program: PipelineProgram
    stat4: Stat4
    runtime: Stat4Runtime
    handles: Dict[str, BindingHandle] = field(default_factory=dict)
