# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""The Sec. 4 case-study application: spike detection with drill-down.

The switch provides connectivity for a /8 aggregate (forwarding by LPM) and
"runs statistical checks on the crossing traffic": initially just packets
per time interval for the whole /8, checked against mean + 2σ over a
circular window of intervals.  Binding stage 1 is left empty for the
controller — on a spike alert it installs the per-/24 tracking rule there,
then refines it to per-destination (see
:class:`repro.controller.drilldown.DrillDownController`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.p4 import headers as hdr
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.p4.tables import ActionSpec, Table, lpm_key
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["CaseStudyParams", "build_case_study_app"]


@dataclass(frozen=True)
class CaseStudyParams:
    """Tunables of the case-study deployment (paper defaults).

    Attributes:
        base_prefix: the monitored aggregate ("10.0.0.0"/8).
        interval: time-interval length in seconds (8 ms default; the sweep
            goes up to 2 s).
        window: circular-buffer length in intervals (default 100; the sweep
            goes down to 10).
        k_sigma: the spike check's k (2, per the paper).
        margin: flat margin in packets-per-interval on top of k·σ, set by
            the operator from the expected load (suppresses the 2σ rule's
            false fires on ultra-low-variance baselines).
        min_samples: intervals required before checks may fire.
        cooldown: per-binding alert cooldown in seconds.
        counter_size: STAT_COUNTER_SIZE for the deployment (must cover both
            the window and the drill-down octet domain).
    """

    base_prefix: str = "10.0.0.0"
    base_len: int = 8
    interval: float = 0.008
    window: int = 100
    k_sigma: int = 2
    margin: int = 3
    min_samples: int = 5
    cooldown: float = 0.1
    counter_size: int = 256


def build_case_study_app(
    params: CaseStudyParams = CaseStudyParams(),
    routes: Dict[int, Sequence[str]] = None,
) -> AppBundle:
    """Build the case-study program.

    Args:
        params: deployment tunables.
        routes: ``port -> ["10.0.1.0/24-style prefixes"]`` forwarding map;
            defaults to sending everything in the base prefix to port 1.
    """
    if params.window > params.counter_size:
        raise ValueError("window cannot exceed STAT_COUNTER_SIZE")
    config = Stat4Config(
        counter_num=2,
        counter_size=params.counter_size,
        binding_stages=2,
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)

    monitor_spec = runtime.rate_over_time(
        dist=0,
        interval=params.interval,
        k_sigma=params.k_sigma,
        alert="traffic_spike",
        min_samples=params.min_samples,
        margin=params.margin,
        cooldown=params.cooldown,
        window=params.window,
    )
    monitor_handle, _ = runtime.bind(
        0,
        BindingMatch.ipv4_prefix(params.base_prefix, params.base_len),
        monitor_spec,
    )

    route_table = Table(
        name="ipv4_routes",
        keys=[lpm_key("dst", 32)],
        actions=[ActionSpec("fwd", ("port",)), ActionSpec("drop")],
        max_size=256,
    )
    if routes is None:
        routes = {1: [f"{params.base_prefix}/{params.base_len}"]}
    for port, prefixes in routes.items():
        for prefix in prefixes:
            address, _, length = prefix.partition("/")
            route_table.add_entry(
                [(hdr.ip_to_int(address), int(length))], "fwd", {"port": port}
            )

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        if not ctx.parsed.has("ipv4"):
            ctx.drop()
            return
        entry = route_table.lookup([ctx.parsed["ipv4"].get("dst")])
        if entry is None or entry.action != "fwd":
            ctx.drop()
            return
        ctx.meta.egress_spec = entry.params["port"]

    program = PipelineProgram(
        name="stat4_case_study",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    program.add_table(route_table)
    return AppBundle(
        program=program,
        stat4=stat4,
        runtime=runtime,
        handles={"monitor": monitor_handle},
    )
