# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""SYN-flood monitoring (Table 1: "SYN flood — protect servers").

Two bindings over TCP SYN packets only:

- stage 0 tracks the *SYN rate over time* in a circular window and raises
  ``syn_flood`` when an interval's SYN count is an outlier;
- stage 1 tracks *SYNs per destination* (host octet) and raises
  ``syn_target`` naming the flooded server — so a single alert identifies
  both the attack and its victim without controller round trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["SynFloodParams", "build_syn_flood_app"]


@dataclass(frozen=True)
class SynFloodParams:
    """Tunables for the SYN-flood monitor.

    Attributes:
        server_prefix: destination prefix hosting the protected servers.
        prefix_len: its length.
        interval: SYN-rate interval in seconds.
        window: circular window length in intervals.
        k_sigma: outlier check k for both bindings.
        margin: flat margin in SYNs.
        cooldown: alert cooldown in seconds.
    """

    server_prefix: str = "10.0.0.0"
    prefix_len: int = 24
    interval: float = 0.1
    window: int = 50
    k_sigma: int = 2
    margin: int = 3
    cooldown: float = 0.5


def build_syn_flood_app(params: SynFloodParams = SynFloodParams()) -> AppBundle:
    """Build the SYN-flood monitoring program (forwarding: pass-through)."""
    config = Stat4Config(counter_num=2, counter_size=256, binding_stages=2)
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)

    syn_match = BindingMatch.syn_packets(params.server_prefix, params.prefix_len)
    rate_spec = runtime.rate_over_time(
        dist=0,
        interval=params.interval,
        k_sigma=params.k_sigma,
        alert="syn_flood",
        min_samples=4,
        margin=params.margin,
        cooldown=params.cooldown,
        window=params.window,
    )
    rate_handle, _ = runtime.bind(0, syn_match, rate_spec)

    target_spec = runtime.frequency_of(
        dist=1,
        extract=ExtractSpec.field("ipv4.dst", mask=0xFF),
        k_sigma=params.k_sigma,
        alert="syn_target",
        min_samples=2,
        margin=params.margin,
        cooldown=params.cooldown,
    )
    target_handle, _ = runtime.bind(1, syn_match, target_spec)

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        # Monitoring tap: forward everything out of port 1.
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_syn_flood",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    return AppBundle(
        program=program,
        stat4=stat4,
        runtime=runtime,
        handles={"syn_rate": rate_handle, "syn_target": target_handle},
    )
