# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""Load-balance monitoring (Table 1: "load balancing — avoid imbalances").

Tracks the traffic share of each server behind a virtual IP prefix as a
frequency distribution over the host octet, raising ``server_overload``
when one server's share becomes an outlier.  Optionally also tracks the
median share — a drifting median is an early signal that the balancing hash
has gone stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime

from repro.apps.common import AppBundle

__all__ = ["LoadBalanceParams", "build_load_balance_app"]


@dataclass(frozen=True)
class LoadBalanceParams:
    """Tunables for the load-balance monitor.

    Attributes:
        pool_prefix: the server pool's prefix (servers differ in host octet).
        prefix_len: its length.
        k_sigma: imbalance check k.
        margin: flat margin in packets.
        min_samples: servers that must be seen before checks fire.
        track_median: also maintain the median per-server share.
        cooldown: alert cooldown in seconds.
        per_byte: weight servers by bytes instead of packets.
    """

    pool_prefix: str = "10.0.1.0"
    prefix_len: int = 24
    k_sigma: int = 2
    margin: int = 2
    min_samples: int = 3
    track_median: bool = True
    cooldown: float = 0.25
    per_byte: bool = False


def build_load_balance_app(params: LoadBalanceParams = LoadBalanceParams()) -> AppBundle:
    """Build the load-balance monitoring program (pass-through forwarding)."""
    config = Stat4Config(counter_num=1, counter_size=256, binding_stages=1)
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)

    spec = runtime.frequency_of(
        dist=0,
        extract=ExtractSpec.field("ipv4.dst", mask=0xFF),
        k_sigma=params.k_sigma,
        alert="server_overload",
        percent=50 if params.track_median else None,
        min_samples=params.min_samples,
        margin=params.margin,
        cooldown=params.cooldown,
    )
    handle, _ = runtime.bind(
        0, BindingMatch.ipv4_prefix(params.pool_prefix, params.prefix_len), spec
    )

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_load_balance",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    return AppBundle(
        program=program, stat4=stat4, runtime=runtime, handles={"pool": handle}
    )
