# p4-ok-file — host-side application builder; the data-plane pieces it wires are linted individually.
"""Traffic-mix monitoring (Table 1: "traffic classification — packets by type").

Tracks the frequency distribution of packets by IP protocol.  The paper's
motivating scenario is in-switch ML classifiers going stale when the
traffic mix shifts ("to avoid traffic misclassification due to outdated
models in the switches").

The detection signal here is the *median of the mix*, not the k·σ outlier
test: a protocol mix has only a handful of categories, and with N tracked
values a single outlier's z-score is bounded by (N−1)/√N — a 2σ check is
structurally blind for N ≤ 5.  The paper anticipates this: "we can track
values and change rates of percentiles, which may be indicative of
anomalies" (Sec. 2).  When the weighted median of the protocol histogram
walks to a different protocol number, the mix has materially shifted and a
``mix_shift`` digest is raised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime
from repro.p4 import headers as hdr

from repro.apps.common import AppBundle

__all__ = ["ClassificationParams", "build_classification_app"]


@dataclass(frozen=True)
class ClassificationParams:
    """Tunables for the traffic-mix monitor.

    Attributes:
        percent: tracked percentile of the protocol mix (50 = median).
        min_samples: distinct protocols required before alerts may fire.
        cooldown: alert cooldown in seconds.
    """

    percent: int = 50
    min_samples: int = 2
    cooldown: float = 0.05


def build_classification_app(
    params: ClassificationParams = ClassificationParams(),
) -> AppBundle:
    """Build the traffic-mix monitoring program (pass-through forwarding)."""
    config = Stat4Config(counter_num=1, counter_size=256, binding_stages=1)
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)

    spec = runtime.frequency_of(
        dist=0,
        extract=ExtractSpec.field("ipv4.protocol"),
        percent=params.percent,
        percentile_alert="mix_shift",
        min_samples=params.min_samples,
        cooldown=params.cooldown,
    )
    handle, _ = runtime.bind(
        0,
        BindingMatch(ether_type=hdr.ETHERTYPE_IPV4),
        spec,
    )

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="stat4_classification",
        parser=standard_parser(),
        registers=registers,
        ingress=ingress,
    )
    stat4.install_into(program)
    return AppBundle(
        program=program, stat4=stat4, runtime=runtime, handles={"mix": handle}
    )
