"""Applications built on Stat4, one per paper use case.

- :mod:`repro.apps.echo` — the Sec. 3 validation application (Figure 5).
- :mod:`repro.apps.anomaly` — the Sec. 4 case study (Figure 6).
- :mod:`repro.apps.syn_flood`, :mod:`repro.apps.load_balance`,
  :mod:`repro.apps.classification` — the remaining Table-1 use cases.
"""

from repro.apps.anomaly import CaseStudyParams, build_case_study_app
from repro.apps.classification import ClassificationParams, build_classification_app
from repro.apps.common import AppBundle
from repro.apps.echo import ECHO_DOMAIN, build_echo_app
from repro.apps.failure import FailureParams, build_failure_app
from repro.apps.load_balance import LoadBalanceParams, build_load_balance_app
from repro.apps.mitigation import MitigationParams, build_mitigating_app
from repro.apps.syn_flood import SynFloodParams, build_syn_flood_app

__all__ = [
    "AppBundle",
    "build_echo_app",
    "ECHO_DOMAIN",
    "build_case_study_app",
    "CaseStudyParams",
    "build_syn_flood_app",
    "SynFloodParams",
    "build_load_balance_app",
    "LoadBalanceParams",
    "build_classification_app",
    "ClassificationParams",
    "build_mitigating_app",
    "MitigationParams",
    "build_failure_app",
    "FailureParams",
]
