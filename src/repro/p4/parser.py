"""The P4 parser: a state machine that extracts headers from bytes.

Mirrors a P4 ``parser`` block: each state extracts one header and selects
the next state on a field value.  :func:`standard_parser` builds the parse
graph all experiments share::

    start ──extract ethernet──► select(ether_type)
        0x0800 ──extract ipv4──► select(protocol)
            6  ──extract tcp──► accept
            17 ──extract udp──► accept
            *  ──► accept
        0x88B5 ──extract stat4_echo──► accept
        *      ──► accept

States are bounded and acyclic, as P4 requires for line-rate parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.p4 import headers as hdr
from repro.p4.errors import ParseError
from repro.p4.packet import HeaderType, Packet, ParsedPacket

__all__ = ["ParserState", "Parser", "standard_parser"]

#: Name of the implicit accepting state.
ACCEPT = "accept"


@dataclass
class ParserState:
    """One parser state: extract a header, then pick the next state.

    Attributes:
        name: state name.
        extracts: the header type extracted on entry (None = no extraction).
        select_field: field of the just-extracted header steering the
            transition (None = unconditional).
        transitions: select value → next state name.
        default: next state when no transition matches (``accept`` ends).
    """

    name: str
    extracts: Optional[HeaderType] = None
    select_field: Optional[str] = None
    transitions: Dict[int, str] = field(default_factory=dict)
    default: str = ACCEPT


class Parser:
    """An acyclic parse graph executed over packet bytes.

    Args:
        states: state name → :class:`ParserState`.
        start: name of the initial state.
        max_depth: safety bound on state traversals (parsers must terminate;
            a P4 compiler enforces acyclicity, we enforce a depth cap).
    """

    def __init__(self, states: Dict[str, ParserState], start: str, max_depth: int = 16):
        if start not in states:
            raise ParseError(f"start state {start!r} not defined")
        self.states = states
        self.start = start
        self.max_depth = max_depth

    def parse(self, packet: Packet) -> ParsedPacket:
        """Run the state machine over ``packet.data``.

        Returns:
            a :class:`ParsedPacket` with the extracted header stack and the
            remaining bytes as payload.

        Raises:
            ParseError: on truncated packets or a runaway parse graph.
        """
        parsed = ParsedPacket()
        offset = 0
        state_name = self.start
        for _ in range(self.max_depth):
            if state_name == ACCEPT:
                parsed.payload = packet.data[offset:]
                return parsed
            try:
                state = self.states[state_name]
            except KeyError:
                raise ParseError(f"undefined parser state {state_name!r}") from None
            header = None
            if state.extracts is not None:
                header = state.extracts.parse(packet.data, offset)
                offset += state.extracts.byte_width
                parsed.add(state.extracts.name, header)
            if state.select_field is None:
                state_name = state.default
            else:
                if header is None:
                    raise ParseError(
                        f"state {state_name!r} selects on "
                        f"{state.select_field!r} but extracts nothing"
                    )
                key = header.get(state.select_field)
                state_name = state.transitions.get(key, state.default)
        raise ParseError(f"parser exceeded {self.max_depth} states")


def standard_parser() -> Parser:
    """The Ethernet/IPv4/TCP/UDP/Stat4-echo parse graph used throughout."""
    states = {
        "start": ParserState(
            name="start",
            extracts=hdr.ETHERNET,
            select_field="ether_type",
            transitions={
                hdr.ETHERTYPE_IPV4: "parse_ipv4",
                hdr.ETHERTYPE_STAT4_ECHO: "parse_echo",
            },
        ),
        "parse_ipv4": ParserState(
            name="parse_ipv4",
            extracts=hdr.IPV4,
            select_field="protocol",
            transitions={hdr.PROTO_TCP: "parse_tcp", hdr.PROTO_UDP: "parse_udp"},
        ),
        "parse_tcp": ParserState(name="parse_tcp", extracts=hdr.TCP),
        "parse_udp": ParserState(name="parse_udp", extracts=hdr.UDP),
        "parse_echo": ParserState(name="parse_echo", extracts=hdr.STAT4_ECHO),
    }
    return Parser(states, start="start")
