"""Standard header types and address helpers.

Defines the protocol headers the experiments need — Ethernet, IPv4, TCP,
UDP — plus the custom Stat4 echo header used by the Sec. 3 validation
application (the host sends a value of interest; the switch echoes back the
statistical measures it tracks).

Addresses are plain integers inside the data plane (P4 sees ``bit<32>``);
:func:`ip_to_int` / :func:`int_to_ip` convert at the human boundary.
"""

from __future__ import annotations

from repro.p4.errors import ValueRangeError
from repro.p4.packet import Header, HeaderType

__all__ = [
    "ETHERTYPE_IPV4",
    "ETHERTYPE_STAT4_ECHO",
    "PROTO_TCP",
    "PROTO_UDP",
    "TCP_FLAG_FIN",
    "TCP_FLAG_SYN",
    "TCP_FLAG_RST",
    "TCP_FLAG_PSH",
    "TCP_FLAG_ACK",
    "ECHO_OP_REQUEST",
    "ECHO_OP_REPLY",
    "ETHERNET",
    "IPV4",
    "TCP",
    "UDP",
    "STAT4_ECHO",
    "ip_to_int",
    "int_to_ip",
    "mac_to_int",
    "int_to_mac",
    "ethernet",
    "ipv4",
    "tcp",
    "udp",
    "echo_request",
]

# EtherTypes / protocol numbers --------------------------------------------------

ETHERTYPE_IPV4 = 0x0800
#: Local-experimental EtherType carrying the Stat4 echo header (Figure 5).
ETHERTYPE_STAT4_ECHO = 0x88B5

PROTO_TCP = 6
PROTO_UDP = 17

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10

ECHO_OP_REQUEST = 1
ECHO_OP_REPLY = 2

# Header types -------------------------------------------------------------------

ETHERNET = HeaderType(
    "ethernet",
    [("dst", 48), ("src", 48), ("ether_type", 16)],
)

IPV4 = HeaderType(
    "ipv4",
    [
        ("version", 4),
        ("ihl", 4),
        ("diffserv", 8),
        ("total_len", 16),
        ("identification", 16),
        ("flags", 3),
        ("frag_offset", 13),
        ("ttl", 8),
        ("protocol", 8),
        ("hdr_checksum", 16),
        ("src", 32),
        ("dst", 32),
    ],
)

TCP = HeaderType(
    "tcp",
    [
        ("src_port", 16),
        ("dst_port", 16),
        ("seq_no", 32),
        ("ack_no", 32),
        ("data_offset", 4),
        ("reserved", 4),
        ("flags", 8),
        ("window", 16),
        ("checksum", 16),
        ("urgent_ptr", 16),
    ],
)

UDP = HeaderType(
    "udp",
    [("src_port", 16), ("dst_port", 16), ("length", 16), ("checksum", 16)],
)

#: The validation header (Sec. 3 / Figure 5).  ``value`` carries the signed
#: integer of interest offset by 256 so it stays unsigned on the wire (the
#: host draws from [-255, 255]); the remaining fields are filled in by the
#: switch on the reply: the distribution's N, Xsum, Xsumsq, σ²_NX, σ_NX and
#: the tracked median.
STAT4_ECHO = HeaderType(
    "stat4_echo",
    [
        ("op", 8),
        ("value", 16),
        ("n", 32),
        ("xsum", 48),
        ("xsumsq", 64),
        ("variance", 64),
        ("stddev", 32),
        ("median", 16),
    ],
)

#: Offset applied to echo values so [-255, 255] fits in an unsigned field.
ECHO_VALUE_OFFSET = 256


# Address helpers -----------------------------------------------------------------


def ip_to_int(address: str) -> int:
    """``"10.0.5.1"`` → 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueRangeError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueRangeError(f"malformed IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer → dotted quad."""
    if not 0 <= value < (1 << 32):
        raise ValueRangeError(f"{value} is not a 32-bit address")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def mac_to_int(address: str) -> int:
    """``"aa:bb:cc:dd:ee:ff"`` → 48-bit integer."""
    parts = address.split(":")
    if len(parts) != 6:
        raise ValueRangeError(f"malformed MAC address {address!r}")
    value = 0
    for part in parts:
        octet = int(part, 16)
        if not 0 <= octet <= 255:
            raise ValueRangeError(f"malformed MAC address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_mac(value: int) -> str:
    """48-bit integer → colon-hex MAC."""
    if not 0 <= value < (1 << 48):
        raise ValueRangeError(f"{value} is not a 48-bit address")
    return ":".join(
        format((value >> shift) & 0xFF, "02x") for shift in (40, 32, 24, 16, 8, 0)
    )


# Convenience builders --------------------------------------------------------------


def ethernet(dst: int, src: int, ether_type: int) -> Header:
    """Build a valid Ethernet header."""
    return ETHERNET.instance(dst=dst, src=src, ether_type=ether_type)


def ipv4(
    src: int,
    dst: int,
    protocol: int,
    total_len: int = 20,
    ttl: int = 64,
    identification: int = 0,
) -> Header:
    """Build a valid IPv4 header (checksum left zero; see p4.checksum)."""
    return IPV4.instance(
        version=4,
        ihl=5,
        total_len=total_len,
        identification=identification,
        ttl=ttl,
        protocol=protocol,
        src=src,
        dst=dst,
    )


def tcp(src_port: int, dst_port: int, flags: int = TCP_FLAG_ACK, seq_no: int = 0) -> Header:
    """Build a valid TCP header."""
    return TCP.instance(
        src_port=src_port,
        dst_port=dst_port,
        seq_no=seq_no,
        data_offset=5,
        flags=flags,
    )


def udp(src_port: int, dst_port: int, length: int = 8) -> Header:
    """Build a valid UDP header."""
    return UDP.instance(src_port=src_port, dst_port=dst_port, length=length)


def echo_request(value: int) -> Header:
    """Build the Figure-5 echo request carrying one value of interest.

    Args:
        value: the signed integer of interest, in ``[-255, 255]``.
    """
    if not -255 <= value <= 255:
        raise ValueRangeError(
            f"echo values are drawn from [-255, 255], got {value}"
        )
    return STAT4_ECHO.instance(op=ECHO_OP_REQUEST, value=value + ECHO_VALUE_OFFSET)
