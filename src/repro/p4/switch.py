"""The behavioral switch: ports, pipeline execution, and digests.

Plays the role bmv2 plays in the paper: packets arrive on numbered ports,
run parser → ingress → (egress) → deparser, and leave on the port the
program selected.  Two additions matter for the paper's architecture
(Figure 1c):

- **digests** — the data plane *pushes* small alert records toward the
  controller ("the data plane autonomously detects anomalies and pushes
  alerts to the controller"); they are collected per packet and handed to
  whoever drives the switch (the network simulator delivers them over the
  control channel with its latency);
- **control-plane handles** — tables and registers are reachable by name so
  a controller can retune binding tables at runtime, and register dumps are
  charged to the I/O accounting the sketch-only baseline is billed by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.p4.errors import PipelineError
from repro.p4.packet import Packet, ParsedPacket
from repro.p4.pipeline import PipelineProgram

__all__ = [
    "CPU_PORT",
    "DROP",
    "Digest",
    "StandardMetadata",
    "PacketContext",
    "SwitchOutput",
    "BehavioralSwitch",
]

#: Reserved port leading to the local control CPU (punted packets).
CPU_PORT = 255

#: Egress specification meaning "drop".
DROP = 511


@dataclass(frozen=True)
class Digest:
    """A small record the data plane pushes to the controller.

    Attributes:
        name: digest stream name (e.g. ``"traffic_spike"``).
        fields: the payload — a few integers, as P4 digests carry.
        timestamp: switch-local time the digest was generated.
    """

    name: str
    fields: Dict[str, int]
    timestamp: float


@dataclass
class StandardMetadata:
    """The v1model-style intrinsic metadata the ingress control sees."""

    ingress_port: int
    timestamp: float
    egress_spec: int = DROP
    multicast_ports: Tuple[int, ...] = ()


@dataclass
class PacketContext:
    """Everything one packet carries through the pipeline."""

    parsed: ParsedPacket
    meta: StandardMetadata
    user: Dict[str, Any] = field(default_factory=dict)
    digests: List[Digest] = field(default_factory=list)

    def emit_digest(self, name: str, **fields: int) -> None:
        """Queue a digest for the controller (the Figure-1c push path)."""
        self.digests.append(
            Digest(name=name, fields=dict(fields), timestamp=self.meta.timestamp)
        )

    def drop(self) -> None:
        """Mark the packet for dropping."""
        self.meta.egress_spec = DROP


@dataclass
class SwitchOutput:
    """What one packet produced: transmissions and digests."""

    sends: List[Tuple[int, Packet]] = field(default_factory=list)
    digests: List[Digest] = field(default_factory=list)
    dropped: bool = False


class BehavioralSwitch:
    """Executes a :class:`PipelineProgram` over packets, one at a time.

    Args:
        name: switch name (diagnostics).
        program: the deployed pipeline program.
    """

    def __init__(self, name: str, program: PipelineProgram):
        self.name = name
        self.program = program
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.parse_errors = 0

    def process(self, packet: Packet, ingress_port: int, now: float) -> SwitchOutput:
        """Run one packet through parser → ingress → egress → deparser.

        Args:
            packet: the arriving frame.
            ingress_port: port it arrived on.
            now: switch-local time (seconds).

        Returns:
            the transmissions and digests the packet produced.  Parse errors
            drop the packet (and are counted) rather than raising — a switch
            must not crash on a malformed frame.
        """
        self.packets_in += 1
        try:
            parsed = self.program.parser.parse(packet)
        except Exception:
            self.parse_errors += 1
            self.packets_dropped += 1
            return SwitchOutput(dropped=True)

        ctx = PacketContext(
            parsed=parsed,
            meta=StandardMetadata(ingress_port=ingress_port, timestamp=now),
        )
        # Frame length is intrinsic metadata in v1model (standard_metadata
        # .packet_length); byte-rate statistics extract from it.
        ctx.user["frame_bytes"] = len(packet)
        self.program.require_ingress()(ctx)
        if self.program.egress is not None and ctx.meta.egress_spec != DROP:
            self.program.egress(ctx)

        output = SwitchOutput(digests=list(ctx.digests))
        out_ports: List[int] = []
        if ctx.meta.egress_spec != DROP:
            out_ports.append(ctx.meta.egress_spec)
        out_ports.extend(ctx.meta.multicast_ports)
        if not out_ports:
            self.packets_dropped += 1
            output.dropped = True
            return output
        for port in out_ports:
            if port == DROP:
                continue
            out_packet = ctx.parsed.to_packet(
                created_at=packet.created_at, trace_id=packet.trace_id
            )
            output.sends.append((port, out_packet))
            self.packets_out += 1
        return output

    # -- control-plane surface ------------------------------------------------

    def table(self, name: str):
        """Control-plane handle to a match-action table."""
        return self.program.table(name)

    def read_registers(self, name: str) -> List[int]:
        """Control-plane dump of a register array (charged as reads)."""
        return self.program.registers[name].dump()

    def counters(self) -> Dict[str, int]:
        """Packet-level counters for experiments and tests."""
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "parse_errors": self.parse_errors,
        }

    def __repr__(self) -> str:
        return f"BehavioralSwitch({self.name!r}, program={self.program.name!r})"
