"""A behavioral-model simulator of a P4-programmable switch.

Models the parts of P4 and of programmable switch hardware that the paper's
techniques are shaped by: fixed-width wrapping unsigned arithmetic with no
division (:mod:`repro.p4.values`), byte-exact packet parsing
(:mod:`repro.p4.packet`, :mod:`repro.p4.headers`), register arrays
(:mod:`repro.p4.registers`), match-action tables with exact/LPM/ternary
matching and runtime entry management (:mod:`repro.p4.tables`), a
parser→ingress→egress pipeline with dependency accounting
(:mod:`repro.p4.pipeline`), and digests pushed to the controller
(:mod:`repro.p4.switch`).
"""

from repro.p4.errors import (
    P4Error,
    ParseError,
    PipelineError,
    RegisterIndexError,
    ResourceError,
    TableError,
    UnsupportedOperationError,
    ValueRangeError,
    WidthMismatchError,
)
from repro.p4.values import (
    BMV2,
    SOFTWARE,
    TOFINO_LIKE,
    P4Int,
    TargetProfile,
    active_target,
    checked_multiply,
    set_target,
    u8,
    u16,
    u32,
    u48,
    u64,
    use_target,
)

__all__ = [
    "P4Error",
    "ParseError",
    "PipelineError",
    "RegisterIndexError",
    "ResourceError",
    "TableError",
    "UnsupportedOperationError",
    "ValueRangeError",
    "WidthMismatchError",
    "BMV2",
    "SOFTWARE",
    "TOFINO_LIKE",
    "P4Int",
    "TargetProfile",
    "active_target",
    "checked_multiply",
    "set_target",
    "u8",
    "u16",
    "u32",
    "u48",
    "u64",
    "use_target",
]
