"""Register arrays — the switch state Stat4 stores distributions in.

"Stat4 uses switches' registers to store the distributions and their
statistical measures" (Sec. 3, Figure 4).  A :class:`RegisterArray` models a
P4 ``register<bit<W>>(size)``: fixed width, fixed size, wrapping writes, and
per-array read/write accounting.  The accounting matters twice: the resource
model (Sec. 4) reports memory from the declared layouts, and the sketch-only
baseline charges its controller pulls by registers read ("reading thousands
of registers takes several milliseconds", Sec. 1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.p4.errors import RegisterIndexError, ValueRangeError

__all__ = ["RegisterArray", "RegisterFile"]


class RegisterArray:
    """A fixed-width, fixed-size array of unsigned cells.

    Args:
        name: register name (unique within a :class:`RegisterFile`).
        width: cell width in bits.
        size: number of cells.
    """

    def __init__(self, name: str, width: int, size: int):
        if width <= 0:
            raise ValueRangeError(f"register {name!r}: width must be positive")
        if size <= 0:
            raise ValueRangeError(f"register {name!r}: size must be positive")
        self.name = name
        self.width = width
        self.size = size
        self._mask = (1 << width) - 1
        self._cells: List[int] = [0] * size
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        """Read one cell."""
        self._check(index)
        self.reads += 1
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Write one cell (value wraps to the register width, as P4 does)."""
        self._check(index)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueRangeError(
                f"register {self.name!r} stores integers, got {type(value).__name__}"
            )
        self.writes += 1
        self._cells[index] = value & self._mask

    def add(self, index: int, delta: int) -> int:
        """Read-modify-write increment (one ALU slot in hardware).

        Returns the new value.  Negative deltas wrap, matching P4 unsigned
        subtraction.
        """
        self._check(index)
        self.reads += 1
        self.writes += 1
        new_value = (self._cells[index] + delta) & self._mask
        self._cells[index] = new_value
        return new_value

    def fill(self, value: int = 0) -> None:
        """Control-plane reset of every cell (not charged as data-plane I/O)."""
        masked = value & self._mask
        self._cells = [masked] * self.size

    def dump(self) -> List[int]:
        """Control-plane snapshot of all cells.

        Charged as ``size`` reads: this is exactly the per-pull cost the
        sketch-only architecture pays.
        """
        self.reads += self.size
        return list(self._cells)

    def peek(self) -> List[int]:
        """Test/debug snapshot without touching the read accounting."""
        return list(self._cells)

    @property
    def bits(self) -> int:
        """Total storage in bits."""
        return self.width * self.size

    @property
    def bytes_used(self) -> int:
        """Total storage in whole bytes (rounded up)."""
        return (self.bits + 7) >> 3

    def _check(self, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise RegisterIndexError(
                f"register {self.name!r}: index must be an integer"
            )
        if not 0 <= index < self.size:
            raise RegisterIndexError(
                f"register {self.name!r}: index {index} out of [0, {self.size})"
            )

    def __repr__(self) -> str:
        return f"RegisterArray({self.name!r}, width={self.width}, size={self.size})"


class RegisterFile:
    """All register arrays declared by one P4 program.

    The resource model walks this to compute the memory footprint the paper
    reports in Sec. 4.
    """

    def __init__(self):
        self._arrays: Dict[str, RegisterArray] = {}

    def declare(self, name: str, width: int, size: int) -> RegisterArray:
        """Declare a new array; names are unique, like P4 instances."""
        if name in self._arrays:
            raise ValueRangeError(f"register {name!r} already declared")
        array = RegisterArray(name, width, size)
        self._arrays[name] = array
        return array

    def __getitem__(self, name: str) -> RegisterArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise RegisterIndexError(f"no register named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self):
        return iter(self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def total_bytes(self) -> int:
        """Memory footprint of all declared arrays."""
        return sum(array.bytes_used for array in self._arrays.values())

    def io_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-array read/write counters (for overhead accounting)."""
        return {
            name: {"reads": array.reads, "writes": array.writes}
            for name, array in self._arrays.items()
        }
