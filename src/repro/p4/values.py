"""Fixed-width unsigned integers with P4 semantics.

P4 arithmetic operates on ``bit<W>`` values: unsigned, wrapping on overflow,
with no division, no modulo, and no floating point.  :class:`P4Int` mirrors
those semantics exactly and *raises* on anything a P4 target cannot do, so
that the statistics code built on top is mechanically portable to P4.

Targets differ in one relevant capability: bmv2 (the software behavioral
model the paper validates on) can multiply two runtime values, while
Tofino-class hardware cannot square a value unknown at compile time (Sec. 2
of the paper).  :class:`TargetProfile` captures that difference; the active
profile is process-global and controlled with :func:`use_target`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Union

from repro.p4.errors import (
    UnsupportedOperationError,
    ValueRangeError,
    WidthMismatchError,
)

__all__ = [
    "TargetProfile",
    "BMV2",
    "TOFINO_LIKE",
    "SOFTWARE",
    "active_target",
    "use_target",
    "set_target",
    "P4Int",
    "u8",
    "u16",
    "u32",
    "u48",
    "u64",
    "checked_multiply",
]


@dataclass(frozen=True)
class TargetProfile:
    """Capabilities of a P4 target relevant to in-switch statistics.

    Attributes:
        name: human-readable target name.
        runtime_multiply: whether two values unknown at compile time can be
            multiplied (true for bmv2, false for Tofino-class hardware).
        max_pipeline_stages: rough stage budget used by the resource model.
    """

    name: str
    runtime_multiply: bool
    max_pipeline_stages: int


#: The software behavioral model used by the paper for validation (Sec. 3).
BMV2 = TargetProfile(name="bmv2", runtime_multiply=True, max_pipeline_stages=64)

#: A hardware-like profile: no runtime*runtime multiply, ~12-20 stages
#: ("they typically support more than 10 pipeline stages", Sec. 4).
TOFINO_LIKE = TargetProfile(
    name="tofino-like", runtime_multiply=False, max_pipeline_stages=12
)

#: Unconstrained profile for reference/baseline code that is *not* claimed to
#: be P4-expressible (e.g. the controller or the Welford baseline).
SOFTWARE = TargetProfile(
    name="software", runtime_multiply=True, max_pipeline_stages=10**9  # p4-ok: software target profile constant, never lowered to P4
)

_ACTIVE: TargetProfile = BMV2


def active_target() -> TargetProfile:
    """Return the target profile P4Int arithmetic is currently checked against."""
    return _ACTIVE


def set_target(profile: TargetProfile) -> TargetProfile:
    """Set the active target profile; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profile
    return previous


@contextlib.contextmanager
def use_target(profile: TargetProfile) -> Iterator[TargetProfile]:
    """Context manager that switches the active target profile."""
    previous = set_target(profile)
    try:
        yield profile
    finally:
        set_target(previous)


def checked_multiply(a: int, b: int, *, runtime_operands: int = 2) -> int:
    """Multiply under the active target's rules.

    Args:
        a: first operand.
        b: second operand.
        runtime_operands: how many of the operands are unknown at compile
            time.  Multiplying by a compile-time constant is always legal
            (compilers lower it to shifts and adds); multiplying two runtime
            values requires ``runtime_multiply`` support.

    Raises:
        UnsupportedOperationError: if the active target cannot express the
            multiplication.
    """
    if runtime_operands >= 2 and not _ACTIVE.runtime_multiply:
        raise UnsupportedOperationError(
            f"target {_ACTIVE.name!r} cannot multiply two runtime values; "
            "use repro.core.approx.approx_square or a constant operand"
        )
    return a * b


OtherInt = Union["P4Int", int]


class P4Int:
    """An unsigned ``bit<W>`` value with wrapping P4 arithmetic.

    Binary operations require both operands to have the same width (ints are
    treated as compile-time constants of the same width).  Division, modulo,
    exponentiation, float conversion and negative shifts raise
    :class:`UnsupportedOperationError`, matching what P4 targets support.
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int):
        if width <= 0:
            raise ValueRangeError(f"width must be positive, got {width}")
        if not isinstance(value, int) or isinstance(value, bool):
            raise UnsupportedOperationError(
                f"P4Int accepts only integers, got {type(value).__name__}"
            )
        self._width = width
        self._value = value & self.mask

    # -- introspection -----------------------------------------------------

    @property
    def value(self) -> int:
        """The integer value (always in ``[0, 2**width)``)."""
        return self._value

    @property
    def width(self) -> int:
        """Declared bit width."""
        return self._width

    @property
    def mask(self) -> int:
        """``2**width - 1``."""
        return (1 << self._width) - 1

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        return self.mask

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"P4Int({self._value}, width={self._width})"

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def bits(self) -> str:
        """Binary string padded to the declared width (MSB first)."""
        return format(self._value, f"0{self._width}b")

    # -- width manipulation (explicit casts, as P4 requires) ---------------

    def cast(self, width: int) -> "P4Int":
        """Explicitly cast to another width (truncates or zero-extends)."""
        return P4Int(self._value, width)

    def concat(self, other: "P4Int") -> "P4Int":
        """Bit-string concatenation ``self ++ other`` (P4's ``++``)."""
        return P4Int(
            (self._value << other._width) | other._value,
            self._width + other._width,
        )

    def slice_bits(self, hi: int, lo: int) -> "P4Int":
        """P4 bit slice ``value[hi:lo]`` (inclusive, hi >= lo)."""
        if not 0 <= lo <= hi < self._width:
            raise ValueRangeError(
                f"slice [{hi}:{lo}] out of range for width {self._width}"
            )
        width = hi - lo + 1
        return P4Int((self._value >> lo) & ((1 << width) - 1), width)

    # -- helpers ------------------------------------------------------------

    def _coerce(self, other: OtherInt, op: str) -> int:
        if isinstance(other, P4Int):
            if other._width != self._width:
                raise WidthMismatchError(
                    f"{op}: width {self._width} vs {other._width}; "
                    "cast explicitly"
                )
            return other._value
        if isinstance(other, bool) or not isinstance(other, int):
            raise UnsupportedOperationError(
                f"{op}: P4Int cannot combine with {type(other).__name__}"
            )
        if other < 0:
            raise ValueRangeError(f"{op}: negative constant {other}")
        return other

    def _wrap(self, value: int) -> "P4Int":
        return P4Int(value & self.mask, self._width)

    # -- arithmetic (wrapping, as in P4) ------------------------------------

    def __add__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value + self._coerce(other, "add"))

    __radd__ = __add__

    def __sub__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value - self._coerce(other, "sub"))

    def __rsub__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._coerce(other, "sub") - self._value)

    def __mul__(self, other: OtherInt) -> "P4Int":
        runtime = 2 if isinstance(other, P4Int) else 1
        product = checked_multiply(
            self._value, self._coerce(other, "mul"), runtime_operands=runtime
        )
        return self._wrap(product)

    def __rmul__(self, other: OtherInt) -> "P4Int":
        return self.__mul__(other)

    # -- operations P4 does not have ----------------------------------------

    def _unsupported(self, name: str):
        raise UnsupportedOperationError(
            f"P4 targets do not support {name}; the paper's techniques "
            "exist precisely to avoid it (Sec. 2)"
        )

    def __truediv__(self, other):  # noqa: D105
        self._unsupported("division")

    __rtruediv__ = __truediv__

    def __floordiv__(self, other):  # noqa: D105
        self._unsupported("division")

    __rfloordiv__ = __floordiv__

    def __mod__(self, other):  # noqa: D105
        self._unsupported("modulo")

    __rmod__ = __mod__

    def __pow__(self, other):  # noqa: D105
        self._unsupported("exponentiation")

    def __float__(self):  # noqa: D105
        self._unsupported("floating point")

    def __neg__(self):  # noqa: D105
        self._unsupported("signed negation (use wrapping subtraction)")

    # -- shifts and bitwise -------------------------------------------------

    def _shift_amount(self, other: OtherInt) -> int:
        amount = other._value if isinstance(other, P4Int) else other
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise UnsupportedOperationError("shift amount must be an integer")
        if amount < 0:
            raise ValueRangeError("negative shift amount")
        return amount

    def __lshift__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value << self._shift_amount(other))

    def __rshift__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value >> self._shift_amount(other))

    def __and__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value & self._coerce(other, "and"))

    __rand__ = __and__

    def __or__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value | self._coerce(other, "or"))

    __ror__ = __or__

    def __xor__(self, other: OtherInt) -> "P4Int":
        return self._wrap(self._value ^ self._coerce(other, "xor"))

    __rxor__ = __xor__

    def __invert__(self) -> "P4Int":
        return self._wrap(~self._value)

    # -- comparisons ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, P4Int):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int) and not isinstance(other, bool):
            return self._value == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: OtherInt) -> bool:
        return self._value < self._coerce(other, "lt")

    def __le__(self, other: OtherInt) -> bool:
        return self._value <= self._coerce(other, "le")

    def __gt__(self, other: OtherInt) -> bool:
        return self._value > self._coerce(other, "gt")

    def __ge__(self, other: OtherInt) -> bool:
        return self._value >= self._coerce(other, "ge")


def u8(value: int) -> P4Int:
    """Construct a ``bit<8>`` value."""
    return P4Int(value, 8)


def u16(value: int) -> P4Int:
    """Construct a ``bit<16>`` value."""
    return P4Int(value, 16)


def u32(value: int) -> P4Int:
    """Construct a ``bit<32>`` value."""
    return P4Int(value, 32)


def u48(value: int) -> P4Int:
    """Construct a ``bit<48>`` value (Ethernet addresses)."""
    return P4Int(value, 48)


def u64(value: int) -> P4Int:
    """Construct a ``bit<64>`` value."""
    return P4Int(value, 64)
