"""RFC 1071 internet checksum, as P4 deparsers compute it.

Only shifts, masks and adds — the ones-complement fold is expressible in a
P4 checksum extern and, like everything in this substrate, avoids division.
"""

from __future__ import annotations

from repro.p4.packet import Header

__all__ = [
    "ones_complement_sum",
    "internet_checksum",
    "ipv4_header_checksum",
    "verify_ipv4_checksum",
]


def ones_complement_sum(data: bytes) -> int:
    """16-bit ones-complement sum of ``data`` (odd lengths zero-padded)."""
    if len(data) & 1:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total = total + ((data[index] << 8) | data[index + 1])
        # Fold the carry immediately to stay within 16 bits.
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """The RFC 1071 checksum: complement of the ones-complement sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def ipv4_header_checksum(header: Header) -> int:
    """Checksum of an IPv4 header with its checksum field zeroed."""
    saved = header.get("hdr_checksum")
    header["hdr_checksum"] = 0
    try:
        checksum = internet_checksum(header.pack())
    finally:
        header["hdr_checksum"] = saved
    return checksum


def verify_ipv4_checksum(header: Header) -> bool:
    """Whether the stored IPv4 checksum matches the header contents."""
    return header.get("hdr_checksum") == ipv4_header_checksum(header)
