"""A token-bucket policer — the v1model ``meter`` extern, modeled.

The paper's envisioned architecture has switches "locally react to
anomalies (e.g., rate limiting some flows or rerouting packets)" before the
controller is even aware.  P4 targets expose rate limiting as a meter
extern; this models the standard single-rate two-color token bucket with
integer-only arithmetic:

- time is integer microseconds (switch timestamp resolution);
- the budget is kept in *token-microseconds* so refills are a single
  multiply of the elapsed microseconds by the configured packets-per-second
  rate (a control-plane-installed constant), with no division anywhere;
- one packet costs ``1_000_000`` budget units (one token).
"""

from __future__ import annotations

from typing import Optional

from repro.p4.errors import ValueRangeError
from repro.p4.registers import RegisterFile

__all__ = ["TokenBucket"]

#: Budget units per token (token-microseconds per packet).
_UNITS_PER_TOKEN = 1_000_000


class TokenBucket:
    """Single-rate two-color policer with register-backed state.

    Args:
        rate_pps: tokens (packets) added per second.
        burst: bucket depth in packets.
        registers: register file to allocate state in (None = private).
        name: register name prefix.
    """

    def __init__(
        self,
        rate_pps: int,
        burst: int,
        registers: Optional[RegisterFile] = None,
        name: str = "meter",
    ):
        if rate_pps <= 0:
            raise ValueRangeError("meter rate must be positive")
        if burst <= 0:
            raise ValueRangeError("meter burst must be positive")
        owner = registers if registers is not None else RegisterFile()
        self.registers = owner
        # [0] = budget in token-microseconds, [1] = last refill timestamp us.
        self._state = owner.declare(f"{name}_state", 64, 2)
        self.rate_pps = rate_pps
        self.burst = burst
        self._cap = burst * _UNITS_PER_TOKEN
        self._state.write(0, self._cap)  # start full
        self.conforming = 0
        self.dropped = 0

    def configure(self, rate_pps: int, burst: Optional[int] = None) -> None:
        """Control-plane reconfiguration (meters are runtime-tunable)."""
        if rate_pps <= 0:
            raise ValueRangeError("meter rate must be positive")
        self.rate_pps = rate_pps
        if burst is not None:
            if burst <= 0:
                raise ValueRangeError("meter burst must be positive")
            self.burst = burst
            self._cap = burst * _UNITS_PER_TOKEN

    def allow(self, now: float) -> bool:
        """Charge one packet at time ``now``; True = conforms (forward)."""
        now_us = int(now * 1_000_000)
        last_us = self._state.read(1)
        budget = self._state.read(0)
        if now_us > last_us:
            # Refill: elapsed-us times pps — one multiply, no division.
            budget = budget + (now_us - last_us) * self.rate_pps
            if budget > self._cap:
                budget = self._cap
        self._state.write(1, now_us)
        if budget >= _UNITS_PER_TOKEN:
            self._state.write(0, budget - _UNITS_PER_TOKEN)
            self.conforming += 1
            return True
        self._state.write(0, budget)
        self.dropped += 1
        return False

    @property
    def tokens(self) -> float:
        """Current bucket level in packets (diagnostics)."""
        return self._state.peek()[0] / _UNITS_PER_TOKEN  # p4-ok: diagnostic helper for tests, never compiled to the data plane
