"""Match-action tables with runtime entry management.

The binding tables at the heart of Stat4's runtime tuning (Sec. 3: "the
control plane decides which distributions to track at any time by populating
P4 tables that we call binding tables") are ordinary match-action tables, so
this module implements the general mechanism: typed keys with exact / LPM /
ternary / range matching, prioritized entries, default actions, and the
control-plane add/modify/delete operations that work *without recompiling*
the program.

Lookup semantics follow P4 targets:

- all-exact tables match or miss, no priorities needed;
- a single-LPM table picks the longest matching prefix;
- any table with a ternary or range key orders entries by priority
  (higher wins), as TCAM-backed tables do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.p4.errors import TableError

__all__ = [
    "MatchKind",
    "TableKey",
    "exact_key",
    "lpm_key",
    "ternary_key",
    "range_key",
    "ActionSpec",
    "TableEntry",
    "Table",
]


class MatchKind(Enum):
    """P4 match kinds supported by the simulator."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


@dataclass(frozen=True)
class TableKey:
    """One key component: a named field with a width and a match kind."""

    name: str
    width: int
    kind: MatchKind


def exact_key(name: str, width: int) -> TableKey:
    """Shorthand for an exact-match key component."""
    return TableKey(name, width, MatchKind.EXACT)


def lpm_key(name: str, width: int) -> TableKey:
    """Shorthand for a longest-prefix-match key component."""
    return TableKey(name, width, MatchKind.LPM)


def ternary_key(name: str, width: int) -> TableKey:
    """Shorthand for a ternary (value/mask) key component."""
    return TableKey(name, width, MatchKind.TERNARY)


def range_key(name: str, width: int) -> TableKey:
    """Shorthand for a range ([lo, hi]) key component."""
    return TableKey(name, width, MatchKind.RANGE)


@dataclass(frozen=True)
class ActionSpec:
    """A named action with the parameter names entries must provide."""

    name: str
    params: Tuple[str, ...] = ()
    # The callable is invoked by the pipeline as fn(ctx, **params).
    fn: Optional[Callable[..., Any]] = None


@dataclass
class TableEntry:
    """One installed entry.

    ``matches`` is one element per key component:

    - EXACT: ``value``
    - LPM: ``(value, prefix_len)``
    - TERNARY: ``(value, mask)``
    - RANGE: ``(lo, hi)`` inclusive
    """

    entry_id: int
    matches: Tuple[Any, ...]
    action: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0

    def specificity(self) -> int:
        """LPM tie-break aid: total prefix length over LPM components."""
        total = 0
        for match in self.matches:
            if isinstance(match, tuple) and len(match) == 2:
                total += match[1] if isinstance(match[1], int) else 0
        return total


class Table:
    """A match-action table with control-plane entry management.

    Args:
        name: table name.
        keys: ordered key components.
        actions: the actions entries may invoke.
        default_action: action name used on a miss (must be in ``actions``),
            or None for a no-op miss.
        max_size: entry capacity, as hardware tables have.
    """

    def __init__(
        self,
        name: str,
        keys: Sequence[TableKey],
        actions: Sequence[ActionSpec],
        default_action: Optional[str] = None,
        default_params: Optional[Dict[str, Any]] = None,
        max_size: int = 1024,
    ):
        if not keys:
            raise TableError(f"table {name!r} needs at least one key")
        self.name = name
        self.keys = tuple(keys)
        self.actions: Dict[str, ActionSpec] = {spec.name: spec for spec in actions}
        if len(self.actions) != len(actions):
            raise TableError(f"table {name!r} has duplicate action names")
        if default_action is not None and default_action not in self.actions:
            raise TableError(
                f"table {name!r}: unknown default action {default_action!r}"
            )
        self.default_action = default_action
        self.default_params = dict(default_params or {})
        self.max_size = max_size
        self._entries: Dict[int, TableEntry] = {}
        self._ids = itertools.count(1)
        self.lookups = 0
        self.hits = 0

    # -- control plane (runtime, no recompilation) ---------------------------

    def add_entry(
        self,
        matches: Sequence[Any],
        action: str,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> int:
        """Install an entry; returns its id for later modify/delete.

        Raises:
            TableError: on capacity overflow, bad action, malformed match,
                or wrong parameter names.
        """
        if len(self._entries) >= self.max_size:
            raise TableError(f"table {self.name!r} is full ({self.max_size})")
        spec = self._action_spec(action)
        entry_params = dict(params or {})
        self._check_params(spec, entry_params)
        normalized = self._normalize_matches(matches)
        entry_id = next(self._ids)
        self._entries[entry_id] = TableEntry(
            entry_id=entry_id,
            matches=normalized,
            action=action,
            params=entry_params,
            priority=priority,
        )
        return entry_id

    def modify_entry(
        self,
        entry_id: int,
        matches: Optional[Sequence[Any]] = None,
        action: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        priority: Optional[int] = None,
    ) -> None:
        """Rewrite parts of an installed entry in place.

        This is the operation the drill-down controller uses: "the
        controller modifies the previously added entry so that the switch
        tracks the traffic per destination" (Sec. 4).
        """
        entry = self._get_entry(entry_id)
        if action is not None:
            spec = self._action_spec(action)
            entry.action = action
        else:
            spec = self._action_spec(entry.action)
        if params is not None:
            self._check_params(spec, params)
            entry.params = dict(params)
        if matches is not None:
            entry.matches = self._normalize_matches(matches)
        if priority is not None:
            entry.priority = priority

    def delete_entry(self, entry_id: int) -> None:
        """Remove an installed entry."""
        self._get_entry(entry_id)
        del self._entries[entry_id]

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()

    def entries(self) -> List[TableEntry]:
        """All installed entries (control-plane view)."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # -- data plane ---------------------------------------------------------------

    def lookup(self, key_values: Sequence[int]) -> Optional[TableEntry]:
        """Find the best-matching entry for the key tuple, or None on miss.

        LPM components prefer longer prefixes; ternary/range tables break
        ties by priority (higher first), then by insertion order.
        """
        if len(key_values) != len(self.keys):
            raise TableError(
                f"table {self.name!r} expects {len(self.keys)} key values, "
                f"got {len(key_values)}"
            )
        self.lookups += 1
        best: Optional[TableEntry] = None
        best_rank: Tuple[int, int, int] = (-1, -1, -1)
        for entry in self._entries.values():
            if not self._entry_matches(entry, key_values):
                continue
            rank = (entry.priority, entry.specificity(), -entry.entry_id)
            if best is None or rank > best_rank:
                best = entry
                best_rank = rank
        if best is not None:
            self.hits += 1
        return best

    def default(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """The miss behaviour: ``(action, params)`` or None."""
        if self.default_action is None:
            return None
        return self.default_action, dict(self.default_params)

    # -- internals -------------------------------------------------------------

    def _entry_matches(self, entry: TableEntry, key_values: Sequence[int]) -> bool:
        for key, match, value in zip(self.keys, entry.matches, key_values):
            if key.kind is MatchKind.EXACT:
                if value != match:
                    return False
            elif key.kind is MatchKind.LPM:
                prefix_value, prefix_len = match
                shift = key.width - prefix_len
                if (value >> shift) != (prefix_value >> shift):
                    return False
            elif key.kind is MatchKind.TERNARY:
                match_value, mask = match
                if (value & mask) != (match_value & mask):
                    return False
            else:  # RANGE
                lo, hi = match
                if not lo <= value <= hi:
                    return False
        return True

    def _normalize_matches(self, matches: Sequence[Any]) -> Tuple[Any, ...]:
        if len(matches) != len(self.keys):
            raise TableError(
                f"table {self.name!r} expects {len(self.keys)} match values, "
                f"got {len(matches)}"
            )
        normalized = []
        for key, match in zip(self.keys, matches):
            limit = 1 << key.width
            if key.kind is MatchKind.EXACT:
                self._check_value(key, match, limit)
                normalized.append(match)
            elif key.kind is MatchKind.LPM:
                value, prefix_len = self._pair(key, match)
                self._check_value(key, value, limit)
                if not 0 <= prefix_len <= key.width:
                    raise TableError(
                        f"table {self.name!r}: prefix /{prefix_len} invalid "
                        f"for {key.width}-bit key {key.name!r}"
                    )
                normalized.append((value, prefix_len))
            elif key.kind is MatchKind.TERNARY:
                value, mask = self._pair(key, match)
                self._check_value(key, value, limit)
                self._check_value(key, mask, limit)
                normalized.append((value, mask))
            else:  # RANGE
                lo, hi = self._pair(key, match)
                self._check_value(key, lo, limit)
                self._check_value(key, hi, limit)
                if lo > hi:
                    raise TableError(
                        f"table {self.name!r}: empty range [{lo}, {hi}]"
                    )
                normalized.append((lo, hi))
        return tuple(normalized)

    def _pair(self, key: TableKey, match: Any) -> Tuple[int, int]:
        if not isinstance(match, tuple) or len(match) != 2:
            raise TableError(
                f"table {self.name!r}: key {key.name!r} ({key.kind.value}) "
                f"needs a 2-tuple match, got {match!r}"
            )
        return match

    def _check_value(self, key: TableKey, value: Any, limit: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise TableError(
                f"table {self.name!r}: key {key.name!r} match must be int"
            )
        if not 0 <= value < limit:
            raise TableError(
                f"table {self.name!r}: {value} does not fit key "
                f"{key.name!r} (width {key.width})"
            )

    def _action_spec(self, action: str) -> ActionSpec:
        try:
            return self.actions[action]
        except KeyError:
            raise TableError(
                f"table {self.name!r} has no action {action!r}"
            ) from None

    def _check_params(self, spec: ActionSpec, params: Dict[str, Any]) -> None:
        expected = set(spec.params)
        provided = set(params)
        if expected != provided:
            raise TableError(
                f"table {self.name!r}: action {spec.name!r} takes "
                f"{sorted(expected)}, got {sorted(provided)}"
            )

    def _get_entry(self, entry_id: int) -> TableEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise TableError(
                f"table {self.name!r} has no entry {entry_id}"
            ) from None

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._entries)} entries)"
