"""Exception hierarchy for the P4 behavioral-model substrate.

Every restriction of the P4 language and of programmable switch hardware that
the paper works around (no division, no square root, no data-dependent loops,
fixed register widths, bounded table sizes) is enforced at runtime by raising
one of these exceptions.  Code that runs without tripping them is, by
construction, expressible in P4.
"""

from __future__ import annotations


class P4Error(Exception):
    """Base class for all errors raised by the P4 substrate."""


class UnsupportedOperationError(P4Error):
    """An operation that the target cannot express was attempted.

    Examples: division or modulo anywhere, multiplication of two runtime
    values on a target without a runtime multiplier, conversion to float.
    """


class WidthMismatchError(P4Error):
    """Two fixed-width values of different widths were combined.

    P4 requires explicit casts between bit widths; this simulator mirrors
    that by refusing implicit width coercion.
    """


class ValueRangeError(P4Error):
    """A value does not fit in the declared bit width (on explicit checks)."""


class RegisterIndexError(P4Error):
    """A register array was indexed out of bounds."""


class TableError(P4Error):
    """Invalid match-action table configuration or entry manipulation."""


class ParseError(P4Error):
    """A packet could not be parsed by the parser state machine."""


class DeparseError(P4Error):
    """A header set could not be serialized back to bytes."""


class PipelineError(P4Error):
    """Invalid pipeline construction or execution."""


class ResourceError(P4Error):
    """A resource budget (registers, table entries, stages) was exceeded."""
