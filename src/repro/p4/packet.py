"""Byte-exact packets and header types for the behavioral model.

A :class:`HeaderType` declares an ordered list of named bit fields (like a
P4 ``header`` declaration); a :class:`Header` is an instance holding
:class:`~repro.p4.values.P4Int` values and a validity bit.  Headers pack to
and parse from real bytes MSB-first, so the simulator moves actual octets
between hosts and switches — the same contract bmv2 has with its veth
interfaces in the paper's Figure 5 setup.

:class:`Packet` couples raw bytes with link-level bookkeeping; the parser in
:mod:`repro.p4.parser` turns it into a :class:`ParsedPacket` with a header
stack and remaining payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p4.errors import DeparseError, ParseError, ValueRangeError
from repro.p4.values import P4Int

__all__ = [
    "FieldSpec",
    "HeaderType",
    "Header",
    "Packet",
    "ParsedPacket",
]


@dataclass(frozen=True)
class FieldSpec:
    """One field of a header: a name and a width in bits."""

    name: str
    width: int

    def __post_init__(self):
        if self.width <= 0:
            raise ValueRangeError(
                f"field {self.name!r} must have positive width, got {self.width}"
            )


class HeaderType:
    """An ordered, byte-aligned collection of bit fields.

    Args:
        name: header name used in parser states and diagnostics.
        fields: ``(name, width_bits)`` pairs; total width must be a multiple
            of 8 so the header packs to whole octets.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]):
        self.name = name
        self.fields: Tuple[FieldSpec, ...] = tuple(
            FieldSpec(fname, width) for fname, width in fields
        )
        seen = set()
        for spec in self.fields:
            if spec.name in seen:
                raise ValueRangeError(f"duplicate field {spec.name!r} in {name}")
            seen.add(spec.name)
        self.bit_width = sum(spec.width for spec in self.fields)
        if self.bit_width % 8 != 0:  # p4-ok: compile-time width check in the header DSL, not switch arithmetic
            raise ValueRangeError(
                f"header {name!r} is {self.bit_width} bits; must be byte-aligned"
            )
        self.byte_width = self.bit_width >> 3
        self._field_index = {spec.name: spec for spec in self.fields}

    def __repr__(self) -> str:
        return f"HeaderType({self.name!r}, {self.byte_width} bytes)"

    def field(self, name: str) -> FieldSpec:
        """Look up a field spec by name."""
        try:
            return self._field_index[name]
        except KeyError:
            raise ValueRangeError(f"{self.name} has no field {name!r}") from None

    def instance(self, **values: int) -> "Header":
        """Create a valid header instance, fields defaulting to zero."""
        header = Header(self)
        header.set_valid()
        for name, value in values.items():
            header[name] = value
        return header

    def parse(self, data: bytes, offset: int = 0) -> "Header":
        """Extract a header instance from ``data`` starting at ``offset``."""
        end = offset + self.byte_width
        if end > len(data):
            raise ParseError(
                f"packet too short for {self.name}: need {end} bytes, "
                f"have {len(data)}"
            )
        as_int = int.from_bytes(data[offset:end], "big")
        header = Header(self)
        header.set_valid()
        shift = self.bit_width
        for spec in self.fields:
            shift -= spec.width
            header._values[spec.name] = P4Int(
                (as_int >> shift) & ((1 << spec.width) - 1), spec.width
            )
        return header


class Header:
    """A header instance: field values plus a validity bit (P4 semantics)."""

    __slots__ = ("header_type", "_values", "_valid")

    def __init__(self, header_type: HeaderType):
        self.header_type = header_type
        self._values: Dict[str, P4Int] = {
            spec.name: P4Int(0, spec.width) for spec in header_type.fields
        }
        self._valid = False

    # -- validity (P4's setValid/setInvalid/isValid) -------------------------

    def is_valid(self) -> bool:
        """Whether the header participates in deparsing."""
        return self._valid

    def set_valid(self) -> None:
        """Mark the header present."""
        self._valid = True

    def set_invalid(self) -> None:
        """Mark the header absent."""
        self._valid = False

    # -- field access -----------------------------------------------------------

    def __getitem__(self, name: str) -> P4Int:
        spec = self.header_type.field(name)
        return self._values[spec.name]

    def __setitem__(self, name: str, value) -> None:
        spec = self.header_type.field(name)
        raw = int(value)
        if raw < 0 or raw >> spec.width:
            raise ValueRangeError(
                f"{self.header_type.name}.{name}: {raw} does not fit in "
                f"{spec.width} bits"
            )
        self._values[name] = P4Int(raw, spec.width)

    def get(self, name: str) -> int:
        """Field value as a plain int (convenience for hosts/controllers)."""
        return self[name].value

    def items(self) -> List[Tuple[str, int]]:
        """All field values in declaration order (name, int)."""
        return [(spec.name, self._values[spec.name].value) for spec in self.header_type.fields]

    def copy(self) -> "Header":
        """An independent copy with the same validity and values."""
        clone = Header(self.header_type)
        clone._valid = self._valid
        clone._values = dict(self._values)
        return clone

    # -- serialization -----------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize to bytes, MSB-first.

        Raises:
            DeparseError: if the header is invalid.
        """
        if not self._valid:
            raise DeparseError(
                f"cannot deparse invalid header {self.header_type.name}"
            )
        as_int = 0
        for spec in self.header_type.fields:
            as_int = (as_int << spec.width) | self._values[spec.name].value
        return as_int.to_bytes(self.header_type.byte_width, "big")

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v}" for n, v in self.items())
        state = "valid" if self._valid else "invalid"
        return f"<{self.header_type.name} {state} {inner}>"


@dataclass
class Packet:
    """Raw bytes on the wire plus link bookkeeping.

    Attributes:
        data: the full frame.
        created_at: simulation time the packet was created (seconds).
        trace_id: optional identifier for end-to-end tracking in experiments.
    """

    data: bytes
    created_at: float = 0.0  # p4-ok: simulation wall-clock bookkeeping, not a register value
    trace_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.data)

    @property
    def size_bytes(self) -> int:
        """Frame length in bytes (used for byte-rate statistics)."""
        return len(self.data)


@dataclass
class ParsedPacket:
    """The parser's output: an ordered header stack plus leftover payload."""

    headers: Dict[str, Header] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    payload: bytes = b""

    def add(self, name: str, header: Header) -> None:
        """Append a parsed header under ``name``."""
        self.headers[name] = header
        self.order.append(name)

    def has(self, name: str) -> bool:
        """Whether a *valid* header ``name`` is present."""
        header = self.headers.get(name)
        return header is not None and header.is_valid()

    def __getitem__(self, name: str) -> Header:
        try:
            return self.headers[name]
        except KeyError:
            raise ParseError(f"no header {name!r} parsed") from None

    def deparse(self) -> bytes:
        """Re-serialize all valid headers in parse order, then the payload.

        This is the P4 deparser: invalid headers are skipped, which is how
        switch programs strip or add headers.
        """
        parts = [
            self.headers[name].pack()
            for name in self.order
            if self.headers[name].is_valid()
        ]
        parts.append(self.payload)
        return b"".join(parts)

    def to_packet(self, created_at: float = 0.0, trace_id: Optional[int] = None) -> Packet:  # p4-ok: simulation wall-clock bookkeeping, not a register value
        """Deparse into a fresh :class:`Packet`."""
        return Packet(self.deparse(), created_at=created_at, trace_id=trace_id)
