"""Pipeline programs and their dependency structure.

A :class:`PipelineProgram` bundles what a compiled P4 program deploys on a
switch: a parser, register declarations, match-action tables, and an ingress
control function.  Alongside the executable parts, programs *declare* their
sequential structure as :class:`Step` records (what each step reads and
writes); :class:`DependencyGraph` turns those declarations into the metric
the paper reports in Sec. 4 — "the longest dependency chain in our code has
12 sequential steps" — by finding the longest read-after-write /
write-after-read / write-after-write chain.

The declared steps are data, not execution: the behavioral switch runs the
Python control function for speed, while the resource model analyses the
declaration.  Tests cross-check that every register touched by execution is
covered by a declared step, keeping the two views honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.p4.errors import PipelineError
from repro.p4.parser import Parser
from repro.p4.registers import RegisterFile
from repro.p4.tables import Table

__all__ = ["Step", "DependencyGraph", "PipelineProgram"]


@dataclass(frozen=True)
class Step:
    """One sequential step of a control block.

    Attributes:
        name: human-readable step name.
        reads: resource names (register, metadata or header fields) read.
        writes: resource names written.
    """

    name: str
    reads: FrozenSet[str]
    writes: FrozenSet[str]

    @staticmethod
    def make(name: str, reads: Iterable[str] = (), writes: Iterable[str] = ()) -> "Step":
        """Convenience constructor taking any iterables."""
        return Step(name=name, reads=frozenset(reads), writes=frozenset(writes))


class DependencyGraph:
    """Sequential steps plus the derived dependency DAG.

    Step ``j`` depends on an earlier step ``i`` when they touch the same
    resource and at least one of them writes it — the classic hazard triple
    (RAW, WAR, WAW) that forces the steps into different hardware stages.
    """

    def __init__(self, steps: Sequence[Step] = ()):
        self._steps: List[Step] = list(steps)

    def add(self, name: str, reads: Iterable[str] = (), writes: Iterable[str] = ()) -> Step:
        """Append a step to the sequential program."""
        step = Step.make(name, reads, writes)
        self._steps.append(step)
        return step

    def extend(self, steps: Iterable[Step]) -> None:
        """Append many steps."""
        self._steps.extend(steps)

    @property
    def steps(self) -> Tuple[Step, ...]:
        """The declared steps, in program order."""
        return tuple(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    @staticmethod
    def _conflicts(earlier: Step, later: Step) -> bool:
        return bool(
            (later.reads & earlier.writes)
            or (later.writes & earlier.reads)
            or (later.writes & earlier.writes)
        )

    def dependencies(self) -> List[Tuple[int, int]]:
        """All (earlier_index, later_index) hazard pairs."""
        pairs = []
        for j in range(len(self._steps)):
            for i in range(j):
                if self._conflicts(self._steps[i], self._steps[j]):
                    pairs.append((i, j))
        return pairs

    def longest_chain(self) -> Tuple[int, List[str]]:
        """Length and step names of the longest dependency chain.

        This is the number the paper maps to pipeline stages: a chain of
        length L needs at least L sequential stages on hardware.  Returns
        ``(0, [])`` for an empty program.
        """
        n = len(self._steps)
        if n == 0:
            return 0, []
        depth = [1] * n
        parent = [-1] * n
        for j in range(n):
            for i in range(j):
                if self._conflicts(self._steps[i], self._steps[j]):
                    if depth[i] + 1 > depth[j]:
                        depth[j] = depth[i] + 1
                        parent[j] = i
        best = max(range(n), key=lambda idx: depth[idx])
        chain = []
        node = best
        while node != -1:  # p4-ok: bounded control-graph walk at program install time, not per-packet
            chain.append(self._steps[node].name)
            node = parent[node]
        chain.reverse()
        return depth[best], chain

    def touched_resources(self) -> FrozenSet[str]:
        """Every resource named by any step."""
        names = set()
        for step in self._steps:
            names |= step.reads
            names |= step.writes
        return frozenset(names)


@dataclass
class PipelineProgram:
    """Everything a P4 program deploys onto one switch.

    Attributes:
        name: program name.
        parser: the parse graph applied to arriving packets.
        registers: declared register arrays.
        tables: declared match-action tables by name.
        ingress: the ingress control, called as ``ingress(ctx)`` where
            ``ctx`` is a :class:`repro.p4.switch.PacketContext`.
        egress: optional egress control.
        graph: declared sequential steps for dependency analysis.
        code_bytes: an optional estimate of program size contributed by the
            application (tables/actions), reported by the resource model.
    """

    name: str
    parser: Parser
    registers: RegisterFile = field(default_factory=RegisterFile)
    tables: Dict[str, Table] = field(default_factory=dict)
    ingress: Optional[Callable[..., None]] = None
    egress: Optional[Callable[..., None]] = None
    graph: DependencyGraph = field(default_factory=DependencyGraph)
    code_bytes: int = 0

    def add_table(self, table: Table) -> Table:
        """Register a table under its own name."""
        if table.name in self.tables:
            raise PipelineError(f"table {table.name!r} already declared")
        self.tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a declared table (control-plane handle)."""
        try:
            return self.tables[name]
        except KeyError:
            raise PipelineError(f"program {self.name!r} has no table {name!r}") from None

    def require_ingress(self) -> Callable[..., None]:
        """The ingress control; raises if the program declared none."""
        if self.ingress is None:
            raise PipelineError(f"program {self.name!r} has no ingress control")
        return self.ingress
