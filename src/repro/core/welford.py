# p4-ok-file: host-side floating-point ground truth (the Figure-5 validation host)
"""Floating-point reference statistics (Welford) and exact percentiles.

The paper explicitly *cannot* use Welford's online algorithm in the data
plane ("we cannot rely on prior online algorithms (e.g., [26]), because P4
does not support division and square root", Sec. 2).  We implement it anyway
— host-side, like the validation host in Figure 5 — as the ground truth the
experiments compare Stat4's integer algorithms against.

Nothing in this module is claimed to be P4-expressible; it is deliberately
excluded from the P4-expressibility lint applied to the rest of
:mod:`repro.core`.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = [
    "WelfordAccumulator",
    "RunningPercentile",
    "population_variance",
    "population_stddev",
    "exact_percentile",
]


@dataclass
class WelfordAccumulator:
    """Numerically stable online mean/variance (Welford 1962, the paper's [26]).

    Tracks the *population* variance to match the paper's definition
    ``σ²_X = E[X²] − E[X]²``.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for x in values:
            self.add(x)

    @property
    def variance(self) -> float:
        """Population variance (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "WelfordAccumulator") -> "WelfordAccumulator":
        """Combine two accumulators (Chan et al. parallel update)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self


def population_variance(values: Sequence[float]) -> float:
    """Batch population variance ``E[X²] − E[X]²`` (paper's definition)."""
    n = len(values)
    if n == 0:
        return 0.0
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / n


def population_stddev(values: Sequence[float]) -> float:
    """Batch population standard deviation."""
    return math.sqrt(population_variance(values))


def exact_percentile(values: Sequence[float], percent: float) -> float:
    """Exact percentile by sorting (nearest-rank, lower interpolation).

    Uses the same convention as the online tracker's ground truth: the
    percentile is the smallest value ``v`` such that at least
    ``percent/100`` of the observations are ``<= v``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 < percent < 100:
        raise ValueError(f"percent must be in (0, 100), got {percent}")
    ordered = sorted(values)
    rank = math.ceil(percent / 100.0 * len(ordered))
    index = max(rank - 1, 0)
    return ordered[index]


@dataclass
class RunningPercentile:
    """Exact running percentile over a growing multiset (sorted inserts).

    This is the host-side ground truth used by the Table-3 experiment: after
    each insertion it can report the exact current percentile in O(log n).
    """

    percent: float = 50.0
    _sorted: List[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        """Insert one observation, keeping the multiset sorted."""
        insort(self._sorted, x)

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return len(self._sorted)

    @property
    def value(self) -> float:
        """The exact current percentile (nearest-rank)."""
        return exact_percentile(self._sorted, self.percent)

    def rank_of(self, x: float) -> float:
        """Fraction of observations strictly below ``x``."""
        if not self._sorted:
            return 0.0
        return bisect_left(self._sorted, x) / len(self._sorted)

    def count_at_most(self, x: float) -> int:
        """Number of observations ``<= x``."""
        return bisect_right(self._sorted, x)
