"""Online integer moments of scaled distributions (paper Sec. 2).

P4 cannot divide, so Stat4 never computes the mean ``x̄ = Σxᵢ/N``.  Instead,
for a distribution ``X`` of ``N`` values it tracks the *scaled* distribution
``NX = {N·x₁, …, N·x_N}`` through two integers:

    ``Xsum   = Σ xᵢ``      (the mean of NX, exactly)
    ``Xsumsq = Σ xᵢ²``

from which the variance of NX is division-free::

    σ²_NX = N·Xsumsq − Xsum²

Anomaly checks compare *relative* quantities, so the scaling cancels: "if we
want to check that the average traffic rate matches a value T, we can track
packets per time interval as NX, and compare the mean of NX with N×T"; an
outlier test becomes ``N·xⱼ > Xsum + k·σ_NX``.

:class:`ScaledStats` maintains these integers online for the three update
patterns the paper describes:

- a brand-new value joins the distribution (``add_value``);
- a circular time window overwrites its oldest value (``replace_value`` —
  the Sec. 4 case study, and the source of the 12-step dependency chain);
- a *frequency* distribution increments one frequency (``observe_frequency``
  bookkeeping: ``Xsumsq += 2·x_k + 1``, N grows only when a new value
  appears).

The standard deviation is computed *lazily* (Sec. 3): reads are rare
compared to updates, and each σ read costs an MSB search.  The class counts
updates and σ recomputations so the lazy-vs-eager ablation bench can report
the amortization factor.

All arithmetic is restricted to P4-legal operations: adds, subtracts
(saturating at zero for the variance, as P4's ``|-|`` would), shifts,
comparisons, and multiplications that are either by compile-time constants
or explicitly routed through the active target profile's multiplier (exact
on bmv2, shift-approximated on Tofino-like targets via
:func:`repro.core.approx.approx_square`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.approx import approx_isqrt, approx_square
from repro.p4.values import active_target, checked_multiply

__all__ = [
    "exact_square",
    "square_for_target",
    "ScaledStats",
]


def exact_square(x: int) -> int:
    """Square via the target's runtime multiplier (legal on bmv2)."""
    return checked_multiply(x, x, runtime_operands=2)


def square_for_target() -> Callable[[int], int]:
    """The squaring routine the *active* target can express.

    bmv2 multiplies runtime values directly; Tofino-like targets fall back
    to the shift-based approximation (Sec. 2).
    """
    if active_target().runtime_multiply:
        return exact_square
    return approx_square


@dataclass
class ScaledStats:
    """Online ``N`` / ``Xsum`` / ``Xsumsq`` tracking with lazy σ.

    Args:
        square: squaring routine; defaults to whatever the active target
            profile supports at construction time.
        count_is_constant: declare that ``N`` is fixed at configuration time
            (true for full circular windows), which makes ``N·Xsumsq`` and
            ``N·xⱼ`` constant multiplies — expressible even on targets
            without a runtime multiplier.
    """

    square: Callable[[int], int] = field(default_factory=square_for_target)
    count_is_constant: bool = False
    count: int = 0
    xsum: int = 0
    xsumsq: int = 0
    updates: int = 0
    sd_recomputations: int = 0
    _cached_sd: int = 0
    _sd_dirty: bool = False

    # -- update patterns -----------------------------------------------------

    def add_value(self, x: int) -> None:
        """A new value of interest ``x`` joins the distribution.

        "When we receive a new value of interest x_k, we increase N by 1,
        and Xsum by x_k. We also modify the value of Xsumsq by adding the
        square of x_k" (Sec. 2).
        """
        self._check_value(x)
        self.count = self.count + 1
        self.xsum = self.xsum + x
        self.xsumsq = self.xsumsq + self.square(x)
        self._mark_dirty()

    def replace_value(self, old: int, new: int) -> None:
        """A circular window overwrites its oldest value; ``N`` is unchanged.

        This is the steady-state update of the Sec. 4 case study, where the
        switch "implements a circular buffer that by default stores 100
        8ms-long time intervals".
        """
        self._check_value(old)
        self._check_value(new)
        if self.count == 0:
            raise ValueError("cannot replace a value in an empty distribution")
        # Saturating adjustments: P4 would use |+| / |-| on the registers.
        self.xsum = max(self.xsum + new - old, 0)
        self.xsumsq = max(self.xsumsq + self.square(new) - self.square(old), 0)
        self._mark_dirty()

    def observe_frequency(self, old_count: int) -> int:
        """One frequency counter moves from ``old_count`` to ``old_count+1``.

        "we increase N only if x_k is equal to 0. Before incrementing x_k by
        1, we also increase Xsum by 1, and update Xsumsq by adding
        (x_k+1)² and subtracting its old value x_k²: Xsumsq += 2·x_k + 1"
        (Sec. 2).  The ``2·x_k`` is a one-bit shift — no multiplier needed.

        Returns:
            the new frequency ``old_count + 1`` (callers store it back into
            the frequency register).
        """
        self._check_value(old_count)
        if old_count == 0:
            self.count = self.count + 1
        self.xsum = self.xsum + 1
        self.xsumsq = self.xsumsq + (old_count << 1) + 1
        self._mark_dirty()
        return old_count + 1

    def observe_frequencies(self, old_count: int, repeat: int) -> int:
        """One counter moves from ``old_count`` to ``old_count + repeat``.

        The batched form of :meth:`observe_frequency`: ``repeat``
        consecutive increments of the *same* frequency cell telescope into
        closed forms —

            Σ_{i=0}^{repeat−1} (2·(old_count+i) + 1) = 2·old_count·repeat + repeat²

        so ``Xsum`` grows by ``repeat``, ``Xsumsq`` by the telescoped sum,
        and ``N`` grows by one iff the cell was empty.  Bit-identical to
        calling :meth:`observe_frequency` ``repeat`` times (the batched
        fast path's differential tests pin this down).  Host-side only: a
        P4 action sees one packet at a time and keeps the per-packet form.

        Returns:
            the new frequency ``old_count + repeat``.
        """
        self._check_value(old_count)
        if repeat < 0:
            raise ValueError("repeat count cannot be negative")
        if repeat == 0:
            return old_count
        if old_count == 0:
            self.count = self.count + 1
        self.xsum = self.xsum + repeat
        self.xsumsq = self.xsumsq + ((old_count * repeat) << 1) + repeat * repeat
        self.updates = self.updates + repeat
        self._sd_dirty = True
        return old_count + repeat

    def remove_value(self, x: int) -> None:
        """A value leaves the distribution (hash-table eviction, Sec. 5).

        Sparse hashed storage evicts a resident value to make room; the
        moments must forget it so registers keep matching the resident set.
        Saturating subtraction, like :meth:`replace_value`.
        """
        self._check_value(x)
        if self.count == 0:
            raise ValueError("cannot remove a value from an empty distribution")
        self.count = self.count - 1
        self.xsum = max(self.xsum - x, 0)
        self.xsumsq = max(self.xsumsq - self.square(x), 0)
        self._mark_dirty()

    # -- derived measures ------------------------------------------------------

    @property
    def mean_nx(self) -> int:
        """Mean of the scaled distribution ``NX`` — exactly ``Xsum``."""
        return self.xsum

    @property
    def variance_nx(self) -> int:
        """``σ²_NX = N·Xsumsq − Xsum²`` (saturating at zero).

        With exact squaring the expression is never negative; with the
        shift-approximated square it can transiently underflow, which P4
        saturating subtraction clamps to zero.
        """
        n_terms = 1 if self.count_is_constant else 2
        scaled = checked_multiply(self.count, self.xsumsq, runtime_operands=n_terms)
        return max(scaled - self.square(self.xsum), 0)

    @property
    def stddev_nx(self) -> int:
        """``σ_NX`` via the approximate square root, recomputed lazily.

        "our library updates the statistical measures only when a new value
        is added to the corresponding distribution … it amortizes the cost
        of identifying the most significant bit" (Sec. 3).
        """
        if self._sd_dirty:
            self._cached_sd = approx_isqrt(self.variance_nx)
            self._sd_dirty = False
            self.sd_recomputations = self.sd_recomputations + 1
        return self._cached_sd

    # -- anomaly comparisons (all relative, so the N-scaling cancels) ---------

    def scaled(self, x: int) -> int:
        """``N·x`` — a sample lifted onto the NX scale for comparisons."""
        n_terms = 1 if self.count_is_constant else 2
        return checked_multiply(self.count, x, runtime_operands=n_terms)

    def is_outlier(self, x: int, k_sigma: int = 2, margin: int = 0) -> bool:
        """The paper's normal-distribution outlier test.

        "we can check if the rate xⱼ at any time j is an outlier by testing
        if N·xⱼ > N·x̄ + 2σ_NX" (Sec. 2), where ``N·x̄ == Xsum``.
        ``k_sigma`` is a compile-time constant multiplier.

        ``margin`` adds ``N·margin`` to the threshold — i.e. requires the
        sample to exceed the mean by at least ``margin`` value units even
        when σ is (near) zero.  Degenerate distributions (all counts equal)
        otherwise flag every +1 fluctuation as a 2σ outlier.
        """
        threshold = self.xsum + k_sigma * self.stddev_nx
        if margin:
            threshold = threshold + self.scaled(margin)
        return self.scaled(x) > threshold

    def mean_exceeds(self, target: int) -> bool:
        """Check whether the true mean exceeds ``target`` without dividing.

        Compares ``Xsum`` (the mean of NX) against ``N·target``.
        """
        return self.xsum > self.scaled(target)

    def merged_with(self, other: "ScaledStats") -> "ScaledStats":
        """Combine two switches' moments (Sec. 5: cross-switch analyses).

        N, Xsum and Xsumsq are plain sums over the union of the two value
        sets, so a controller can aggregate register dumps from several
        switches into network-wide statistics *exactly* — one of the paper's
        future directions ("possibly performing statistical analyses across
        multiple switches").  Integer-only, though it runs controller-side.
        """
        merged = ScaledStats(
            square=self.square,
            count_is_constant=self.count_is_constant and other.count_is_constant,
        )
        merged.count = self.count + other.count
        merged.xsum = self.xsum + other.xsum
        merged.xsumsq = self.xsumsq + other.xsumsq
        merged._sd_dirty = True
        return merged

    @staticmethod
    def from_measures(n: int, xsum: int, xsumsq: int) -> "ScaledStats":
        """Rebuild a tracker from dumped registers (controller-side)."""
        stats = ScaledStats()
        stats.count = n
        stats.xsum = xsum
        stats.xsumsq = xsumsq
        stats._sd_dirty = True
        return stats

    def snapshot(self) -> dict:
        """A plain-dict view of the tracked integers (for digests/tests)."""
        return {
            "count": self.count,
            "xsum": self.xsum,
            "xsumsq": self.xsumsq,
            "variance_nx": self.variance_nx,
            "stddev_nx": self.stddev_nx,
        }

    # -- internals ---------------------------------------------------------

    def _mark_dirty(self) -> None:
        self.updates = self.updates + 1
        self._sd_dirty = True

    @staticmethod
    def _check_value(x: int) -> None:
        if not isinstance(x, int) or isinstance(x, bool):
            raise TypeError(f"values of interest are integers, got {type(x).__name__}")
        if x < 0:
            raise ValueError(
                f"values of interest are unsigned in P4 registers, got {x}"
            )
