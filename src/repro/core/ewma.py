"""Shift-based EWMA — the one-register alternative to the paper's window.

The Sec. 4 case study keeps a circular buffer of ``N`` interval counts
(``N × counter_width`` bits) to compute mean and σ.  The classic
space-saving alternative is an exponentially weighted moving average,
which P4 can maintain with *one shift and one subtract* per update when the
smoothing factor is a negative power of two::

    mean += (x - mean) >> k          # alpha = 2^-k

and likewise for the mean absolute deviation (an L1 stand-in for σ that
avoids squaring entirely).  The trade-off this enables the ablation to
measure: two registers instead of a window, but a *sliding* memory that an
attacker can boil slowly, whereas the paper's window forgets abruptly and
recovers its baseline after exactly N intervals.

Fixed-point scaling by ``2^frac_bits`` keeps the integer arithmetic
accurate for small inputs; everything is shifts, adds and compares.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EwmaDetector"]


@dataclass
class EwmaDetector:
    """EWMA mean + mean-absolute-deviation outlier detector.

    Args:
        alpha_shift: smoothing ``alpha = 2^-alpha_shift`` (3 → 1/8).
        k_dev: fire when ``x > mean + k_dev * deviation + margin``.
        margin: flat margin in value units.
        frac_bits: fixed-point fractional bits for the state registers.
        warmup: samples consumed before checks may fire.
    """

    alpha_shift: int = 3
    k_dev: int = 3
    margin: int = 1
    frac_bits: int = 8
    warmup: int = 8
    samples: int = 0
    mean_fp: int = 0
    deviation_fp: int = 0

    def update(self, x: int) -> bool:
        """Fold one sample in; returns True when it was an outlier.

        The check runs against the *pre-update* state (as the paper's check
        judges a new interval against the stored distribution), then the
        sample is absorbed.
        """
        if x < 0:
            raise ValueError("samples are unsigned")
        x_fp = x << self.frac_bits
        anomalous = False
        if self.samples >= self.warmup:
            threshold = (
                self.mean_fp
                + self.k_dev * self.deviation_fp
                + (self.margin << self.frac_bits)
            )
            anomalous = x_fp > threshold
        if self.samples == 0:
            self.mean_fp = x_fp
        else:
            # error may be negative: Python ints shift arithmetically, as a
            # P4 program would implement with a compare-and-subtract.
            error = x_fp - self.mean_fp
            self.mean_fp = self.mean_fp + (error >> self.alpha_shift)
            magnitude = error if error >= 0 else -error
            self.deviation_fp = self.deviation_fp + (
                (magnitude - self.deviation_fp) >> self.alpha_shift
            )
        self.samples = self.samples + 1
        return anomalous

    def update_many(self, values) -> int:
        """Fold a batch of samples in; returns how many were outliers.

        Every sample still runs the exact :meth:`update` recurrence (the
        EWMA state is a chain — each step reads the previous step's mean),
        but the batch loop amortizes the per-call dispatch for the
        software fast path.
        """
        anomalies = 0
        for x in values:
            if self.update(x):
                anomalies = anomalies + 1
        return anomalies

    @property
    def mean(self) -> int:
        """Current mean estimate (integer part)."""
        return self.mean_fp >> self.frac_bits

    @property
    def deviation(self) -> int:
        """Current mean-absolute-deviation estimate (integer part)."""
        return self.deviation_fp >> self.frac_bits

    @property
    def state_bits(self) -> int:
        """Register bits this detector needs (two fixed-point words)."""
        return 2 * (32 + self.frac_bits)
