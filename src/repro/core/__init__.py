"""The paper's core contribution: P4-expressible online statistics.

This package is the algorithmic heart of the reproduction — every function
here restricts itself to operations a P4 switch can perform (no division, no
square root, no data-dependent loops), with the single documented exception
of :mod:`repro.core.welford`, the host-side floating-point ground truth.
"""

from repro.core.approx import approx_isqrt, approx_isqrt_parts, approx_square
from repro.core.bitops import msb_position, msb_position_if_chain
from repro.core.ewma import EwmaDetector
from repro.core.outlier import (
    KSigmaRule,
    MeanTargetRule,
    StaticThresholdRule,
    Verdict,
)
from repro.core.percentile import (
    MultiPercentileTracker,
    PercentileTracker,
    true_percentile_of_freqs,
)
from repro.core.stats import ScaledStats, exact_square, square_for_target
from repro.core.welford import (
    RunningPercentile,
    WelfordAccumulator,
    exact_percentile,
    population_stddev,
    population_variance,
)

__all__ = [
    "approx_isqrt",
    "approx_isqrt_parts",
    "approx_square",
    "msb_position",
    "msb_position_if_chain",
    "EwmaDetector",
    "ScaledStats",
    "exact_square",
    "square_for_target",
    "PercentileTracker",
    "MultiPercentileTracker",
    "true_percentile_of_freqs",
    "KSigmaRule",
    "MeanTargetRule",
    "StaticThresholdRule",
    "Verdict",
    "WelfordAccumulator",
    "RunningPercentile",
    "exact_percentile",
    "population_stddev",
    "population_variance",
]
