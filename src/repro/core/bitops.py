"""Bit-level primitives used by the Stat4 statistics algorithms.

The paper's square-root approximation (Sec. 2, Figure 2) needs the position
of the most significant set bit (MSB).  P4 has no count-leading-zeros
instruction, so Stat4 "identifies MSBs using a sequence of ifs, which is a
costly operation" and amortizes it by computing the standard deviation
lazily (Sec. 3).  We provide:

- :func:`msb_position` — a *bounded, data-independent* binary search that a
  P4 compiler would unroll into a fixed chain of ifs (six comparisons for a
  64-bit value);
- :func:`msb_position_if_chain` — the literal linear if-chain the paper
  describes, returning both the result and the number of comparisons so the
  lazy-vs-eager ablation can report the cost being amortized;
- small helpers for masks and bit extraction used across the library.

Everything here uses only operations expressible in P4: comparisons, shifts,
masks, and wrapping adds.  No division, no loops whose trip count depends on
data.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "MAX_SUPPORTED_WIDTH",
    "msb_position",
    "msb_position_if_chain",
    "mask_of_width",
    "low_bits",
    "is_power_of_two",
]

#: Widest value the unrolled MSB searches support.  Stat4 registers are at
#: most 64 bits wide; variance values fit in 2*width+log2(N) bits, so the
#: experiment drivers cap widths accordingly.
MAX_SUPPORTED_WIDTH = 128

# Steps of the unrolled binary search, widest first.  Each entry is
# (threshold_shift, step): "if the value needs more than `threshold_shift`
# bits, add `step` to the position and shift right by `step`".
_BINARY_STEPS = (64, 32, 16, 8, 4, 2, 1)


def msb_position(value: int) -> int:
    """Position of the most significant set bit (0-indexed).

    This is the exponent of ``value``'s floating-point-style representation
    in Figure 2 of the paper.  Implemented as a fixed seven-step binary
    search — the data-independent form a P4 compiler can unroll.

    Args:
        value: a positive integer below ``2**MAX_SUPPORTED_WIDTH``.

    Returns:
        ``floor(log2(value))``.

    Raises:
        ValueError: if ``value`` is not positive or too wide.
    """
    if value <= 0:
        raise ValueError(f"msb_position requires a positive value, got {value}")
    if value >> MAX_SUPPORTED_WIDTH:
        raise ValueError(
            f"value wider than {MAX_SUPPORTED_WIDTH} bits is not supported"
        )
    position = 0
    remaining = value
    for step in _BINARY_STEPS:
        if remaining >> step:
            remaining = remaining >> step
            position = position + step
    return position


def msb_position_if_chain(value: int, width: int = 32) -> Tuple[int, int]:
    """MSB position via the literal linear if-chain Stat4 uses.

    "Stat4 currently identifies MSBs using a sequence of ifs, which is a
    costly operation" (Sec. 3).  This walks from the top bit down, one
    comparison per bit, and reports how many comparisons were evaluated so
    ablation benches can quantify the cost that lazy standard-deviation
    computation amortizes.

    Args:
        value: a positive integer that fits in ``width`` bits.
        width: register width; the chain has ``width`` comparisons at most.

    Returns:
        ``(position, comparisons)``.

    Raises:
        ValueError: if ``value`` is not positive or does not fit.
    """
    if value <= 0:
        raise ValueError(f"msb_position requires a positive value, got {value}")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    comparisons = 0
    for position in range(width - 1, -1, -1):
        comparisons = comparisons + 1
        if value >> position:
            return position, comparisons
    raise AssertionError("unreachable: value was checked to be positive")


def mask_of_width(width: int) -> int:
    """``2**width - 1`` — the all-ones mask of the given width."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def low_bits(value: int, width: int) -> int:
    """The low ``width`` bits of ``value``."""
    return value & mask_of_width(width)


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is an exact power of two (P4-expressible test)."""
    return value > 0 and (value & (value - 1)) == 0
