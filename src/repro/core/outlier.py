"""Anomaly rules built on the scaled statistics (paper Secs. 2 and 4).

A rule inspects a :class:`~repro.core.stats.ScaledStats` (and optionally a
new sample) and returns a :class:`Verdict`.  All comparisons are on the NX
scale, so no division is ever needed:

- :class:`KSigmaRule` — the paper's outlier test for (approximately) normal
  distributions: ``N·xⱼ > Xsum + k·σ_NX``.  The Sec. 4 case study uses it
  with ``k = 2`` ("the rate is higher than the mean of the stored
  distribution plus two standard deviations").
- :class:`MeanTargetRule` — "check that the average traffic rate matches a
  value T … compare the mean of NX with N×T".
- :class:`StaticThresholdRule` — plain thresholding on the raw sample, the
  baseline technique prior in-switch detectors use (Sec. 1: "they use basic
  algorithms such as thresholding").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.stats import ScaledStats

__all__ = [
    "Verdict",
    "AnomalyRule",
    "KSigmaRule",
    "MeanTargetRule",
    "StaticThresholdRule",
]


@dataclass(frozen=True)
class Verdict:
    """Outcome of an anomaly check.

    Attributes:
        anomalous: whether the rule fired.
        observed: the compared quantity, on the scale the rule used.
        threshold: the bound it was compared against (same scale).
    """

    anomalous: bool
    observed: int
    threshold: int


class AnomalyRule(Protocol):
    """Anything that can judge a new sample against tracked statistics."""

    def check(self, stats: ScaledStats, sample: int) -> Verdict:
        """Judge ``sample`` given the distribution summarized by ``stats``."""
        ...


@dataclass(frozen=True)
class KSigmaRule:
    """``N·xⱼ > Xsum + k·σ_NX`` — the paper's normal-distribution outlier test.

    ``k_sigma`` is a compile-time constant, so the multiply lowers to
    shift-and-add on any target.
    """

    k_sigma: int = 2
    min_samples: int = 2

    def check(self, stats: ScaledStats, sample: int) -> Verdict:
        """Fire when the sample exceeds the mean by ``k`` standard deviations.

        Refuses to fire before ``min_samples`` values are in the
        distribution, since σ of a single sample is degenerate.
        """
        threshold = stats.xsum + self.k_sigma * stats.stddev_nx
        if stats.count < self.min_samples:
            return Verdict(False, 0, threshold)
        observed = stats.scaled(sample)
        return Verdict(observed > threshold, observed, threshold)


@dataclass(frozen=True)
class MeanTargetRule:
    """Fire when the distribution mean drifts above a target ``T``.

    Compares ``Xsum`` (the mean of NX) with ``N·T``; ``T`` is installed by
    the control plane so it is a runtime value, but the multiply is by
    ``N`` which is constant for windowed distributions.
    """

    target: int

    def check(self, stats: ScaledStats, sample: int) -> Verdict:
        """Judge the tracked mean (``sample`` is ignored)."""
        threshold = stats.scaled(self.target)
        return Verdict(stats.xsum > threshold, stats.xsum, threshold)


@dataclass(frozen=True)
class StaticThresholdRule:
    """Plain ``xⱼ > T`` thresholding — the pre-Stat4 baseline detector."""

    threshold: int

    def check(self, stats: ScaledStats, sample: int) -> Verdict:
        """Judge the raw sample against the static threshold."""
        return Verdict(sample > self.threshold, sample, self.threshold)
