"""Online percentile tracking on frequency distributions (paper Sec. 2, Fig. 3).

The median of a frequency distribution ``F = {f₁, …, f_N}`` is maintained by
keeping, next to the tracked position ``m``:

- ``low``  — the combined frequency of all values *below* ``m``;
- ``high`` — the combined frequency of all values *above* ``m``.

Every new observation updates one frequency and one of the two combined
counters; the tracked position then *rebalances*: "if the combined frequency
of values higher (resp., smaller) than the current median becomes bigger
than the frequency of values lower (resp., higher) than the median plus the
median itself, we move the median towards the higher (resp., lower) values".

P4 has no iteration, and the paper refuses packet recirculation, so the
position moves **by at most one unit per packet** — skipping a run of
zero-frequency counters costs one packet per counter (Figure 3's example
needs two packets to move the median from 4 to 6).  The estimation error
this introduces is the subject of Table 3.

Arbitrary percentiles only change the comparison weights: "tracking the
90-th percentile p amounts to ensuring that the frequency of values lower
than p is nine times bigger than the frequency of values higher than p".
For a percentile ``p`` we use the compile-time constants ``a = p`` and
``b = 100 − p`` and move up when ``a·high > b·(low + f[m])``, down when
``b·low > a·(high + f[m])`` — which reduces to the paper's median rule at
``p = 50`` and to the 9:1 rule at ``p = 90``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = [
    "PercentileTracker",
    "MultiPercentileTracker",
    "true_percentile_of_freqs",
]


def true_percentile_of_freqs(freqs: Sequence[int], percent: int) -> int:
    """Exact percentile position of a frequency vector (ground truth).

    Returns the smallest index ``m`` whose cumulative frequency reaches
    ``percent/100`` of the total mass.  Used by tests and the Table-3
    harness; *not* P4 code (it iterates).

    Raises:
        ValueError: if the distribution is empty.
    """
    total = sum(freqs)
    if total == 0:
        raise ValueError("percentile of an empty frequency distribution")
    if not 0 < percent < 100:
        raise ValueError(f"percent must be in (0, 100), got {percent}")
    # Smallest m with cumulative*100 >= percent*total, done in integers.
    cumulative = 0
    for index, f in enumerate(freqs):
        cumulative += f
        if cumulative * 100 >= percent * total:
            return index
    return len(freqs) - 1


class PercentileTracker:
    """One-step-per-packet online percentile over a bounded value domain.

    Args:
        domain_size: number of possible values of interest (the paper's
            ``N`` for frequency use cases — e.g. 100 packet types, 65536 for
            a 16-bit header field).  Values are integers in
            ``[0, domain_size)``.
        percent: tracked percentile as an integer in ``(0, 100)``; 50 is the
            median.
        steps_per_update: how many single-unit moves a packet may trigger.
            The paper's data-plane implementation uses 1 (no recirculation);
            larger values exist for the ablation bench only.
    """

    def __init__(
        self,
        domain_size: int,
        percent: int = 50,
        steps_per_update: int = 1,
    ):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        if not 0 < percent < 100:
            raise ValueError(f"percent must be in (0, 100), got {percent}")
        if steps_per_update < 1:
            raise ValueError("steps_per_update must be at least 1")
        self.domain_size = domain_size
        self.percent = percent
        self.steps_per_update = steps_per_update
        # Compile-time comparison weights: a·high vs b·low balance.
        self._weight_low = percent
        self._weight_high = 100 - percent
        self.freqs: List[int] = [0] * domain_size
        self.low = 0
        self.high = 0
        self.total = 0
        self.moves = 0
        self._position: Optional[int] = None

    # -- observation ----------------------------------------------------------

    def observe(self, value: int) -> None:
        """Count one occurrence of ``value`` and rebalance by ≤ one step."""
        if not 0 <= value < self.domain_size:
            raise ValueError(
                f"value {value} outside tracked domain [0, {self.domain_size})"
            )
        self.freqs[value] += 1
        self.total += 1
        if self._position is None:
            # First observation: the tracked position starts on it.
            self._position = value
        elif value < self._position:
            self.low += 1
        elif value > self._position:
            self.high += 1
        self.rebalance(self.steps_per_update)

    def tick(self) -> None:
        """A packet with no value of interest still helps the position move.

        "The error would be even lower when switches receive packets not
        carrying values of interest, as those packets do contribute to
        moving the median" (Sec. 2).
        """
        self.rebalance(self.steps_per_update)

    # -- rebalancing ------------------------------------------------------------

    def _should_move_up(self) -> bool:
        at = self.freqs[self._position]
        return self._weight_low * self.high > self._weight_high * (self.low + at)

    def _should_move_down(self) -> bool:
        at = self.freqs[self._position]
        return self._weight_high * self.low > self._weight_low * (self.high + at)

    def rebalance(self, max_steps: int = 1) -> int:
        """Move the tracked position by at most ``max_steps`` single units.

        Returns the number of unit moves performed.  With ``max_steps=1``
        this is exactly the bounded, loop-free work P4 can do per packet.
        """
        if self._position is None:
            return 0
        steps = 0
        while steps < max_steps:  # p4-ok: bounded by compile-time steps_per_update
            if self._should_move_up() and self._position < self.domain_size - 1:
                # Everything at the old position now lies below the tracker.
                self.low += self.freqs[self._position]
                self._position += 1
                self.high -= self.freqs[self._position]
                steps += 1
            elif self._should_move_down() and self._position > 0:
                self.high += self.freqs[self._position]
                self._position -= 1
                self.low -= self.freqs[self._position]
                steps += 1
            else:
                break
        self.moves += steps
        return steps

    # -- reads -------------------------------------------------------------------

    @property
    def value(self) -> int:
        """The tracked percentile position.

        Raises:
            ValueError: before any observation.
        """
        if self._position is None:
            raise ValueError("no values observed yet")
        return self._position

    @property
    def has_value(self) -> bool:
        """Whether at least one observation has arrived."""
        return self._position is not None

    def true_value(self) -> int:
        """Exact percentile of the accumulated frequencies (ground truth)."""
        return true_percentile_of_freqs(self.freqs, self.percent)

    def error_units(self) -> int:
        """Absolute distance (in value units) from the exact percentile."""
        return abs(self.value - self.true_value())

    def check_invariants(self) -> None:
        """Assert the low/high bookkeeping matches the frequency vector.

        Used by property-based tests; raises AssertionError on violation.
        """
        if self._position is None:
            assert self.low == 0 and self.high == 0 and self.total == sum(self.freqs)
            return
        expected_low = sum(self.freqs[: self._position])
        expected_high = sum(self.freqs[self._position + 1 :])
        assert self.low == expected_low, (self.low, expected_low)
        assert self.high == expected_high, (self.high, expected_high)
        assert self.total == sum(self.freqs)


class MultiPercentileTracker:
    """Several percentiles of one distribution, tracked simultaneously.

    "We support the online computation of any percentile by only adjusting
    the comparisons" (Sec. 2) — and nothing stops a switch from running
    several comparison sets against the *same* frequency registers: each
    extra percentile costs two combined-frequency counters and one position
    register, not another copy of the distribution.  This mirrors that
    layout: one shared frequency vector, one (low, high, position) triple
    per tracked percentile.

    Args:
        domain_size: number of possible values.
        percents: the tracked percentiles, e.g. ``(50, 90, 99)``.
        steps_per_update: per-packet movement budget of each tracker.
    """

    def __init__(
        self,
        domain_size: int,
        percents: Sequence[int] = (50, 90, 99),
        steps_per_update: int = 1,
    ):
        if not percents:
            raise ValueError("track at least one percentile")
        if len(set(percents)) != len(percents):
            raise ValueError("duplicate percentiles")
        self.domain_size = domain_size
        self._trackers = {
            percent: PercentileTracker(
                domain_size, percent=percent, steps_per_update=steps_per_update
            )
            for percent in percents
        }
        # Share one frequency vector (one register array on the switch).
        self.freqs: List[int] = [0] * domain_size
        for tracker in self._trackers.values():
            tracker.freqs = self.freqs

    def observe(self, value: int) -> None:
        """Count one occurrence; every percentile's bookkeeping updates."""
        if not 0 <= value < self.domain_size:
            raise ValueError(
                f"value {value} outside tracked domain [0, {self.domain_size})"
            )
        self.freqs[value] += 1
        for tracker in self._trackers.values():
            tracker.total += 1
            if tracker._position is None:
                tracker._position = value
            elif value < tracker._position:
                tracker.low += 1
            elif value > tracker._position:
                tracker.high += 1
            tracker.rebalance(tracker.steps_per_update)

    def tick(self) -> None:
        """Value-free packet: rebalance every tracker one step."""
        for tracker in self._trackers.values():
            tracker.tick()

    def value(self, percent: int) -> int:
        """The tracked position of one percentile."""
        try:
            return self._trackers[percent].value
        except KeyError:
            raise ValueError(f"percentile {percent} is not tracked") from None

    def values(self) -> dict:
        """All tracked positions, ``{percent: value}``."""
        return {
            percent: tracker.value
            for percent, tracker in self._trackers.items()
            if tracker.has_value
        }

    def tracker(self, percent: int) -> PercentileTracker:
        """Access one underlying tracker (tests, invariant checks)."""
        return self._trackers[percent]
