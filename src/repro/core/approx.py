"""Approximate square root and squaring using only shifts (paper Sec. 2).

P4 targets have no square-root instruction and hardware targets cannot even
square a runtime value.  The paper replaces both with bit-string
manipulations:

- :func:`approx_isqrt` implements the Figure-2 algorithm: write ``y`` in a
  floating-point-style form (exponent = MSB position, mantissa = the bits
  after the MSB), shift the *concatenated* (exponent ‖ mantissa) bit string
  right by one, and read the result back as an integer.  Halving the
  exponent makes the MSB of the result exact; halving the mantissa linearly
  interpolates between consecutive even powers of two.  The paper's worked
  example — ``approx_isqrt(106) == 10`` — is a unit test.
- :func:`approx_square` is the analogous shift-based squaring fallback for
  targets without a runtime multiplier, as the paper suggests citing Ding et
  al.: double the exponent and keep the first-order mantissa term
  (``(1+f)^2 ≈ 1 + 2f``).

Both functions use only MSB search, shifts, masks and adds — all
P4-expressible.  Exact references for the experiment harnesses live in
:mod:`repro.core.welford`, which is not claimed to be P4-expressible.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.bitops import msb_position

__all__ = [
    "approx_isqrt",
    "approx_isqrt_parts",
    "approx_square",
    "approx_square_error_bound",
]


def approx_isqrt_parts(y: int) -> Tuple[int, int, int]:
    """The Figure-2 decomposition steps, exposed for tests and teaching.

    Args:
        y: a positive integer.

    Returns:
        ``(exponent, shifted_exponent, shifted_mantissa)`` where
        ``shifted_mantissa`` is the mantissa field *after* the one-bit right
        shift of the concatenated (exponent ‖ mantissa) string.  The mantissa
        field keeps its original width ``exponent``.
    """
    exponent = msb_position(y)
    if exponent == 0:
        return 0, 0, 0
    mantissa = y - (1 << exponent)
    # Shifting (exponent ++ mantissa) right by one: the exponent's low bit
    # becomes the mantissa's new top bit, and the mantissa drops its low bit.
    shifted_exponent = exponent >> 1
    carried_bit = exponent & 1
    shifted_mantissa = (carried_bit << (exponent - 1)) | (mantissa >> 1)
    return exponent, shifted_exponent, shifted_mantissa


def approx_isqrt(y: int) -> int:
    """Approximate integer square root via the paper's Figure-2 algorithm.

    The result's MSB is placed at half the input's MSB position (exact for
    even powers of two); the leftmost bits of the shifted mantissa fill the
    bits below it, interpolating between ``2**(2k)`` squares.

    Examples from the paper: ``approx_isqrt(106) == 10`` (√106 ≈ 10.3) and
    ``approx_isqrt(3) == 1`` (the small-number footnote of Table 2).

    Args:
        y: a non-negative integer.

    Returns:
        an integer approximation of ``sqrt(y)``; exact when ``y`` is an even
        power of two, within ~6.1 % relative error otherwise (see Table 2 of
        EXPERIMENTS.md for the measured error profile).

    Raises:
        ValueError: if ``y`` is negative.
    """
    if y < 0:
        raise ValueError(f"square root of negative value {y}")
    if y == 0:
        return 0
    exponent, shifted_exponent, shifted_mantissa = approx_isqrt_parts(y)
    if exponent == 0:
        return 1
    # Set the MSB of the result at the shifted exponent's position, then copy
    # the leftmost `shifted_exponent` bits of the (width-`exponent`) mantissa
    # field into the least significant bits.
    top_bits = shifted_mantissa >> (exponent - shifted_exponent)
    return (1 << shifted_exponent) | top_bits


def approx_square(x: int) -> int:
    """Approximate ``x*x`` using shifts only (hardware-target fallback).

    "Some hardware switches do not support the squaring of values unknown at
    compile time. Similarly to our square root approximation, we can
    approximate squaring by using shifting operations" (Sec. 2).  Writing
    ``x = 2**e * (1 + f)``, this returns ``2**(2e) * (1 + 2f)``, the
    first-order expansion of ``(1+f)**2``: the exponent doubles (one shift)
    and the mantissa contributes twice (one shift and an add).

    Args:
        x: a non-negative integer.

    Returns:
        an integer approximation of ``x*x``; exact for powers of two,
        underestimating by at most 25 % (at ``f → 1``).

    Raises:
        ValueError: if ``x`` is negative.
    """
    if x < 0:
        raise ValueError(f"cannot square negative value {x}")
    if x == 0:
        return 0
    exponent = msb_position(x)
    mantissa = x - (1 << exponent)
    return (1 << (exponent + exponent)) + (mantissa << (exponent + 1))


def approx_square_error_bound() -> Tuple[int, int]:
    """Worst-case relative underestimation of :func:`approx_square`.

    ``(1 + 2f) / (1 + f)**2`` is minimized at ``f → 1`` where it equals 3/4,
    i.e. a 25 % underestimate.  Returned as the integer fraction ``(1, 4)``
    (this module stays float-free to remain P4-expressible); tests and the
    squaring ablation assert the measured error stays within the bound.
    """
    return (1, 4)
