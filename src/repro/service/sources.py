# p4-ok-file — host-side ingest sources for the streaming service.
"""Batch sources feeding the streaming detection pipeline.

A *source* is an iterable of :class:`~repro.stat4.batch.PacketBatch`es —
the producer stage of the service pipeline.  Four concrete shapes:

- :class:`ScenarioSource` — replay a labeled catalog scenario (the same
  traces the quality floors gate), optionally rate-controlled and looped;
- :class:`TraceSource` — replay a pcap capture through the standard
  parser at a controlled rate;
- :class:`SyntheticSource` — a deterministic generator (multiplicative
  walk over a destination domain with a configurable hot-key share), the
  workload the throughput bench drives;
- :class:`FeedSource` — a line-delimited TCP feed: one JSON object per
  line is synthesized into a packet, accumulated into batches.

Rate control is cumulative, not per-batch: batch *i* is released when
``packets_emitted_so_far / rate_pps`` seconds have elapsed since the
stream started, so short stalls are caught up instead of compounding.
All clocks/sleeps are injectable for tests.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.p4.parser import standard_parser
from repro.stat4.batch import PacketBatch
from repro.traffic.builders import udp_to
from repro.traffic.trace import PacketTrace

__all__ = [
    "RatePacer",
    "ListSource",
    "SyntheticSource",
    "ScenarioSource",
    "TraceSource",
    "FeedSource",
]

#: Default batch size for every source (matches the scenario replay).
DEFAULT_BATCH_SIZE = 2048


class RatePacer:
    """Cumulative packet pacing against a target rate.

    ``pace(n)`` sleeps until the stream's cumulative packet count divided
    by ``rate_pps`` has elapsed since the first call; a rate of 0 (or
    None) disables pacing entirely.
    """

    def __init__(
        self,
        rate_pps: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if rate_pps < 0:
            raise ValueError("rate_pps cannot be negative")
        self.rate_pps = rate_pps
        self._clock = clock
        self._sleep = sleep
        self._start: Optional[float] = None
        self._emitted = 0

    def pace(self, packets: int) -> None:
        """Block until ``packets`` more packets are due for release."""
        if self.rate_pps <= 0:
            return
        if self._start is None:
            self._start = self._clock()
        self._emitted += packets
        due = self._start + self._emitted / self.rate_pps
        delay = due - self._clock()
        if delay > 0:
            self._sleep(delay)


class ListSource:
    """Pre-built batches, emitted as-is (bench and test harness source)."""

    def __init__(self, batches: Iterable[PacketBatch], pacer: Optional[RatePacer] = None):
        self._batches = list(batches)
        self._pacer = pacer

    def __iter__(self) -> Iterator[PacketBatch]:
        for batch in self._batches:
            if self._pacer is not None:
                self._pacer.pace(len(batch))
            yield batch


class SyntheticSource:
    """Deterministic synthetic traffic: a multiplicative walk plus a hot key.

    Every packet is a UDP datagram; destinations walk ``0x0A000000 |
    (i * 2654435761 % dst_values)`` (the bench workload), except every
    ``hot_every``-th packet which hits ``hot_dst`` — a standing heavy key
    that drives k·σ alerts once the detector's ``min_samples`` gate opens.
    Timestamps advance ``timestamp_gap`` seconds per packet.

    Args:
        packets: total packets to emit (per loop iteration).
        batch_size: packets per emitted batch.
        dst_values: size of the walked destination domain.
        hot_every: emit the hot destination every N packets (0 disables).
        loop: repeat the stream forever (an always-on soak source).
    """

    def __init__(
        self,
        packets: int = 20_000,
        batch_size: int = DEFAULT_BATCH_SIZE,
        dst_values: int = 1024,
        hot_every: int = 16,
        hot_dst: int = 0x0A000007,
        timestamp_gap: float = 1e-4,
        loop: bool = False,
        pacer: Optional[RatePacer] = None,
    ):
        if packets <= 0:
            raise ValueError("packets must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.packets = packets
        self.batch_size = batch_size
        self.dst_values = dst_values
        self.hot_every = hot_every
        self.hot_dst = hot_dst
        self.timestamp_gap = timestamp_gap
        self.loop = loop
        self._pacer = pacer

    def _build_batch(self, start: int, count: int, epoch: int) -> PacketBatch:
        parser = standard_parser()
        base = epoch * self.packets
        packets = []
        timestamps = []
        for offset in range(count):
            index = start + offset
            if self.hot_every and index % self.hot_every == 0:
                dst = self.hot_dst
            else:
                dst = 0x0A000000 | ((index * 2654435761) % self.dst_values)
            when = (base + index) * self.timestamp_gap
            packets.append(udp_to(dst, created_at=when))
            timestamps.append(when)
        return PacketBatch.from_packets(packets, parser, timestamps=timestamps)

    def __iter__(self) -> Iterator[PacketBatch]:
        epoch = 0
        while True:
            for start in range(0, self.packets, self.batch_size):
                count = min(self.batch_size, self.packets - start)
                batch = self._build_batch(start, count, epoch)
                if self._pacer is not None:
                    self._pacer.pace(count)
                yield batch
            if not self.loop:
                return
            epoch += 1


class TraceSource:
    """Replay a :class:`PacketTrace` (or pcap file) as parsed batches."""

    def __init__(
        self,
        trace: Optional[PacketTrace] = None,
        path: Optional[str] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        loop: bool = False,
        pacer: Optional[RatePacer] = None,
    ):
        if (trace is None) == (path is None):
            raise ValueError("pass exactly one of trace= or path=")
        self.trace = trace if trace is not None else PacketTrace.load(path)
        self.batch_size = batch_size
        self.loop = loop
        self._pacer = pacer
        self._cached: Optional[List[PacketBatch]] = None

    def _batches(self) -> List[PacketBatch]:
        # Parse once, replay many times: batches are read-only to every
        # engine, so a looped replay reuses the parsed columnar form.
        if self._cached is None:
            parser = standard_parser()
            self._cached = list(
                self.trace.iter_packet_batches(parser, self.batch_size)
            )
        return self._cached

    def __iter__(self) -> Iterator[PacketBatch]:
        while True:
            for batch in self._batches():
                if self._pacer is not None:
                    self._pacer.pace(len(batch))
                yield batch
            if not self.loop:
                return


class ScenarioSource(TraceSource):
    """Replay a labeled adversarial scenario from the catalog.

    Exposes the underlying :class:`~repro.scenarios.truth.LabeledScenario`
    so the service can install the scenario's own detector configuration
    and the smoke gate can score ``/alerts`` against the ground truth.
    """

    def __init__(
        self,
        name: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        loop: bool = False,
        pacer: Optional[RatePacer] = None,
    ):
        from repro.scenarios import build_scenario

        self.scenario = build_scenario(name)
        super().__init__(
            trace=self.scenario.trace,
            batch_size=batch_size,
            loop=loop,
            pacer=pacer,
        )


class FeedSource:
    """A line-delimited TCP feed synthesized into packet batches.

    Listens on ``host:port`` (port 0 picks a free one; read it back from
    :attr:`address`), accepts connections one at a time, and parses one
    JSON object per line::

        {"dst": "10.0.0.9", "ts": 1.25, "src": "1.1.1.1", "sport": 4, "dport": 9}

    ``dst`` is required (dotted quad or integer); ``ts`` defaults to a
    synthetic clock advancing ``timestamp_gap`` per packet so a feed
    without timestamps still drives time-series detectors.  Lines that
    fail to parse are counted in :attr:`bad_lines` and skipped.  Batches
    flush at ``batch_size`` lines or on connection close; iteration ends
    when a client disconnects (unless ``serve_forever``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        timestamp_gap: float = 1e-4,
        serve_forever: bool = False,
        accept_timeout: float = 0.5,
    ):
        self.batch_size = batch_size
        self.timestamp_gap = timestamp_gap
        self.serve_forever = serve_forever
        self.accept_timeout = accept_timeout
        self.bad_lines = 0
        self._closed = False
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(accept_timeout)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

    def close(self) -> None:
        """Stop accepting; the current iteration ends after its batch."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    @staticmethod
    def _ip_to_int(value: Any) -> int:
        if isinstance(value, int):
            return value
        parts = str(value).split(".")
        if len(parts) != 4:
            raise ValueError(f"bad IPv4 address {value!r}")
        result = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"bad IPv4 address {value!r}")
            result = (result << 8) | octet
        return result

    def _packet_of(self, line: bytes, fallback_ts: float):
        record = json.loads(line.decode("utf-8"))
        if not isinstance(record, dict) or "dst" not in record:
            raise ValueError("feed line must be an object with a 'dst'")
        when = float(record.get("ts", fallback_ts))
        return (
            udp_to(
                self._ip_to_int(record["dst"]),
                src_ip=self._ip_to_int(record.get("src", "1.1.1.1")),
                sport=int(record.get("sport", 40000)),
                dport=int(record.get("dport", 9000)),
                created_at=when,
            ),
            when,
        )

    def _drain_connection(self, conn: socket.socket) -> Iterator[PacketBatch]:
        parser = standard_parser()
        packets: List[Any] = []
        timestamps: List[float] = []
        synthetic_ts = 0.0
        buffer = b""
        conn.settimeout(self.accept_timeout)
        while not self._closed:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    packet, when = self._packet_of(line, synthetic_ts)
                except (ValueError, json.JSONDecodeError):
                    self.bad_lines += 1
                    continue
                synthetic_ts = when + self.timestamp_gap
                packets.append(packet)
                timestamps.append(when)
                if len(packets) >= self.batch_size:
                    yield PacketBatch.from_packets(
                        packets, parser, timestamps=timestamps
                    )
                    packets, timestamps = [], []
        if packets:
            yield PacketBatch.from_packets(packets, parser, timestamps=timestamps)

    def __iter__(self) -> Iterator[PacketBatch]:
        try:
            while not self._closed:
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with conn:
                    for batch in self._drain_connection(conn):
                        yield batch
                if not self.serve_forever:
                    break
        finally:
            self.close()
