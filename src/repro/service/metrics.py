# p4-ok-file — host-side service telemetry, not data-plane code.
"""Telemetry for the streaming detection service.

Everything the ``/stats`` and ``/healthz`` endpoints report lives here,
behind one lock: the ingest worker writes after every batch, HTTP handler
threads read snapshots concurrently.  Three primitives:

- :class:`EwmaRate` — an exponentially-weighted packets/sec estimate whose
  smoothing adapts to the inter-batch gap (``alpha = 1 − exp(−dt/tau)``),
  so bursty and steady feeds decay on the same wall-clock horizon;
- :class:`LatencyRing` — a fixed-capacity ring of batch latencies
  (enqueue → applied) answering percentile queries from a sorted copy;
  bounded memory no matter how long the server runs;
- :class:`AlertLog` — a bounded ring of recent alert digests with
  monotonically increasing cursors, so ``/alerts?since=N`` is an O(new)
  incremental read and a long-poll can wait on the log's condition.

All clocks are injectable (``time.monotonic`` by default) so the health
threshold and EWMA decay are unit-testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EwmaRate", "LatencyRing", "AlertLog", "ServiceMetrics"]


class EwmaRate:
    """Exponentially-weighted rate estimate (events per second).

    Args:
        tau: decay time constant in seconds — observations older than a
            few ``tau`` stop influencing the estimate.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, tau: float = 2.0, clock: Callable[[], float] = time.monotonic):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self._clock = clock
        self._last: Optional[float] = None
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current estimate (0.0 before any observation)."""
        return self._value

    def observe(self, count: int, now: Optional[float] = None) -> float:
        """Fold ``count`` events arriving now into the estimate."""
        when = self._clock() if now is None else now
        if self._last is None:
            # First observation: no interval to rate over yet; seed with
            # zero so the estimate ramps up rather than spiking.
            self._last = when
            return self._value
        dt = when - self._last
        self._last = when
        if dt <= 0:
            # Same-instant batches: fold into an effectively instantaneous
            # burst by attributing them to a minimal interval.
            dt = 1e-9
        instantaneous = count / dt
        alpha = 1.0 - math.exp(-dt / self.tau)
        self._value += alpha * (instantaneous - self._value)
        return self._value


class LatencyRing:
    """Fixed-capacity ring buffer of latency samples (seconds)."""

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: List[float] = []
        self._next = 0
        self._recorded = 0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def recorded(self) -> int:
        """Total samples ever recorded (≥ ``len(self)``)."""
        return self._recorded

    def record(self, seconds: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
        self._next = (self._next + 1) % self.capacity
        self._recorded += 1

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0–100) over the retained window.

        Nearest-rank on a sorted copy — the ring holds at most
        ``capacity`` floats, so the sort is bounded regardless of uptime.
        Returns None when no samples have been recorded.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]


class AlertLog:
    """Bounded ring of recent alert digests with since-cursor reads.

    Cursors increase monotonically for the lifetime of the service; the
    ring retains the most recent ``capacity`` records.  A reader that
    fell more than ``capacity`` behind simply resumes from the oldest
    retained record (the response's ``dropped`` count says how many it
    missed).  ``wait_since`` blocks on the log's condition for long-poll
    support.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: List[Tuple[int, Dict[str, Any]]] = []
        self._cond = threading.Condition()
        self._next_cursor = 0

    @property
    def cursor(self) -> int:
        """One past the newest record's cursor (0 when empty)."""
        with self._cond:
            return self._next_cursor

    def append(self, digest: Any) -> int:
        """Record one digest; returns its cursor."""
        record = {
            "name": digest.name,
            "fields": dict(digest.fields),
            "timestamp": digest.timestamp,
        }
        with self._cond:
            cursor = self._next_cursor
            self._next_cursor += 1
            self._records.append((cursor, record))
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
            self._cond.notify_all()
        return cursor

    def since(self, cursor: int = 0, limit: int = 0) -> Dict[str, Any]:
        """Records with cursor ≥ ``cursor`` (capped at ``limit`` if > 0).

        Returns ``{"cursor": next, "dropped": n, "alerts": [...]}`` where
        ``next`` is what a caller passes to resume, and ``dropped`` counts
        records that aged out of the ring before this read.
        """
        with self._cond:
            oldest = self._records[0][0] if self._records else self._next_cursor
            dropped = max(0, oldest - cursor)
            fresh = [
                {"cursor": c, **record}
                for c, record in self._records
                if c >= cursor
            ]
            if limit > 0:
                fresh = fresh[:limit]
            next_cursor = (fresh[-1]["cursor"] + 1) if fresh else max(cursor, oldest)
            return {"cursor": next_cursor, "dropped": dropped, "alerts": fresh}

    def wait_since(
        self, cursor: int = 0, timeout: float = 0.0, limit: int = 0
    ) -> Dict[str, Any]:
        """Like :meth:`since` but blocks up to ``timeout`` for new records."""
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._cond:
            while self._next_cursor <= cursor:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return self.since(cursor, limit)


class ServiceMetrics:
    """Aggregated service counters, written by the worker, read by HTTP.

    One lock guards everything: the worker takes it once per *batch*
    (not per packet), so contention with handler threads is negligible
    next to kernel time.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        rate_tau: float = 2.0,
        latency_capacity: int = 512,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self.started = clock()
        self.packets = 0
        self.batches = 0
        self.alerts = 0
        self.dropped_batches = 0
        self.dropped_packets = 0
        self.kernels: Dict[str, int] = {}
        self.last_ingest: Optional[float] = None
        self.rate = EwmaRate(tau=rate_tau, clock=clock)
        self.batch_latency = LatencyRing(latency_capacity)
        self.alert_latency = LatencyRing(latency_capacity)

    def record_batch(
        self,
        packets: int,
        digests: int,
        kernels: Dict[str, int],
        enqueued_at: float,
        applied_at: Optional[float] = None,
    ) -> None:
        """Fold one applied batch into the counters (worker side)."""
        when = self._clock() if applied_at is None else applied_at
        latency = max(0.0, when - enqueued_at)
        with self._lock:
            self.packets += packets
            self.batches += 1
            self.alerts += digests
            for name, count in kernels.items():
                self.kernels[name] = self.kernels.get(name, 0) + count
            self.last_ingest = when
            self.rate.observe(packets, now=when)
            self.batch_latency.record(latency)
            if digests:
                # Alert latency: queue wait + kernel time for a batch that
                # raised at least one digest — the end-to-end lag between a
                # packet entering the service and its alert being visible.
                self.alert_latency.record(latency)

    def record_drop(self, packets: int) -> None:
        """Count one batch shed by the drop backpressure policy."""
        with self._lock:
            self.dropped_batches += 1
            self.dropped_packets += packets

    def last_ingest_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last applied batch (None before the first)."""
        with self._lock:
            if self.last_ingest is None:
                return None
            when = self._clock() if now is None else now
            return max(0.0, when - self.last_ingest)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of every counter (HTTP side)."""
        with self._lock:
            p50 = self.batch_latency.percentile(50)
            p99 = self.batch_latency.percentile(99)
            ap99 = self.alert_latency.percentile(99)
            return {
                "uptime_seconds": max(0.0, self._clock() - self.started),
                "packets": self.packets,
                "batches": self.batches,
                "alerts": self.alerts,
                "dropped_batches": self.dropped_batches,
                "dropped_packets": self.dropped_packets,
                "kernels": dict(self.kernels),
                "pps_ewma": self.rate.value,
                "batch_latency_p50_ms": None if p50 is None else p50 * 1e3,
                "batch_latency_p99_ms": None if p99 is None else p99 * 1e3,
                "alert_latency_p99_ms": None if ap99 is None else ap99 * 1e3,
                "latency_samples": self.batch_latency.recorded,
            }
