# p4-ok-file — host-side service package, not data-plane code.
"""Always-on streaming detection service (``repro serve``).

The serving stack over the batch pipeline: rate-controlled sources
(:mod:`~repro.service.sources`) feed a bounded-queue producer/worker
pipeline with explicit backpressure (:mod:`~repro.service.pipeline`),
telemetry lives in :mod:`~repro.service.metrics`, and
:class:`~repro.service.server.DetectionService` wraps it all in a
stdlib-only HTTP API (``/healthz``, ``/stats``, ``/alerts``,
``/bindings``).  See ``docs/SERVICE.md``.
"""

from repro.service.metrics import AlertLog, EwmaRate, LatencyRing, ServiceMetrics
from repro.service.pipeline import POLICIES, ServicePipeline
from repro.service.server import (
    RETUNE_FIELDS,
    DetectionService,
    default_bindings,
    default_config,
    install_signal_handlers,
    spec_to_json,
)
from repro.service.sources import (
    FeedSource,
    ListSource,
    RatePacer,
    ScenarioSource,
    SyntheticSource,
    TraceSource,
)

__all__ = [
    "AlertLog",
    "EwmaRate",
    "LatencyRing",
    "ServiceMetrics",
    "POLICIES",
    "ServicePipeline",
    "RETUNE_FIELDS",
    "DetectionService",
    "default_bindings",
    "default_config",
    "install_signal_handlers",
    "spec_to_json",
    "FeedSource",
    "ListSource",
    "RatePacer",
    "ScenarioSource",
    "SyntheticSource",
    "TraceSource",
]
