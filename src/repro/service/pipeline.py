# p4-ok-file — host-side streaming pipeline, not data-plane code.
"""The bounded-queue ingest pipeline behind ``repro serve``.

Two threads around one ``queue.Queue(maxsize=N)``:

- the **producer** iterates a source (see :mod:`repro.service.sources`)
  and enqueues ``(batch, enqueued_at)`` pairs;
- the **worker** drains the queue through a handler (the detection
  engine) and folds the result into :class:`ServiceMetrics`.

The handler's kernel counters flow through untouched, so ``/stats``
shows exactly which ingest kernels a served workload hits — including
``merge_parallel`` once a tracked+alerting binding fans out under the
parallel engine's merge mode (previously those bindings pinned one core
in the serial exact loop).

Backpressure is an explicit policy, not an accident of buffer growth:

- ``"block"`` — the producer waits for queue space (in short timed puts
  so shutdown never deadlocks against a full queue);
- ``"drop"`` — the producer sheds the batch immediately and counts it
  (``dropped_batches``/``dropped_packets`` in ``/stats``), the mode for
  live feeds where stale packets are worse than missing ones.

Lifecycle states, in order: ``starting`` (no batch applied yet) →
``ready`` → possibly ``degraded`` (last-ingest age above threshold —
the source stalled or the worker wedged) → ``drained`` (finite source
exhausted and fully applied) or ``stopped``; ``error`` if either thread
died on an exception (kept in :attr:`error` for ``/healthz`` to
surface).  ``/healthz`` maps ready/drained to 200, everything else 503.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Iterable, Optional

from repro.service.metrics import ServiceMetrics
from repro.stat4.batch import PacketBatch

__all__ = ["ServicePipeline", "POLICIES"]

POLICIES = ("block", "drop")

#: Sentinel the producer enqueues after a finite source exhausts.
_DONE = object()

#: Granularity of every blocking queue operation; bounds how long a
#: thread can be unresponsive to the stop event.
_TICK = 0.2


class ServicePipeline:
    """Producer/worker pipeline over a bounded queue.

    Args:
        source: iterable of :class:`PacketBatch` (a sources.py class).
        handler: called with each batch from the worker thread; returns
            an object with ``digests`` and ``kernels`` attributes (a
            ``BatchResult``) or None.
        queue_depth: bound on in-flight batches (the memory ceiling).
        policy: ``"block"`` or ``"drop"`` (see module docstring).
        metrics: shared telemetry; a fresh one is created if omitted.
        degraded_after: seconds of ingest silence before ``/healthz``
            flips to degraded (0 disables the check).
        clock: injectable monotonic time source for tests.
    """

    def __init__(
        self,
        source: Iterable[PacketBatch],
        handler: Callable[[PacketBatch], Any],
        queue_depth: int = 8,
        policy: str = "block",
        metrics: Optional[ServiceMetrics] = None,
        degraded_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick one of {POLICIES}")
        self.source = source
        self.handler = handler
        self.policy = policy
        self.degraded_after = degraded_after
        self.metrics = metrics if metrics is not None else ServiceMetrics(clock=clock)
        self._clock = clock
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._source_done = threading.Event()
        self._producer: Optional[threading.Thread] = None
        self._worker: Optional[threading.Thread] = None
        self.error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServicePipeline":
        """Launch the producer and worker threads (idempotent)."""
        if self._producer is not None:
            return self
        self._producer = threading.Thread(
            target=self._produce, name="repro-service-producer", daemon=True
        )
        self._worker = threading.Thread(
            target=self._consume, name="repro-service-worker", daemon=True
        )
        self._worker.start()
        self._producer.start()
        return self

    def stop(self) -> None:
        """Ask both threads to exit; safe from signal handlers."""
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for both threads; True when both exited in time."""
        deadline = None if timeout is None else self._clock() + timeout
        for thread in (self._producer, self._worker):
            if thread is None:
                continue
            remaining = None if deadline is None else max(0.0, deadline - self._clock())
            thread.join(remaining)
        return not any(
            thread is not None and thread.is_alive()
            for thread in (self._producer, self._worker)
        )

    def run(self, timeout: Optional[float] = None) -> bool:
        """start() + join() — the synchronous path for finite sources."""
        self.start()
        return self.join(timeout)

    # -- observability -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Batches currently waiting (approximate, by design of Queue)."""
        return self._queue.qsize()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    @property
    def drained(self) -> bool:
        """True once a finite source was fully applied."""
        return self._drained.is_set()

    def state(self) -> str:
        """One of starting/ready/degraded/drained/stopped/error."""
        if self.error is not None:
            return "error"
        if self._drained.is_set():
            return "drained"
        if self._stop.is_set():
            return "stopped"
        age = self.metrics.last_ingest_age()
        if age is None:
            return "starting"
        if self.degraded_after > 0 and age > self.degraded_after:
            return "degraded"
        return "ready"

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload (state + queue depth + ingest age)."""
        state = self.state()
        age = self.metrics.last_ingest_age()
        return {
            "state": state,
            "ok": state in ("ready", "drained"),
            "queue_depth": self.queue_depth,
            "queue_capacity": self._queue.maxsize,
            "last_ingest_age_seconds": age,
            "degraded_after_seconds": self.degraded_after,
            "policy": self.policy,
            "error": None if self.error is None else repr(self.error),
        }

    # -- producer ----------------------------------------------------------

    def _enqueue_blocking(self, item: Any) -> bool:
        """Timed-put loop honouring the stop event; True when enqueued."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=_TICK)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self) -> None:
        try:
            for batch in self.source:
                if self._stop.is_set():
                    return
                item = (batch, self._clock())
                if self.policy == "drop":
                    try:
                        self._queue.put_nowait(item)
                    except queue.Full:
                        self.metrics.record_drop(len(batch))
                elif not self._enqueue_blocking(item):
                    return
            self._source_done.set()
            self._enqueue_blocking(_DONE)
        except BaseException as exc:  # noqa: BLE001 - surfaced via /healthz
            self.error = exc
            self._stop.set()

    # -- worker ------------------------------------------------------------

    def _consume(self) -> None:
        try:
            while True:
                try:
                    item = self._queue.get(timeout=_TICK)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
                if item is _DONE:
                    self._drained.set()
                    return
                batch, enqueued_at = item
                result = self.handler(batch)
                digests = getattr(result, "digests", None) or ()
                kernels = getattr(result, "kernels", None) or {}
                self.metrics.record_batch(
                    packets=len(batch),
                    digests=len(digests),
                    kernels=kernels,
                    enqueued_at=enqueued_at,
                )
        except BaseException as exc:  # noqa: BLE001 - surfaced via /healthz
            self.error = exc
            self._stop.set()
