# p4-ok-file — host-side HTTP serving layer, not data-plane code.
"""The always-on detection server behind ``repro serve``.

:class:`DetectionService` composes the pieces the batch pipeline already
has — a fresh :class:`~repro.stat4.library.Stat4` with binding entries
installed through :class:`~repro.stat4.runtime.Stat4Runtime`, a
:class:`~repro.netsim.switchnode.SwitchNode`, and a scalar
:class:`~repro.stat4.batch.BatchEngine` or shm
:class:`~repro.stat4.parallel.ParallelBatchEngine` — under the bounded
:class:`~repro.service.pipeline.ServicePipeline`, and exposes a stdlib
``ThreadingHTTPServer`` JSON API (no dependencies beyond the standard
library):

- ``GET /healthz`` — liveness: pipeline state (200 only for ready or
  drained), queue depth, last-ingest age;
- ``GET /stats``   — cumulative counters, per-kernel event counts,
  packets/sec EWMA, p50/p99 batch latency, alert-latency p99;
- ``GET /alerts``  — recent k·σ digests; ``?since=<cursor>`` resumes an
  incremental read, ``&timeout=<s>`` long-polls for new ones;
- ``GET /bindings`` / ``POST /bindings`` — inspect and retune the live
  binding-table entries through ``Stat4Runtime.rebind`` (the paper's
  runtime control-plane knob, now over HTTP);
- ``POST /shutdown`` — graceful stop (same path as SIGTERM).

Concurrency model: exactly one worker thread touches the detector, so
batch processing needs no internal locking; ``POST /bindings`` runs on an
HTTP thread and takes :attr:`DetectionService._detector_lock` against the
worker's ingest — a rebind lands *between* batches, preserving the
data-plane atomicity the batch engine documents.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.service.metrics import AlertLog, ServiceMetrics
from repro.service.pipeline import ServicePipeline
from repro.stat4.batch import BatchEngine, PacketBatch
from repro.stat4.binding import MATCH_ALL, BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.distributions import TrackSpec
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.parallel import ParallelBatchEngine, shutdown_pools
from repro.stat4.runtime import BindingHandle, Stat4Runtime
from repro.traffic.columns import ensure_termination_cleanup

__all__ = [
    "DetectionService",
    "default_config",
    "default_bindings",
    "spec_to_json",
    "install_signal_handlers",
    "RETUNE_FIELDS",
]

#: Spec fields ``POST /bindings`` may rewrite, with their coercions.
#: Structural fields (dist, kind, extract) stay immutable over HTTP — those
#: change *what* a slot tracks, which is a redeploy, not a retune.
RETUNE_FIELDS: Dict[str, Callable[[Any], Any]] = {
    "k_sigma": int,
    "min_samples": int,
    "margin": int,
    "cooldown": float,
    "interval": float,
    "window": int,
    "alert": str,
    "percentile_alert": str,
    "percent": lambda v: None if v is None else int(v),
    "accept_lo": int,
    "accept_hi": int,
}

#: Upper bound on an ``/alerts`` long-poll, regardless of the query.
MAX_LONG_POLL = 30.0


def default_config() -> Stat4Config:
    """The detector geometry for sources without their own (feed, synthetic)."""
    return Stat4Config(counter_num=2, counter_size=256, binding_stages=2)


def default_bindings() -> List[Tuple[int, BindingMatch, TrackSpec]]:
    """Default detectors: per-interval rate spikes + per-/24-host imbalance.

    Stage 0 tracks the packet rate over one-second intervals with a 2σ
    spike check; stage 1 tracks the frequency of the destination's last
    octet with a 2σ imbalance check — together the two Table-1 staples,
    one binding per stage (each stage yields at most one rule per packet).
    """
    runtime = Stat4Runtime()  # message-only: used purely for spec builders
    return [
        (
            0,
            MATCH_ALL,
            runtime.rate_over_time(
                dist=0, interval=1.0, k_sigma=2, alert="traffic_spike", min_samples=4
            ),
        ),
        (
            1,
            MATCH_ALL,
            runtime.frequency_of(
                dist=1,
                extract=ExtractSpec.field("ipv4.dst", mask=0xFF),
                k_sigma=2,
                alert="imbalance",
                min_samples=32,
                margin=2,
            ),
        ),
    ]


def spec_to_json(spec: TrackSpec) -> Dict[str, Any]:
    """A JSON-ready view of one binding's :class:`TrackSpec`."""
    return {
        "dist": spec.dist,
        "kind": spec.kind.value,
        "extract": {
            "source": spec.extract.source,
            "shift": spec.extract.shift,
            "mask": spec.extract.mask,
            "constant_value": spec.extract.constant_value,
        },
        "interval": spec.interval,
        "k_sigma": spec.k_sigma,
        "alert": spec.alert,
        "percent": spec.percent,
        "window": spec.window,
        "percentile_alert": spec.percentile_alert,
        "min_samples": spec.min_samples,
        "margin": spec.margin,
        "cooldown": spec.cooldown,
        "accept_lo": spec.accept_lo,
        "accept_hi": spec.accept_hi,
        "generation": spec.generation,
    }


class RetuneError(ValueError):
    """A ``POST /bindings`` request that cannot be applied (HTTP 400)."""


class DetectionService:
    """The long-running detection server (see module docstring).

    Args:
        source: iterable of batches (see :mod:`repro.service.sources`).
            A :class:`~repro.service.sources.ScenarioSource` brings its own
            detector configuration, used unless overridden here.
        config: detector geometry (default: the source's, else
            :func:`default_config`).
        bindings: ``(stage, match, spec)`` entries (same defaulting).
        engine: ``"scalar"`` or ``"parallel"``.
        backend: batch backend (``auto``/``numpy``/``compiled``/``python``).
        workers / pool: parallel-engine fan-out shape.
        staleness: merge-engine reconciliation for tracked+alerting
            bindings (``"exact"`` is bit-identical to scalar;
            ``"bounded"`` skips the replay fallback for throughput).
        queue_depth / policy / degraded_after: pipeline knobs (see
            :class:`ServicePipeline`).
        with_http: serve the JSON API (off for in-process bench use).
        host / port: HTTP bind address (port 0 picks a free port; read
            the result back from :attr:`address`).
        clock: injectable monotonic clock for tests.
    """

    def __init__(
        self,
        source: Iterable[PacketBatch],
        config: Optional[Stat4Config] = None,
        bindings: Optional[Sequence[Tuple[int, BindingMatch, TrackSpec]]] = None,
        engine: str = "scalar",
        backend: str = "auto",
        workers: int = 4,
        pool: str = "process",
        staleness: str = "exact",
        queue_depth: int = 8,
        policy: str = "block",
        degraded_after: float = 5.0,
        with_http: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        alert_capacity: int = 1024,
        name: str = "service",
        clock: Callable[[], float] = time.monotonic,
    ):
        scenario = getattr(source, "scenario", None)
        if config is None:
            config = scenario.config if scenario is not None else default_config()
        if bindings is None:
            bindings = (
                list(scenario.bindings) if scenario is not None else default_bindings()
            )
        self.source = source
        self.scenario = scenario
        self.config = config
        self.name = name
        self.engine_kind = engine
        self.backend = backend
        self._clock = clock
        self._detector_lock = threading.Lock()

        # Detector: the exact construction the scenario scorer uses, so the
        # served pipeline and the gated replay run identical code.
        registers = RegisterFile()
        self.stat4 = Stat4(config, registers)
        self.runtime = Stat4Runtime(self.stat4)
        self.handles: List[BindingHandle] = []
        for stage, match, spec in bindings:
            handle, _ = self.runtime.bind(stage, match, spec)
            self.handles.append(handle)
        program = PipelineProgram(
            name=f"service_{name}",
            parser=standard_parser(),
            registers=registers,
            ingress=self.stat4.process,
        )
        self.stat4.install_into(program)
        self.node = SwitchNode(f"service-{name}", program)
        # Unwired CPU port: digests still come back from ingest_batch,
        # which is what the alert log records.
        Network().add(self.node)

        if engine == "scalar":
            self.engine: BatchEngine = BatchEngine(self.stat4, backend=backend)
        elif engine == "parallel":
            self.engine = ParallelBatchEngine(
                self.stat4,
                backend=backend,
                workers=workers,
                executor=pool,
                staleness=staleness,
            )
        else:
            raise ValueError(f"unknown engine {engine!r}; pick scalar or parallel")
        self.staleness = staleness

        self.metrics = ServiceMetrics(clock=clock)
        self.alerts = AlertLog(capacity=alert_capacity)
        self.pipeline = ServicePipeline(
            source,
            self._handle_batch,
            queue_depth=queue_depth,
            policy=policy,
            metrics=self.metrics,
            degraded_after=degraded_after,
            clock=clock,
        )

        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        if with_http:
            self._httpd = _ServiceHTTPServer((host, port), _ServiceHandler)
            self._httpd.service = self

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound HTTP ``(host, port)``; None without HTTP."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]

    @property
    def url(self) -> Optional[str]:
        address = self.address
        if address is None:
            return None
        return f"http://{address[0]}:{address[1]}"

    def start(self) -> "DetectionService":
        """Install the shm sweep chain, start HTTP and the pipeline."""
        # The columns SIGTERM sweep must sit underneath any handler the CLI
        # chains on top — a served process dying mid-ingest must not leave
        # /dev/shm segments behind (see install_signal_handlers).
        ensure_termination_cleanup()
        if self._httpd is not None and self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._http_thread.start()
        self.pipeline.start()
        return self

    def stop(self) -> None:
        """Request a graceful stop (signal-handler safe: just sets events)."""
        self.pipeline.stop()

    @property
    def stopping(self) -> bool:
        return self.pipeline.stopping

    @property
    def drained(self) -> bool:
        return self.pipeline.drained

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the pipeline threads exit (finite sources drain)."""
        return self.pipeline.join(timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Stop everything: pipeline, HTTP, and the engine's pool segments."""
        self.pipeline.stop()
        self.pipeline.join(timeout)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout)
                self._http_thread = None
        if isinstance(self.engine, ParallelBatchEngine):
            # Sweep any segment a killed-mid-batch fan-out left registered;
            # pools themselves are process-global and swept at exit.
            from repro.traffic.columns import release_all_segments

            release_all_segments()

    # -- the worker-side handler ------------------------------------------

    def _handle_batch(self, batch: PacketBatch) -> Any:
        with self._detector_lock:
            result = self.node.ingest_batch(batch, self.engine)
        for digest in result.digests:
            self.alerts.append(digest)
        return result

    # -- control-plane (HTTP-facing) views --------------------------------

    def health(self) -> Dict[str, Any]:
        payload = self.pipeline.health()
        payload["service"] = self.name
        payload["engine"] = self.engine_kind
        payload["alert_cursor"] = self.alerts.cursor
        return payload

    def stats(self) -> Dict[str, Any]:
        payload = self.metrics.snapshot()
        payload["service"] = self.name
        payload["engine"] = self.engine_kind
        payload["backend"] = getattr(self.engine, "backend", self.backend)
        payload["state"] = self.pipeline.state()
        payload["queue_depth"] = self.pipeline.queue_depth
        payload["alert_cursor"] = self.alerts.cursor
        if isinstance(self.engine, ParallelBatchEngine):
            # Merge-engine observability: how tracked+alerting chunks were
            # reconciled since start (adopt/fold are the fast paths; a high
            # replay share means chunks keep crossing alert boundaries).
            payload["staleness"] = self.staleness
            payload["merge_chunks"] = {
                "adopted": self.engine.merge_adopted_chunks,
                "folded": self.engine.merge_folded_chunks,
                "replayed": self.engine.merge_replayed_chunks,
                "stale": self.engine.merge_stale_chunks,
            }
        return payload

    def describe_bindings(self) -> Dict[str, Any]:
        with self._detector_lock:
            entries = [
                {
                    "id": index,
                    "stage": handle.stage,
                    "entry_id": handle.entry_id,
                    "match": {
                        "ether_type": handle.match.ether_type,
                        "dst_prefix": handle.match.dst_prefix,
                        "protocol": handle.match.protocol,
                        "tcp_flags": handle.match.tcp_flags,
                    },
                    "spec": spec_to_json(handle.spec),
                }
                for index, handle in enumerate(self.handles)
            ]
        return {"bindings": entries, "retune_fields": sorted(RETUNE_FIELDS)}

    def retune(self, binding_id: int, overrides: Dict[str, Any]) -> Dict[str, Any]:
        """Rewrite one live binding's spec (the ``POST /bindings`` core).

        Only :data:`RETUNE_FIELDS` may change; the rebind lands between
        batches (detector lock) and bumps the spec generation, so the slot
        resets exactly as the runtime API documents.
        """
        if not overrides:
            raise RetuneError("no retune fields given")
        coerced: Dict[str, Any] = {}
        for key, value in overrides.items():
            if key not in RETUNE_FIELDS:
                raise RetuneError(
                    f"field {key!r} is not retunable "
                    f"(allowed: {', '.join(sorted(RETUNE_FIELDS))})"
                )
            try:
                coerced[key] = RETUNE_FIELDS[key](value)
            except (TypeError, ValueError) as exc:
                raise RetuneError(f"bad value for {key!r}: {exc}") from exc
        with self._detector_lock:
            if not 0 <= binding_id < len(self.handles):
                raise RetuneError(
                    f"binding id {binding_id} out of range "
                    f"[0, {len(self.handles)})"
                )
            handle = self.handles[binding_id]
            try:
                new_spec = replace(handle.spec, **coerced)
            except Exception as exc:  # ValueRangeError and friends
                raise RetuneError(str(exc)) from exc
            new_handle, _ = self.runtime.rebind(handle, spec=new_spec)
            self.handles[binding_id] = new_handle
        return {
            "id": binding_id,
            "stage": new_handle.stage,
            "entry_id": new_handle.entry_id,
            "spec": spec_to_json(new_handle.spec),
        }

    def recent_alerts(
        self, since: int = 0, timeout: float = 0.0, limit: int = 0
    ) -> Dict[str, Any]:
        timeout = min(max(timeout, 0.0), MAX_LONG_POLL)
        if timeout > 0:
            return self.alerts.wait_since(since, timeout=timeout, limit=limit)
        return self.alerts.since(since, limit=limit)


# -- signal wiring -------------------------------------------------------------


def install_signal_handlers(
    service: DetectionService,
    signals: Sequence[int] = (signal.SIGINT, signal.SIGTERM),
) -> Dict[int, Any]:
    """Graceful-then-forceful shutdown, chained over the shm sweep.

    The columns module's SIGTERM sweep is installed first (via
    ``ensure_termination_cleanup`` in :meth:`DetectionService.start`), and
    this handler chains on top of whatever was installed:

    - first signal: request a graceful stop — the serve loop drains,
      ``close()`` runs, and the CLI sweeps the pools on the way out;
    - second signal (the operator insists): sweep pools and shm segments
      *now*, then fall through to the previous disposition, which for
      SIGTERM is the columns sweep chain ending in process death.

    Returns the previous handlers (main-thread only; callers in tests use
    it to restore).  Raises ValueError off the main thread, like
    ``signal.signal`` itself.
    """
    previous: Dict[int, Any] = {}

    def _handle(signum: int, frame: Any) -> None:
        if service.stopping:
            shutdown_pools()
            prior = previous.get(signum)
            if callable(prior):
                prior(signum, frame)
            elif prior is signal.SIG_IGN:
                return
            else:
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)
        else:
            service.stop()

    for signum in signals:
        previous[signum] = signal.signal(signum, _handle)
    return previous


# -- HTTP plumbing -------------------------------------------------------------


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: "DetectionService"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; every response is JSON."""

    server: _ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- helpers -----------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> Dict[str, str]:
        raw = parse_qs(urlsplit(self.path).query)
        return {key: values[-1] for key, values in raw.items()}

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RetuneError(f"request body is not JSON: {exc}") from exc

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # HTTP access noise stays out of the server log

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        route = urlsplit(self.path).path.rstrip("/") or "/"
        if route == "/healthz":
            payload = service.health()
            self._send_json(200 if payload["ok"] else 503, payload)
        elif route == "/stats":
            self._send_json(200, service.stats())
        elif route == "/alerts":
            query = self._query()
            try:
                since = int(query.get("since", 0))
                timeout = float(query.get("timeout", 0.0))
                limit = int(query.get("limit", 0))
            except ValueError as exc:
                self._send_json(400, {"error": f"bad query parameter: {exc}"})
                return
            self._send_json(200, service.recent_alerts(since, timeout, limit))
        elif route == "/bindings":
            self._send_json(200, service.describe_bindings())
        else:
            self._send_json(404, {"error": f"no such endpoint {route!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        route = urlsplit(self.path).path.rstrip("/") or "/"
        if route == "/shutdown":
            service.stop()
            self._send_json(200, {"stopping": True})
        elif route == "/bindings":
            try:
                body = self._read_body()
                if not isinstance(body, dict) or "id" not in body:
                    raise RetuneError('body must be {"id": N, "spec": {...}}')
                overrides = body.get("spec")
                if not isinstance(overrides, dict):
                    raise RetuneError('body must carry a "spec" object')
                result = service.retune(int(body["id"]), overrides)
            except RetuneError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, result)
        else:
            self._send_json(404, {"error": f"no such endpoint {route!r}"})
