# p4-ok-file — host-side batch code generator; the per-packet P4 semantics
# it specializes live (and are linted) in repro.stat4.library, and the
# generated sources themselves are audited by ST510/ST511.
# race-ok file: the library is engine-private (one per BatchEngine); the
# parallel engine hands each worker its own engine instance.
"""Generated monomorphic batch kernels — the compiled tier.

The paper's pitch is that Stat4 runs at line rate because the restricted
operation set (adds, shifts, compares, table lookups) compiles to cheap
hardware stages.  The software analogue of "compiles" is taken literally
here: for each of the ten constructible kernel shapes (``DistributionKind``
× tracker × k-sigma × percentile-alert, exactly the lattice the ST5xx
concurrency pass enumerates), this module *generates Python source* for a
monomorphic batch kernel — every spec constant (cell domain, width mask,
k·σ, cooldown, percentile weights, interval) baked in as a literal, every
polymorphic dispatch of the interpreted tier (attribute lookups, None
checks, register accounting) specialized away — and ``exec``-compiles it
once per ``(shape, constants, generation)``.

Two interchangeable backends execute the generated source:

- **generated-numpy** (always available): the ``exec``-compiled function
  itself.  Array-shaped kernels (the tally and tracked frequency folds,
  the time-series close scan) are fully vectorized; the alerting/merge
  and sparse shapes run a specialized per-packet loop over plain Python
  ints — no ``ScaledStats``/register indirection per packet.
- **numba** (optional, the ``jit`` packaging extra): array-shaped kernels
  are additionally wrapped in ``numba.njit``.  Import failure, compile
  failure, or a mid-run execution failure all degrade cleanly to the
  generated-numpy function for that kernel (counted in
  :attr:`CompiledKernelLibrary.jit_failures`).

Exactness contract: a compiled kernel leaves *bit-identical* state to the
scalar library — registers, moments (including the lazy ``_cached_sd`` /
``_sd_dirty`` pair), tracker state, cooldown stamps, digests and their
order.  The hypothesis three-way differential (scalar vs numpy vs
compiled) in ``tests/stat4/test_compiled.py`` gates this, shape by shape.

The generated source stays inside the restricted op set the analyzer can
audit — integer add/sub/shift/mask, compile-time-constant multiplies,
``checked_multiply`` for the two runtime multiplies of the σ²·N² check,
``approx_isqrt``, and a short whitelist of vector primitives.  Rule ST510
walks every generated kernel's AST against that whitelist, and ST511
cross-checks each kernel's ``# parallel-mode:`` pragma against the
dataflow-derived eligibility table, so fan-out stays derived from
analysis rather than a hand table (see
:func:`repro.analysis.concurrency.check_generated_kernels`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.concurrency import KernelShape, enumerate_shapes
from repro.core.approx import approx_isqrt
from repro.p4.values import checked_multiply
from repro.stat4.distributions import DistributionKind, TrackSpec
from repro.stat4.library import _to_us

try:  # pragma: no cover - exercised by environment
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

try:  # pragma: no cover - numba is an optional extra (``pip install .[jit]``)
    import numba as _numba

    HAS_NUMBA = True
except Exception:  # pragma: no cover - any import-time failure counts
    _numba = None
    HAS_NUMBA = False


#: Kernel families whose generated source is pure array code (no callable
#: arguments, no Python-object state) and therefore eligible for numba.
_JIT_FAMILIES = ("frequency", "tracked")

#: Cap on cached compiled kernels; rebinds mint new generations, and the
#: stale entries are purged eagerly, so this only guards pathological
#: constant churn.
_CACHE_LIMIT = 64


@dataclass(frozen=True)
class KernelConstants:
    """Every compile-time constant a generated kernel bakes in.

    One value per knob the scalar library reads per packet; part of the
    kernel cache key, so two specs sharing a shape and these constants
    share one compiled kernel.
    """

    size: int
    width_mask: int
    k_sigma: int
    min_samples: int
    margin: int
    cooldown: float
    wl: int
    wh: int
    interval: float
    generation: int

    @classmethod
    def of_spec(cls, spec: TrackSpec, config, width: int) -> "KernelConstants":
        percent = spec.percent if spec.percent is not None else 0
        return cls(
            size=config.counter_size,
            width_mask=(1 << width) - 1,
            k_sigma=spec.k_sigma,
            min_samples=spec.min_samples,
            margin=spec.margin,
            cooldown=max(config.alert_cooldown, spec.cooldown),
            wl=percent,
            wh=100 - percent,
            interval=spec.interval if spec.interval is not None else 0.0,
            generation=spec.generation,
        )


# -- source templates -----------------------------------------------------------------
#
# Every template replicates one scalar update path of repro.stat4.library
# statement for statement; the comments in the templates name the scalar
# method each block mirrors.  Constants are interpolated with repr() so
# floats round-trip exactly.


def _header(shape: KernelShape, mode: str) -> List[str]:
    return [
        "# generated by repro.stat4.compiled — do not edit",
        f"# shape: {shape.key}",
        f"# parallel-mode: {mode}",
    ]


def _fold_lines(c: KernelConstants, pad: str) -> List[str]:
    """The telescoped ``observe_frequencies`` fold over a bincount tally.

    Mirrors ``BatchEngine._apply_counts``: closed-form moment deltas per
    unique value, with a per-occurrence replay for cells that would wrap
    the register width mid-run.  Emits moment *deltas* (the engine folds
    them into the Python-bignum ScaledStats fields) plus the touched
    cell indices.
    """
    p = pad
    return [
        f"{p}d_count = 0",
        f"{p}d_xsum = 0",
        f"{p}d_xsumsq = 0",
        f"{p}d_updates = 0",
        f"{p}if obs.shape[0] == 0:",
        f"{p}    hit = np.empty(0, np.int64)",
        f"{p}else:",
        f"{p}    counts = np.bincount(obs, minlength={c.size})",
        f"{p}    hit = np.nonzero(counts)[0]",
        f"{p}    old = cells[hit]",
        f"{p}    rep = counts[hit]",
        f"{p}    wrap = (old + rep) > {c.width_mask}",
        f"{p}    safe = ~wrap",
        f"{p}    if bool(safe.any()):",
        f"{p}        old_s = old[safe]",
        f"{p}        rep_s = rep[safe]",
        f"{p}        d_count = d_count + int((old_s == 0).sum())",
        f"{p}        grew = int(rep_s.sum())",
        f"{p}        d_xsum = d_xsum + grew",
        f"{p}        d_updates = d_updates + grew",
        f"{p}        d_xsumsq = d_xsumsq + int(((old_s * rep_s) << 1).sum())",
        f"{p}        d_xsumsq = d_xsumsq + int((rep_s * rep_s).sum())",
        f"{p}        cells[hit[safe]] = old_s + rep_s",
        f"{p}    if bool(wrap.any()):",
        f"{p}        wrap_at = np.nonzero(wrap)[0]",
        f"{p}        for k in range(wrap_at.shape[0]):",
        f"{p}            j = int(wrap_at[k])",
        f"{p}            current = int(old[j])",
        f"{p}            for _ in range(int(rep[j])):",
        f"{p}                if current == 0:",
        f"{p}                    d_count = d_count + 1",
        f"{p}                d_xsum = d_xsum + 1",
        f"{p}                d_xsumsq = d_xsumsq + (current << 1) + 1",
        f"{p}                d_updates = d_updates + 1",
        f"{p}                current = (current + 1) & {c.width_mask}",
        f"{p}            cells[int(hit[j])] = current",
    ]


def _frequency_source(shape: KernelShape, c: KernelConstants) -> str:
    """Plain dense frequency (no tracker, no alerts): the tally fold."""
    lines = _header(shape, "tally")
    lines += [
        "def kernel(vals, cells):",
        "    present = vals[vals >= 0]",
        f"    in_dom = present < {c.size}",
        "    dropped = int(present.shape[0]) - int(in_dom.sum())",
        "    obs = present[in_dom]",
    ]
    lines += _fold_lines(c, "    ")
    lines += ["    return dropped, d_count, d_xsum, d_xsumsq, d_updates, hit"]
    return "\n".join(lines) + "\n"


def _tracked_source(shape: KernelShape, c: KernelConstants) -> str:
    """Tracked frequency without alerts: fold + the event stream for the
    engine's vectorized tracker walk (``-1`` marks a tick)."""
    lines = _header(shape, "tracked")
    lines += [
        "def kernel(vals, cells):",
        f"    keep = vals < {c.size}",
        "    events = vals[keep]",
        "    dropped = int(vals.shape[0]) - int(events.shape[0])",
        "    obs = events[events >= 0]",
    ]
    lines += _fold_lines(c, "    ")
    lines += [
        "    observed = int(obs.shape[0])",
        "    return dropped, d_count, d_xsum, d_xsumsq, d_updates, hit, events, observed",
    ]
    return "\n".join(lines) + "\n"


def _rebalance_lines(c: KernelConstants, pad: str) -> List[str]:
    """One ``PercentileTracker.rebalance`` step (steps_per_update == 1)."""
    p = pad
    return [
        f"{p}at = freqs[pos]",
        f"{p}if {c.wl} * high > {c.wh} * (low + at) and pos < {c.size - 1}:",
        f"{p}    low = low + at",
        f"{p}    pos = pos + 1",
        f"{p}    high = high - freqs[pos]",
        f"{p}    moves = moves + 1",
        f"{p}elif {c.wh} * low > {c.wl} * (high + at) and pos > 0:",
        f"{p}    high = high + at",
        f"{p}    pos = pos - 1",
        f"{p}    low = low - freqs[pos]",
        f"{p}    moves = moves + 1",
    ]


def _sync_percentile_lines(c: KernelConstants, pad: str, pa: bool) -> List[str]:
    """``Stat4._sync_percentile``: mirror the position register, and fire
    the percentile-move alert when the mirrored position changed."""
    p = pad
    lines = [
        f"{p}previous = pos_mirror",
        f"{p}pos_mirror = pos",
        f"{p}synced = True",
    ]
    if pa:
        lines.append(f"{p}if pos != previous:")
        lines.append(f"{p}    if count >= {c.min_samples}:")
        inner = p + "        "
        if c.cooldown > 0:
            lines.append(
                f"{p}        if last_pa is None or now - last_pa >= {c.cooldown!r}:"
            )
            inner = p + "            "
        lines.append(f"{inner}last_pa = now")
        lines.append(f"{inner}records.append((2, i, pos, previous))")
    return lines


def _ksigma_lines(c: KernelConstants, pad: str, sample: str, index: str) -> List[str]:
    """``Stat4._maybe_alert``: min-samples gate, cooldown gate, then the
    division-free k·σ outlier check of ``ScaledStats.is_outlier`` (with
    the lazy ``stddev_nx`` recompute inlined)."""
    p = pad
    lines = [f"{p}if count >= {c.min_samples}:"]
    inner = p + "    "
    if c.cooldown > 0:
        lines.append(
            f"{inner}if last_alert is None or now - last_alert >= {c.cooldown!r}:"
        )
        inner = inner + "    "
    lines += [
        f"{inner}if sd_dirty:",
        f"{inner}    var = checked_multiply(count, xsumsq, runtime_operands=2) - square(xsum)",
        f"{inner}    if var < 0:",
        f"{inner}        var = 0",
        f"{inner}    cached_sd = approx_isqrt(var)",
        f"{inner}    sd_dirty = False",
        f"{inner}threshold = xsum + {c.k_sigma} * cached_sd",
    ]
    if c.margin:
        lines.append(
            f"{inner}threshold = threshold + "
            f"checked_multiply(count, {c.margin}, runtime_operands=2)"
        )
    lines += [
        f"{inner}scaled_sample = checked_multiply(count, {sample}, runtime_operands=2)",
        f"{inner}if scaled_sample > threshold:",
        f"{inner}    last_alert = now",
        f"{inner}    records.append((1, i, {index}, {sample}, scaled_sample, "
        "xsum, cached_sd, count))",
    ]
    return lines


def _scalar_loop_source(shape: KernelShape, c: KernelConstants) -> str:
    """Alerting / percentile-alert frequency shapes: the monomorphic
    per-packet loop (``Stat4._update_frequency`` with every constant and
    attribute lookup specialized away; state lives in plain locals)."""
    tracked = shape.tracked
    pa = shape.percentile_alert
    mode = "merge" if tracked else "alerting"
    lines = _header(shape, mode)
    params = [
        "vlist",
        "tlist",
        "cells",
        "count",
        "xsum",
        "xsumsq",
        "updates",
        "cached_sd",
        "sd_dirty",
        "last_alert",
    ]
    if pa:
        params.append("last_pa")
    if tracked:
        params += ["freqs", "low", "high", "total", "moves", "pos", "pos_mirror"]
    params += ["square", "records"]
    lines.append(f"def kernel({', '.join(params)}):")
    lines.append("    dropped = 0")
    lines.append("    observed = 0")
    if tracked:
        lines.append("    synced = False")
    lines.append("    for i in range(len(vlist)):")
    lines.append("        v = vlist[i]")
    lines.append("        now = tlist[i]")
    lines.append("        if v < 0:")
    if tracked:
        # value-free packet: tick + sync iff the tracker has a position
        lines.append("            if pos >= 0:")
        lines += _rebalance_lines(c, "                ")
        lines += _sync_percentile_lines(c, "                ", pa)
    else:
        lines.append("            pass")
    lines.append("            continue")
    lines.append(f"        if v >= {c.size}:")
    lines.append("            dropped = dropped + 1")
    lines.append("            continue")
    # ScaledStats.observe_frequency (sample is the *unmasked* old + 1)
    lines += [
        "        old = cells[v]",
        "        new = old + 1",
        "        if old == 0:",
        "            count = count + 1",
        "        xsum = xsum + 1",
        "        xsumsq = xsumsq + (old << 1) + 1",
        "        updates = updates + 1",
        "        sd_dirty = True",
        f"        cells[v] = new & {c.width_mask}",
        "        observed = observed + 1",
    ]
    if tracked:
        # PercentileTracker.observe
        lines += [
            "        freqs[v] = freqs[v] + 1",
            "        total = total + 1",
            "        if pos < 0:",
            "            pos = v",
            "        elif v < pos:",
            "            low = low + 1",
            "        elif v > pos:",
            "            high = high + 1",
        ]
        lines += _rebalance_lines(c, "        ")
        lines += _sync_percentile_lines(c, "        ", pa)
    if shape.alerting:
        lines += _ksigma_lines(c, "        ", sample="new", index="v")
    rets = [
        "dropped",
        "observed",
        "count",
        "xsum",
        "xsumsq",
        "updates",
        "cached_sd",
        "sd_dirty",
        "last_alert",
    ]
    if pa:
        rets.append("last_pa")
    if tracked:
        rets += ["low", "high", "total", "moves", "pos", "synced"]
    lines.append(f"    return {', '.join(rets)}")
    return "\n".join(lines) + "\n"


def _time_series_source(shape: KernelShape, c: KernelConstants) -> str:
    """Windowed time series: the galloping close scan, interval-start
    evolution included (``Stat4._update_time_series`` is deterministic in
    the timestamp column alone, so closes precompute exactly)."""
    lines = _header(shape, "serial")
    lines += [
        "def kernel(ts, counts, start, acc):",
        "    n = ts.shape[0]",
        "    closes = []",
        "    sums = []",
        "    idx = 0",
        "    while idx < n:",
        "        j = -1",
        "        k = idx",
        "        block = 32",
        "        while k < n:",
        "            stop = k + block",
        "            if stop > n:",
        "                stop = n",
        f"            hits = (ts[k:stop] - start) >= {c.interval!r}",
        "            if bool(hits.any()):",
        "                j = k + int(np.argmax(hits))",
        "                break",
        "            k = stop",
        "            block = block << 1",
        "        if j < 0:",
        "            acc = acc + int(counts[idx:n].sum())",
        "            break",
        "        if j > idx:",
        "            acc = acc + int(counts[idx:j].sum())",
        "        closes.append(j)",
        "        sums.append(acc)",
        "        now = float(ts[j])",
        f"        start = start + {c.interval!r}",
        f"        if now - start >= {c.interval!r}:",
        "            start = now",
        "        acc = int(counts[j])",
        "        idx = j + 1",
        "    return closes, sums, acc",
    ]
    return "\n".join(lines) + "\n"


def _sparse_source(shape: KernelShape, c: KernelConstants) -> str:
    """Hashed sparse frequency: per-packet probe/evict/observe loop with
    the moments and the k·σ gate inlined (``Stat4._update_sparse``)."""
    alerting = shape.alerting
    lines = _header(shape, "serial")
    params = [
        "vlist",
        "tlist",
        "increment",
        "probes",
        "count",
        "xsum",
        "xsumsq",
        "updates",
        "cached_sd",
        "sd_dirty",
        "last_alert",
        "square",
        "records",
    ]
    lines.append(f"def kernel({', '.join(params)}):")
    lines.append("    touched = False")
    lines.append("    for i in range(len(vlist)):")
    lines.append("        v = vlist[i]")
    lines.append("        if v < 0:")
    lines.append("            continue")
    if alerting:
        lines.append("        now = tlist[i]")
    lines.append("        old, new, evicted = increment(v, probes[v])")
    # ScaledStats.remove_value for the evicted resident
    lines += [
        "        if evicted:",
        "            if count == 0:",
        "                raise ValueError('cannot remove a value from an "
        "empty distribution')",
        "            count = count - 1",
        "            xsum = xsum - evicted",
        "            if xsum < 0:",
        "                xsum = 0",
        "            xsumsq = xsumsq - square(evicted)",
        "            if xsumsq < 0:",
        "                xsumsq = 0",
        "            updates = updates + 1",
        "            sd_dirty = True",
    ]
    # ScaledStats.observe_frequency(old)
    lines += [
        "        if old == 0:",
        "            count = count + 1",
        "        xsum = xsum + 1",
        "        xsumsq = xsumsq + (old << 1) + 1",
        "        updates = updates + 1",
        "        sd_dirty = True",
        "        touched = True",
    ]
    if alerting:
        lines += _ksigma_lines(c, "        ", sample="new", index="v")
    lines.append(
        "    return count, xsum, xsumsq, updates, cached_sd, sd_dirty, "
        "last_alert, touched"
    )
    return "\n".join(lines) + "\n"


def generate_kernel_source(shape: KernelShape, constants: KernelConstants) -> str:
    """The monomorphic kernel source for one shape × constants point."""
    if shape.kind is DistributionKind.FREQUENCY:
        if not shape.alerting and not shape.percentile_alert:
            if shape.tracked:
                return _tracked_source(shape, constants)
            return _frequency_source(shape, constants)
        return _scalar_loop_source(shape, constants)
    if shape.kind is DistributionKind.TIME_SERIES:
        return _time_series_source(shape, constants)
    return _sparse_source(shape, constants)


def family_of(shape: KernelShape) -> str:
    """The template family (and kernel-counter suffix) of a shape."""
    if shape.kind is DistributionKind.TIME_SERIES:
        return "time_series"
    if shape.kind is DistributionKind.SPARSE_FREQUENCY:
        return "sparse"
    if shape.alerting or shape.percentile_alert:
        return "merge" if shape.tracked else "alerting"
    return "tracked" if shape.tracked else "frequency"


#: Canonical constants for the lint's reference sources: every optional
#: block (margin, cooldown gates) present, so ST510 audits the fullest
#: emission of each template.
_REFERENCE_CONSTANTS = None


def reference_constants() -> KernelConstants:
    global _REFERENCE_CONSTANTS
    if _REFERENCE_CONSTANTS is None:
        _REFERENCE_CONSTANTS = KernelConstants(
            size=256,
            width_mask=(1 << 32) - 1,
            k_sigma=2,
            min_samples=8,
            margin=1,
            cooldown=0.25,
            wl=90,
            wh=10,
            interval=0.008,
            generation=0,
        )
    return _REFERENCE_CONSTANTS


def reference_sources() -> Dict[str, str]:
    """One representative generated source per constructible shape.

    What ST510 (restricted op set) and ST511 (pragma vs derived
    eligibility) audit; also how the ten shapes stay countable without a
    hand-maintained list.
    """
    const = reference_constants()
    return {shape.key: generate_kernel_source(shape, const) for shape in enumerate_shapes()}


# -- compilation ----------------------------------------------------------------------


#: The only names generated source may resolve beyond its arguments; the
#: exec namespace is restricted to exactly these (plus ``np`` and the two
#: sanctioned arithmetic helpers), so a template drifting outside the op
#: set fails loudly at run time as well as under ST510.
_EXEC_BUILTINS = {
    "range": range,
    "len": len,
    "int": int,
    "bool": bool,
    "float": float,
    "min": min,
    "max": max,
    "ValueError": ValueError,
    # numpy reductions lazily import helpers through the *caller's*
    # builtins; generated source itself can't import (ST510 bans the
    # statement form, and the AST walk is the enforcement mechanism).
    "__import__": __import__,
}


def exec_compile(source: str) -> Callable[..., Any]:
    """Compile generated kernel source; returns its ``kernel`` callable."""
    namespace: Dict[str, Any] = {
        "np": _np,
        "approx_isqrt": approx_isqrt,
        "checked_multiply": checked_multiply,
        "__builtins__": _EXEC_BUILTINS,
    }
    code = compile(source, "<repro.stat4.compiled>", "exec")
    exec(code, namespace)
    return namespace["kernel"]


@dataclass
class CompiledKernel:
    """One compiled kernel: source, both backends, and its provenance."""

    shape_key: str
    family: str
    source: str
    py_fn: Callable[..., Any]
    fn: Callable[..., Any]
    jit: bool
    generation: int
    constants: KernelConstants


class CompiledKernelLibrary:
    """Compiles, caches, and runs the generated kernels for one engine.

    Args:
        stat4: the library instance the owning engine drives.
        jit: ``"auto"`` (njit the array-shaped families when numba is
            importable) or ``"off"``.

    Attributes:
        compiles: kernels generated + exec-compiled.
        invalidations: recompiles forced by a binding-generation change
            (``Stat4Runtime.rebind``): the drift guard.
        jit_kernels: kernels currently running under numba.
        jit_failures: numba compile/run failures that degraded a kernel
            back to generated-numpy.
    """

    def __init__(self, stat4, jit: str = "auto"):
        if _np is None:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("the compiled tier requires numpy")
        if jit not in ("auto", "off"):
            raise ValueError(f"unknown jit mode {jit!r}")
        self.stat4 = stat4
        self.jit_mode = jit
        self._kernels: Dict[Tuple[str, KernelConstants], CompiledKernel] = {}
        self._active: Dict[int, CompiledKernel] = {}
        self.compiles = 0
        self.invalidations = 0
        self.jit_kernels = 0
        self.jit_failures = 0

    # -- cache ----------------------------------------------------------------

    def kernel_for(self, spec: TrackSpec) -> CompiledKernel:
        """The compiled kernel for a spec, (re)compiling on first use or
        when the binding generation drifted (rebind invalidation)."""
        dist = spec.dist
        active = self._active.get(dist)
        if active is not None and active.generation != spec.generation:
            # The slot was rebound under us: purge every kernel compiled
            # against the stale generation and recompile below.
            self.invalidations += 1
            for key in [
                k for k, v in self._kernels.items() if v.generation == active.generation
            ]:
                if self._kernels[key].jit:
                    self.jit_kernels -= 1
                del self._kernels[key]
            self._active.pop(dist, None)
        shape = KernelShape.of_spec(spec)
        constants = KernelConstants.of_spec(
            spec, self.stat4.config, self.stat4.counters.width
        )
        key = (shape.key, constants)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = self._compile(shape, constants)
            while len(self._kernels) >= _CACHE_LIMIT:
                evicted = self._kernels.pop(next(iter(self._kernels)))
                if evicted.jit:
                    self.jit_kernels -= 1
            self._kernels[key] = kernel
        self._active[dist] = kernel
        return kernel

    def _compile(self, shape: KernelShape, constants: KernelConstants) -> CompiledKernel:
        source = generate_kernel_source(shape, constants)
        py_fn = exec_compile(source)
        fn = py_fn
        jit = False
        family = family_of(shape)
        if (
            HAS_NUMBA
            and self.jit_mode == "auto"
            and family in _JIT_FAMILIES
        ):  # pragma: no cover - numba absent in the reference environment
            try:
                fn = _numba.njit(py_fn)
                jit = True
                self.jit_kernels += 1
            except Exception:
                fn = py_fn
                self.jit_failures += 1
        self.compiles += 1
        return CompiledKernel(
            shape_key=shape.key,
            family=family,
            source=source,
            py_fn=py_fn,
            fn=fn,
            jit=jit,
            generation=constants.generation,
            constants=constants,
        )

    def _invoke(self, kernel: CompiledKernel, build_args: Callable[[], tuple]):
        """Call a kernel; a numba failure degrades to generated-numpy.

        ``build_args`` re-materializes the inputs on retry so a partial
        in-place mutation from a failed jitted call cannot leak.
        """
        if not kernel.jit:
            return kernel.fn(*build_args())
        try:
            return kernel.fn(*build_args())
        except Exception:
            kernel.fn = kernel.py_fn
            kernel.jit = False
            self.jit_failures += 1
            self.jit_kernels -= 1
            return kernel.py_fn(*build_args())

    # -- dispatch -------------------------------------------------------------

    def run(self, engine, spec, state, segment, batch, sink, result) -> bool:
        """Run one spec-run through its compiled kernel.

        Returns False (leaving all state untouched) when this run cannot
        take the compiled tier — the engine falls through to the numpy
        kernels, exactly as numpy falls through to the exact loop.
        """
        kind = spec.kind
        if kind is DistributionKind.FREQUENCY:
            tracker = state.tracker
            if tracker is not None and tracker.steps_per_update != 1:
                return False
            if spec.k_sigma <= 0 and not spec.percentile_alert:
                # Array-fold families bound moment deltas by the register
                # width; wider registers stay on the bignum numpy tier.
                if self.stat4.counters.width > 32:
                    return False
                if tracker is None:
                    return self._run_frequency(engine, spec, state, segment, batch, result)
                return self._run_tracked(engine, spec, state, segment, batch, result)
            return self._run_scalar_loop(
                engine, spec, state, segment, batch, sink, result
            )
        if kind is DistributionKind.TIME_SERIES:
            return self._run_time_series(
                engine, spec, state, segment, batch, sink, result
            )
        if kind is DistributionKind.SPARSE_FREQUENCY:
            return self._run_sparse(engine, spec, state, segment, batch, sink, result)
        return False

    # -- gathers --------------------------------------------------------------

    def _gather(self, spec, segment, batch, need_ts: bool):
        """Per-segment value (and timestamp) columns as contiguous arrays.

        The common case — every packet of the batch in this segment, in
        order — reuses the batch's cached columns zero-copy; other
        segments gather by fancy-indexing with the packet-index vector.
        """
        np = _np
        n = len(segment)
        col = batch.values_array_for(spec)
        pkts = np.fromiter((event[0] for event in segment), dtype=np.int64, count=n)
        identity = n == len(col) and bool((pkts == np.arange(n)).all())
        vals = col if identity else col[pkts]
        ts = None
        if need_ts:
            tsa = batch.timestamps_array()
            ts = tsa if identity else tsa[pkts]
        return vals, ts

    # -- family runners -------------------------------------------------------

    def _apply_fold(self, state, cells, base, d_count, d_xsum, d_xsumsq, d_updates, hit):
        """Fold kernel-returned moment deltas and touched cells back in."""
        stat4 = self.stat4
        stats = state.stats
        stats.count += int(d_count)
        stats.xsum += int(d_xsum)
        stats.xsumsq += int(d_xsumsq)
        stats.updates += int(d_updates)
        stats._sd_dirty = True
        raw = stat4.counters._cells
        for value in hit.tolist():
            raw[base + value] = int(cells[value])
        stat4._sync_stats(state)

    def _count(self, result, family: str, events: int) -> None:
        name = f"compiled_{family}"
        result.kernels[name] = result.kernels.get(name, 0) + events

    def _run_frequency(self, engine, spec, state, segment, batch, result) -> bool:
        stat4 = self.stat4
        kernel = self.kernel_for(spec)
        vals, _ = self._gather(spec, segment, batch, need_ts=False)
        base = stat4.config.cell_index(spec.dist, 0)
        size = stat4.config.counter_size
        holder: Dict[str, Any] = {}

        def build():
            cells = _np.asarray(
                stat4.counters._cells[base : base + size], dtype=_np.int64
            )
            holder["cells"] = cells
            return (vals, cells)

        dropped, d_count, d_xsum, d_xsumsq, d_updates, hit = self._invoke(kernel, build)
        state.values_dropped += int(dropped)
        self._count(result, kernel.family, len(segment))
        if int(d_updates):
            self._apply_fold(
                state, holder["cells"], base, d_count, d_xsum, d_xsumsq, d_updates, hit
            )
        return True

    def _run_tracked(self, engine, spec, state, segment, batch, result) -> bool:
        stat4 = self.stat4
        kernel = self.kernel_for(spec)
        vals, _ = self._gather(spec, segment, batch, need_ts=False)
        base = stat4.config.cell_index(spec.dist, 0)
        size = stat4.config.counter_size
        tracker = state.tracker
        holder: Dict[str, Any] = {}

        def build():
            cells = _np.asarray(
                stat4.counters._cells[base : base + size], dtype=_np.int64
            )
            holder["cells"] = cells
            return (vals, cells)

        out = self._invoke(kernel, build)
        dropped, d_count, d_xsum, d_xsumsq, d_updates, hit, events, observed = out
        state.values_dropped += int(dropped)
        self._count(result, kernel.family, len(segment))
        had_value = tracker.has_value
        if int(d_updates):
            self._apply_fold(
                state, holder["cells"], base, d_count, d_xsum, d_xsumsq, d_updates, hit
            )
        events = _np.asarray(events, dtype=_np.int64)
        observed = int(observed)
        if events.shape[0]:
            engine._tracker_walk(tracker, events)
        if observed or (had_value and int(events.shape[0]) > observed):
            dist = spec.dist
            stat4.reg_pos.write(dist, tracker.value)
            stat4.reg_low.write(dist, tracker.low)
            stat4.reg_high.write(dist, tracker.high)
        return True

    def _install_records(self, spec, segment, sink, records, tlist) -> None:
        """Replay kernel alert records into the digest sink, scalar-shaped."""
        stat4 = self.stat4
        for rec in records:
            i = rec[1]
            event = segment[i]
            sink.set(event[0], event[1], tlist[i])
            if rec[0] == 1:
                sink.emit_digest(
                    spec.alert,
                    dist=spec.dist,
                    index=rec[2],
                    sample=rec[3],
                    scaled_sample=rec[4],
                    xsum=rec[5],
                    stddev_nx=rec[6],
                    count=rec[7],
                    generation=spec.generation,
                )
            else:
                sink.emit_digest(
                    spec.percentile_alert,
                    dist=spec.dist,
                    position=rec[2],
                    previous=rec[3],
                    percent=spec.percent if spec.percent is not None else 0,
                    generation=spec.generation,
                )
        stat4.alerts_emitted += len(records)

    def _run_scalar_loop(
        self, engine, spec, state, segment, batch, sink, result
    ) -> bool:
        stat4 = self.stat4
        kernel = self.kernel_for(spec)
        vals, ts = self._gather(spec, segment, batch, need_ts=True)
        vlist = vals.tolist()
        tlist = ts.tolist()
        base = stat4.config.cell_index(spec.dist, 0)
        size = stat4.config.counter_size
        counters = stat4.counters
        stats = state.stats
        tracker = state.tracker
        tracked = tracker is not None
        pa = bool(spec.percentile_alert)
        records: List[tuple] = []
        cells = counters._cells[base : base + size]
        args: List[Any] = [
            vlist,
            tlist,
            cells,
            stats.count,
            stats.xsum,
            stats.xsumsq,
            stats.updates,
            stats._cached_sd,
            stats._sd_dirty,
            state.last_alert,
        ]
        if pa:
            args.append(state.last_percentile_alert)
        if tracked:
            freqs = list(tracker.freqs)
            pos = tracker._position if tracker._position is not None else -1
            args += [
                freqs,
                tracker.low,
                tracker.high,
                tracker.total,
                tracker.moves,
                pos,
                stat4.reg_pos._cells[spec.dist],
            ]
        args += [stats.square, records]
        out = kernel.fn(*args)
        (
            dropped,
            observed,
            count,
            xsum,
            xsumsq,
            updates,
            cached_sd,
            sd_dirty,
            last_alert,
        ) = out[:9]
        idx = 9
        if pa:
            state.last_percentile_alert = out[idx]
            idx += 1
        state.values_dropped += dropped
        stats.count = count
        stats.xsum = xsum
        stats.xsumsq = xsumsq
        stats.updates = updates
        stats._cached_sd = cached_sd
        stats._sd_dirty = sd_dirty
        state.last_alert = last_alert
        counters._cells[base : base + size] = cells
        if tracked:
            low, high, total, moves, pos, synced = out[idx : idx + 6]
            tracker.freqs[:] = freqs
            tracker.low = low
            tracker.high = high
            tracker.total = total
            tracker.moves = moves
            tracker._position = pos if pos >= 0 else None
        self._install_records(spec, segment, sink, records, tlist)
        if observed:
            stat4._sync_stats(state)
        if tracked and synced:
            dist = spec.dist
            stat4.reg_pos.write(dist, pos)
            stat4.reg_low.write(dist, low)
            stat4.reg_high.write(dist, high)
        self._count(result, kernel.family, len(segment))
        return True

    def _run_time_series(
        self, engine, spec, state, segment, batch, sink, result
    ) -> bool:
        stat4 = self.stat4
        kernel = self.kernel_for(spec)
        vals, ts = self._gather(spec, segment, batch, need_ts=True)
        counts = _np.where(vals >= 0, vals, 0)
        dist = spec.dist
        i0 = 0
        if state.interval_start is None:
            first = float(ts[0])
            state.interval_start = first
            stat4.reg_interval_start.write(dist, _to_us(first))
            state.current_count += int(counts[0])
            i0 = 1
        closes, sums, acc = kernel.fn(
            ts[i0:], counts[i0:], state.interval_start, state.current_count
        )
        for j_rel, completed in zip(closes, sums):
            j = i0 + j_rel
            event = segment[j]
            now = float(ts[j])
            state.current_count = completed
            sink.set(event[0], event[1], now)
            stat4._close_interval(state, sink, now)
        state.current_count = int(acc)
        stat4.reg_current.write(dist, int(acc))
        self._count(result, kernel.family, len(segment))
        return True

    def _run_sparse(self, engine, spec, state, segment, batch, sink, result) -> bool:
        stat4 = self.stat4
        kernel = self.kernel_for(spec)
        vals, ts = self._gather(spec, segment, batch, need_ts=True)
        vlist = vals.tolist()
        tlist = ts.tolist()
        self._count(result, kernel.family, len(segment))
        unique = {value for value in vlist if value >= 0}
        if not unique:
            return True
        cells = stat4.sparse_cells[spec.dist]
        probes = cells.probe_paths(unique)
        stats = state.stats
        records: List[tuple] = []
        out = kernel.fn(
            vlist,
            tlist,
            cells.increment,
            probes,
            stats.count,
            stats.xsum,
            stats.xsumsq,
            stats.updates,
            stats._cached_sd,
            stats._sd_dirty,
            state.last_alert,
            stats.square,
            records,
        )
        count, xsum, xsumsq, updates, cached_sd, sd_dirty, last_alert, touched = out
        stats.count = count
        stats.xsum = xsum
        stats.xsumsq = xsumsq
        stats.updates = updates
        stats._cached_sd = cached_sd
        stats._sd_dirty = sd_dirty
        state.last_alert = last_alert
        self._install_records(spec, segment, sink, records, tlist)
        if touched:
            stat4._sync_stats(state)
        return True
