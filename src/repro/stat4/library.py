"""The Stat4 library: register-backed online statistics driven by bindings.

This is the reproduction of the P4 library the paper describes in Sec. 3.
A :class:`Stat4` instance owns

- the register layout of Figure 4 (a flattened value-cell array sized by
  ``STAT_COUNTER_NUM × STAT_COUNTER_SIZE``, plus per-distribution registers
  for N, Xsum, Xsumsq, σ², σ, the percentile position bookkeeping and the
  time-window cursor),
- ``binding_stages`` binding tables the controller populates at runtime,
- the per-packet update logic for both distribution kinds, and
- the declared step graph the resource model analyses (the paper's
  "longest dependency chain has 12 sequential steps" lives here).

Applications call :meth:`Stat4.process` from their ingress control; the
library looks the packet up in every binding stage and applies at most one
matching rule per stage.  All derived measures are recomputed *lazily*,
only when a value joins a distribution (Sec. 3), and every piece of state
is mirrored in the registers the controller can read.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.p4.errors import ResourceError
from repro.p4.pipeline import DependencyGraph, PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import PacketContext
from repro.p4.tables import Table
from repro.stat4.binding import TRACK_ACTION, binding_key_of, build_binding_table
from repro.stat4.config import DEFAULT_CONFIG, Stat4Config
from repro.stat4.distributions import (
    DistributionKind,
    DistributionState,
    TrackSpec,
)
from repro.stat4.sparse import HashedCells

__all__ = ["Stat4"]


class Stat4:
    """The in-switch statistics library.

    Args:
        config: compile-time geometry (the STAT_COUNTER_* macros).
        registers: the program's register file to allocate into; a private
            one is created when omitted (library-only tests).
    """

    def __init__(
        self,
        config: Stat4Config = DEFAULT_CONFIG,
        registers: Optional[RegisterFile] = None,
    ):
        self.config = config
        self.registers = registers if registers is not None else RegisterFile()
        cfg = config
        # Figure 4's layout: one flat cell array plus per-distribution
        # statistical-measure registers.
        self.counters = self.registers.declare(
            "stat4_counters", cfg.counter_width, cfg.total_counter_cells
        )
        self.reg_n = self.registers.declare("stat4_n", cfg.stats_width, cfg.counter_num)
        self.reg_xsum = self.registers.declare(
            "stat4_xsum", cfg.stats_width, cfg.counter_num
        )
        self.reg_xsumsq = self.registers.declare(
            "stat4_xsumsq", cfg.stats_width, cfg.counter_num
        )
        self.reg_var = self.registers.declare(
            "stat4_var", cfg.stats_width, cfg.counter_num
        )
        self.reg_sd = self.registers.declare(
            "stat4_sd", cfg.stats_width, cfg.counter_num
        )
        self.reg_pos = self.registers.declare("stat4_pos", 32, cfg.counter_num)
        self.reg_low = self.registers.declare("stat4_low", 32, cfg.counter_num)
        self.reg_high = self.registers.declare("stat4_high", 32, cfg.counter_num)
        self.reg_window_index = self.registers.declare(
            "stat4_window_index", 32, cfg.counter_num
        )
        self.reg_current = self.registers.declare(
            "stat4_current", cfg.stats_width, cfg.counter_num
        )
        self.reg_interval_start = self.registers.declare(
            "stat4_interval_start", 64, cfg.counter_num
        )
        # Sec.-5 extension: slots compiled with hashed (sparse) storage.
        self.sparse_cells: Dict[int, HashedCells] = {
            dist: HashedCells(
                slots_per_stage=cfg.sparse_slots,
                stages=cfg.sparse_stages,
                registers=self.registers,
                name=f"stat4_sparse{dist}",
                key_width=32,
                count_width=cfg.counter_width,
            )
            for dist in cfg.sparse_dists
        }
        self.binding_tables: List[Table] = [
            build_binding_table(stage) for stage in range(cfg.binding_stages)
        ]
        self.graph = _declare_steps()
        self._states: Dict[int, DistributionState] = {}
        self.alerts_emitted = 0
        self.packets_seen = 0

    # -- program integration ---------------------------------------------------

    def install_into(self, program: PipelineProgram) -> None:
        """Register the binding tables (and step graph) with a program."""
        for table in self.binding_tables:
            program.add_table(table)
        program.graph.extend(self.graph.steps)

    # -- per-packet entry point ---------------------------------------------------

    def process(self, ctx: PacketContext) -> None:
        """Apply every binding stage to one packet.

        Each stage contributes at most one matching rule; their actions are
        independent, preserving the paper's "at most one dependency between
        match-action rules".
        """
        self.packets_seen += 1
        key = binding_key_of(ctx)
        now = ctx.meta.timestamp
        for table in self.binding_tables:
            entry = table.lookup(key)
            if entry is None or entry.action != TRACK_ACTION:
                continue
            spec: TrackSpec = entry.params["spec"]
            self._apply(ctx, spec, now)

    def process_batch(self, batch, backend: str = "auto"):
        """Apply every binding stage to a whole :class:`PacketBatch`.

        The batched fast path: bit-identical register and working state to
        calling :meth:`process` per packet, at a fraction of the cost (see
        :mod:`repro.stat4.batch`).  Returns the :class:`BatchResult` with
        the digests the batch produced, in scalar emission order.
        """
        from repro.stat4.batch import BatchEngine

        return BatchEngine(self, backend=backend).process(batch)

    def _apply(self, ctx: PacketContext, spec: TrackSpec, now: float) -> None:
        state = self._state_for(spec)
        frame_bytes = ctx.user.get("frame_bytes", 0)
        value = spec.extract.extract(ctx, frame_bytes)
        if value is not None and not spec.accepts(value):
            # Outside this binding's value filter (e.g. the other mode of a
            # bimodal split): not a value of interest for this slot.
            value = None
        if spec.kind is DistributionKind.FREQUENCY:
            self._update_frequency(state, ctx, value, now)
        elif spec.kind is DistributionKind.SPARSE_FREQUENCY:
            self._update_sparse(state, ctx, value, now)
        else:
            self._update_time_series(state, ctx, value, now)

    # -- state management -----------------------------------------------------------

    def _state_for(self, spec: TrackSpec) -> DistributionState:
        if spec.dist >= self.config.counter_num:
            raise ResourceError(
                f"distribution {spec.dist} exceeds STAT_COUNTER_NUM="
                f"{self.config.counter_num}"
            )
        if (
            spec.kind is DistributionKind.SPARSE_FREQUENCY
            and spec.dist not in self.sparse_cells
        ):
            raise ResourceError(
                f"distribution {spec.dist} was not compiled with sparse "
                f"storage (Stat4Config.sparse_dists={self.config.sparse_dists})"
            )
        existing = self._states.get(spec.dist)
        if existing is not None and existing.spec == spec:
            return existing
        # A new or re-purposed slot: reset its registers and working state.
        state = DistributionState.fresh(spec, self.config.counter_size)
        self._states[spec.dist] = state
        self._reset_slot(spec.dist)
        return state

    def _reset_slot(self, dist: int) -> None:
        base = self.config.cell_index(dist, 0)
        for offset in range(self.config.counter_size):
            self.counters.write(base + offset, 0)
        if dist in self.sparse_cells:
            self.sparse_cells[dist].clear()
        for reg in (
            self.reg_n,
            self.reg_xsum,
            self.reg_xsumsq,
            self.reg_var,
            self.reg_sd,
            self.reg_pos,
            self.reg_low,
            self.reg_high,
            self.reg_window_index,
            self.reg_current,
            self.reg_interval_start,
        ):
            reg.write(dist, 0)

    def state_of(self, dist: int) -> Optional[DistributionState]:
        """The working state of a slot (None if never bound)."""
        return self._states.get(dist)

    # -- frequency distributions ------------------------------------------------------

    def _update_frequency(
        self,
        state: DistributionState,
        ctx: PacketContext,
        value: Optional[int],
        now: float,
    ) -> None:
        if value is None:
            # Matched, but no value of interest: still helps the percentile
            # tracker walk (Sec. 2's remark on value-free packets).
            if state.tracker is not None and state.tracker.has_value:
                state.tracker.tick()
                self._sync_percentile(state, ctx, now)
            return
        if value >= self.config.counter_size:
            state.values_dropped += 1
            return
        dist = state.spec.dist
        cell = self.config.cell_index(dist, value)
        old_count = self.counters.read(cell)
        new_count = state.stats.observe_frequency(old_count)
        self.counters.write(cell, new_count)
        if state.tracker is not None:
            state.tracker.observe(value)
            self._sync_percentile(state, ctx, now)
        # A value joined the distribution: lazily recompute the measures.
        self._sync_stats(state)
        self._maybe_alert(state, ctx, sample=new_count, index=value, now=now)

    # -- sparse (hashed) frequency distributions ------------------------------------------

    def _update_sparse(
        self,
        state: DistributionState,
        ctx: PacketContext,
        value: Optional[int],
        now: float,
    ) -> None:
        """The Sec.-5 technique: frequencies over a sparse domain in hashed
        slots, with evicted values removed from the moments so the stats
        keep describing exactly the resident set."""
        if value is None:
            return
        cells = self.sparse_cells[state.spec.dist]
        old_count, new_count, evicted = cells.increment(value)
        if evicted:
            state.stats.remove_value(evicted)
        state.stats.observe_frequency(old_count)
        self._sync_stats(state)
        self._maybe_alert(state, ctx, sample=new_count, index=value, now=now)

    # -- time-series distributions -------------------------------------------------------

    def _update_time_series(
        self,
        state: DistributionState,
        ctx: PacketContext,
        value: Optional[int],
        now: float,
    ) -> None:
        spec = state.spec
        dist = spec.dist
        if state.interval_start is None:
            state.interval_start = now
            self.reg_interval_start.write(dist, _to_us(now))
        elif now - state.interval_start >= spec.interval:
            self._close_interval(state, ctx, now)
        state.current_count += value if value is not None else 0
        self.reg_current.write(dist, state.current_count)

    def _close_interval(self, state: DistributionState, ctx: PacketContext, now: float) -> None:
        spec = state.spec
        dist = spec.dist
        cfg = self.config
        completed = state.current_count
        # Check the completed interval against the distribution *before*
        # absorbing it, so a spike is judged against the normal history.
        if state.window_filled >= spec.min_samples:
            self._maybe_alert(
                state, ctx, sample=completed, index=state.window_index, now=now
            )
        cell = cfg.cell_index(dist, state.window_index)
        if state.window_is_full(cfg.counter_size):
            old_value = self.counters.read(cell)
            state.stats.replace_value(old_value, completed)
        else:
            state.stats.add_value(completed)
            state.window_filled += 1
        self.counters.write(cell, completed)
        # Advance the circular cursor without modulo: compare and reset.
        next_index = state.window_index + 1
        if next_index == state.effective_window(cfg.counter_size):
            next_index = 0
        state.window_index = next_index
        self.reg_window_index.write(dist, next_index)
        state.interval_start += spec.interval
        # Silent-gap rule: if more than one whole interval elapsed while no
        # packet arrived, snap to now (one comparison; P4 cannot loop to
        # close every missed interval).
        if now - state.interval_start >= spec.interval:
            state.interval_start = now
        self.reg_interval_start.write(dist, _to_us(state.interval_start))
        state.current_count = 0
        state.intervals_closed += 1
        # A value joined the distribution: lazily recompute the measures.
        self._sync_stats(state)

    # -- alerts -----------------------------------------------------------------------

    def _maybe_alert(
        self,
        state: DistributionState,
        ctx: PacketContext,
        sample: int,
        index: int,
        now: float,
    ) -> None:
        spec = state.spec
        if spec.k_sigma <= 0:
            return
        if state.stats.count < spec.min_samples:
            return
        cooldown = max(self.config.alert_cooldown, spec.cooldown)
        if state.cooldown_active(now, cooldown):
            return
        if not state.stats.is_outlier(sample, k_sigma=spec.k_sigma, margin=spec.margin):
            return
        state.last_alert = now
        self.alerts_emitted += 1
        ctx.emit_digest(
            spec.alert,
            dist=spec.dist,
            index=index,
            sample=sample,
            scaled_sample=state.stats.scaled(sample),
            xsum=state.stats.xsum,
            stddev_nx=state.stats.stddev_nx,
            count=state.stats.count,
            generation=spec.generation,
        )

    # -- register mirroring ----------------------------------------------------------------

    def _sync_stats(self, state: DistributionState) -> None:
        dist = state.spec.dist
        stats = state.stats
        self.reg_n.write(dist, stats.count)
        self.reg_xsum.write(dist, stats.xsum)
        self.reg_xsumsq.write(dist, stats.xsumsq)
        self.reg_var.write(dist, stats.variance_nx)
        self.reg_sd.write(dist, stats.stddev_nx)

    def _sync_percentile(
        self, state: DistributionState, ctx: PacketContext, now: float
    ) -> None:
        dist = state.spec.dist
        tracker = state.tracker
        assert tracker is not None
        if tracker.has_value:
            previous = self.reg_pos.read(dist)
            position = tracker.value
            self.reg_pos.write(dist, position)
            if position != previous:
                self._maybe_percentile_alert(state, ctx, position, previous, now)
        self.reg_low.write(dist, tracker.low)
        self.reg_high.write(dist, tracker.high)

    def _maybe_percentile_alert(
        self,
        state: DistributionState,
        ctx: PacketContext,
        position: int,
        previous: int,
        now: float,
    ) -> None:
        """The Sec.-2 "change rates of percentiles" signal: the tracked
        percentile moved to a different value."""
        spec = state.spec
        if not spec.percentile_alert:
            return
        if state.stats.count < spec.min_samples:
            return
        cooldown = max(self.config.alert_cooldown, spec.cooldown)
        if state.last_percentile_alert is not None and cooldown > 0:
            if now - state.last_percentile_alert < cooldown:
                return
        state.last_percentile_alert = now
        self.alerts_emitted += 1
        ctx.emit_digest(
            spec.percentile_alert,
            dist=spec.dist,
            position=position,
            previous=previous,
            percent=spec.percent if spec.percent is not None else 0,
            generation=spec.generation,
        )

    # -- controller-facing reads --------------------------------------------------------------

    def read_measures(self, dist: int) -> Dict[str, int]:
        """Read one slot's statistical measures from the registers."""
        return {
            "n": self.reg_n.read(dist),
            "xsum": self.reg_xsum.read(dist),
            "xsumsq": self.reg_xsumsq.read(dist),
            "variance": self.reg_var.read(dist),
            "stddev": self.reg_sd.read(dist),
            "percentile_pos": self.reg_pos.read(dist),
        }

    def read_cells(self, dist: int) -> List[int]:
        """Read one slot's value cells (the distribution itself)."""
        base = self.config.cell_index(dist, 0)
        return [
            self.counters.read(base + offset)
            for offset in range(self.config.counter_size)
        ]

    def read_sparse_items(self, dist: int) -> List[tuple]:
        """Resident ``(key, count)`` pairs of a sparse slot (Sec. 5)."""
        try:
            cells = self.sparse_cells[dist]
        except KeyError:
            raise ResourceError(
                f"distribution {dist} has no sparse storage"
            ) from None
        return cells.items()


def _to_us(seconds: float) -> int:
    """Seconds → integer microseconds (switch timestamps are integers)."""
    return int(round(seconds * 1_000_000))


def _declare_steps() -> DependencyGraph:
    """The declared sequential structure of the time-series update path.

    This is the code path the paper singles out: "The longest dependency
    chain in our code has 12 sequential steps, used to override the oldest
    counter in distributions of traffic over time" (Sec. 4).  Each step
    names what it reads and writes; the resource model derives stage needs.
    """
    graph = DependencyGraph()
    graph.add("binding_lookup", reads={"hdr.fields"}, writes={"meta.spec"})
    graph.add(
        "load_interval_start",
        reads={"meta.spec", "reg.interval_start"},
        writes={"meta.start"},
    )
    graph.add(
        "rollover_compare",
        reads={"meta.start", "std.timestamp"},
        writes={"meta.rollover"},
    )
    graph.add(
        "load_window_index",
        reads={"meta.rollover", "reg.window_index"},
        writes={"meta.idx"},
    )
    graph.add(
        "load_oldest_cell", reads={"meta.idx", "reg.counters"}, writes={"meta.old"}
    )
    graph.add(
        "store_new_cell",
        reads={"meta.idx", "reg.current"},
        writes={"reg.counters"},
    )
    graph.add(
        "update_xsum",
        reads={"reg.xsum", "reg.current", "meta.old"},
        writes={"reg.xsum"},
    )
    graph.add(
        "square_old_and_new",
        reads={"meta.old", "reg.current"},
        writes={"meta.squares"},
    )
    graph.add(
        "update_xsumsq", reads={"reg.xsumsq", "meta.squares"}, writes={"reg.xsumsq"}
    )
    graph.add(
        "compute_variance",
        reads={"reg.n", "reg.xsumsq", "reg.xsum"},
        writes={"reg.var"},
    )
    graph.add("find_msb", reads={"reg.var"}, writes={"meta.msb"})
    graph.add("compute_sd", reads={"meta.msb", "reg.var"}, writes={"reg.sd"})
    graph.add(
        "anomaly_check",
        reads={"reg.sd", "reg.xsum", "reg.current"},
        writes={"meta.alert"},
    )
    graph.add(
        "advance_window",
        reads={"meta.idx"},
        writes={"reg.window_index", "reg.interval_start", "reg.current"},
    )
    return graph
