"""Tracked-distribution descriptors and runtime state.

A :class:`TrackSpec` is the action-parameter bundle a binding-table entry
carries: which distribution slot to update, how (frequency counts vs a
windowed time series), the extraction spec, and the anomaly check to run.
The controller installs and rewrites these at runtime.

:class:`DistributionState` is the per-slot state the updates operate on —
conceptually the registers of Figure 4 (value cells, N/Xsum/Xsumsq/σ²/σ,
percentile position bookkeeping, window cursor).  The :class:`Stat4`
library keeps the authoritative copies in its register file and uses the
core trackers (:class:`~repro.core.stats.ScaledStats`,
:class:`~repro.core.percentile.PercentileTracker`) as the in-pipeline
working state; tests cross-check both views stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.percentile import PercentileTracker
from repro.core.stats import ScaledStats
from repro.p4.errors import ValueRangeError
from repro.stat4.extract import ExtractSpec

__all__ = ["DistributionKind", "TrackSpec", "DistributionState"]


class DistributionKind(Enum):
    """The update patterns: the two of Sec. 2 plus the Sec. 5 extension."""

    #: Each value of interest indexes a cell whose *frequency* grows
    #: (SYNs per destination, packets by type, traffic per subnet).
    FREQUENCY = "frequency"

    #: Values of interest are per-interval aggregates kept in a circular
    #: window (traffic rate over time) — the Sec. 4 case-study shape.
    TIME_SERIES = "time_series"

    #: Frequencies over a huge sparse domain (full addresses, ports) kept
    #: in HashPipe-style hashed slots — the Sec. 5 future-work technique
    #: for "avoid[ing] reserving memory for non-observed values".
    SPARSE_FREQUENCY = "sparse_frequency"


@dataclass(frozen=True)
class TrackSpec:
    """Everything one binding entry says about how to track a distribution.

    Attributes:
        dist: distribution slot in ``[0, STAT_COUNTER_NUM)``.
        kind: frequency or time-series tracking.
        extract: how to pull the value of interest from a packet.
        interval: time-series interval length in seconds (ignored for
            frequency distributions).
        k_sigma: fire the paper's ``N·x > Xsum + k·σ_NX`` check with this k
            (0 disables checking).
        alert: digest stream name used when the check fires.
        percent: additionally track this percentile of the frequency
            distribution (None disables; frequency kind only).
        window: circular-window length for time series, in intervals
            (0 = use the full STAT_COUNTER_SIZE register; smaller windows
            use a prefix of the slot's cells — the Sec. 4 sweep varies the
            "number of intervals between 10 and 100" at runtime this way).
        percentile_alert: digest stream raised when the tracked percentile
            *moves* — the paper's "track values and change rates of
            percentiles, which may be indicative of anomalies" (Sec. 2).
            Needed where the k·σ outlier test is structurally blind: with N
            tracked values a single outlier's z-score is at most
            (N−1)/√N, so a 2σ check can never flag one of two or three
            categories (e.g. the TCP-vs-UDP mix), while the weighted median
            visibly walks.  Requires ``percent``.
        min_samples: suppress checks until the distribution holds this many
            values (σ of one sample is meaningless).
        margin: extra value units a sample must exceed the mean by, on top
            of ``k·σ`` — keeps near-degenerate distributions (all values
            equal, σ ≈ 0) from flagging every +1 fluctuation.
        cooldown: minimum seconds between digests from this binding
            (overrides the library default when larger).
        accept_lo / accept_hi: half-open value filter ``[lo, hi)`` applied
            to the extracted value (both 0 = accept everything).  This is
            the mechanism behind the Sec. 5 bimodal remark — "the
            controller can instruct switches to separately track and check
            the two modes of the distribution" — realized as two bindings
            whose filters bracket the valley; one compare each, P4-legal.
        generation: bumped by the controller when it re-purposes the slot;
            a generation change resets the distribution state.
    """

    dist: int
    kind: DistributionKind
    extract: ExtractSpec
    interval: float = 0.0  # p4-ok: control-plane spec field in seconds, not a register value
    k_sigma: int = 0
    alert: str = "stat4_alert"
    percent: Optional[int] = None
    window: int = 0
    percentile_alert: str = ""
    min_samples: int = 2
    margin: int = 1
    cooldown: float = 0.0  # p4-ok: control-plane spec field in seconds, not a register value
    accept_lo: int = 0
    accept_hi: int = 0
    generation: int = 0

    def __post_init__(self):
        if self.dist < 0:
            raise ValueRangeError("distribution slot cannot be negative")
        if self.kind is DistributionKind.TIME_SERIES and self.interval <= 0:
            raise ValueRangeError("time-series tracking needs a positive interval")
        if self.k_sigma < 0:
            raise ValueRangeError("k_sigma cannot be negative")
        if self.margin < 0:
            raise ValueRangeError("margin cannot be negative")
        if self.window < 0:
            raise ValueRangeError("window cannot be negative")
        if self.window > 0 and self.kind is not DistributionKind.TIME_SERIES:
            raise ValueRangeError("window applies to time-series distributions")
        if self.percent is not None:
            if self.kind is not DistributionKind.FREQUENCY:
                raise ValueRangeError(
                    "percentiles apply to dense frequency distributions "
                    "(a sparse hashed domain has no cell ordering to walk)"
                )
            if not 0 < self.percent < 100:
                raise ValueRangeError("percent must be in (0, 100)")
        if self.percentile_alert and self.percent is None:
            raise ValueRangeError("percentile_alert requires percent")
        if self.cooldown < 0:
            raise ValueRangeError("cooldown cannot be negative")
        if self.accept_lo < 0 or self.accept_hi < 0:
            raise ValueRangeError("accept bounds cannot be negative")
        if self.accept_hi > 0 and self.accept_lo >= self.accept_hi:
            raise ValueRangeError("accept range [lo, hi) is empty")

    def accepts(self, value: int) -> bool:
        """Whether the value filter admits an extracted value.

        ``accept_hi == 0`` means "no upper bound" (so the all-defaults
        filter accepts everything and an upper-mode filter is just a lower
        bound).
        """
        if value < self.accept_lo:
            return False
        return self.accept_hi == 0 or value < self.accept_hi


@dataclass
class DistributionState:
    """Mutable per-slot tracking state (the working copy of the registers).

    Attributes:
        spec: the TrackSpec that configured this slot.
        stats: scaled moments of the tracked values.
        tracker: online percentile state (frequency slots that asked for it).
        window_index: circular-buffer cursor (time series).
        window_filled: cells populated so far (grows to STAT_COUNTER_SIZE,
            then the window overwrites its oldest value).
        interval_start: start time of the open interval (None until the
            first matching packet arrives).
        current_count: the accumulating value of the open interval.
        last_alert: time of the last digest from this slot (cooldown).
        values_dropped: values of interest outside the cell domain.
    """

    spec: TrackSpec
    stats: ScaledStats
    tracker: Optional[PercentileTracker] = None
    window_index: int = 0
    window_filled: int = 0
    interval_start: Optional[float] = None
    current_count: int = 0
    last_alert: Optional[float] = None
    last_percentile_alert: Optional[float] = None
    intervals_closed: int = 0
    values_dropped: int = 0

    @staticmethod
    def fresh(spec: TrackSpec, counter_size: int) -> "DistributionState":
        """Initialize state for a (re)bound slot."""
        tracker = None
        if spec.percent is not None:
            tracker = PercentileTracker(counter_size, percent=spec.percent)
        return DistributionState(spec=spec, stats=ScaledStats(), tracker=tracker)

    def effective_window(self, counter_size: int) -> int:
        """The circular-window length this slot actually uses."""
        if self.spec.window <= 0:
            return counter_size
        return min(self.spec.window, counter_size)

    def window_is_full(self, counter_size: int) -> bool:
        """Whether the circular window has wrapped at least once."""
        return self.window_filled >= self.effective_window(counter_size)

    def cooldown_active(self, now: float, cooldown: float) -> bool:
        """Whether alerts from this slot are still suppressed at ``now``."""
        if self.last_alert is None or cooldown <= 0:
            return False
        return (now - self.last_alert) < cooldown
