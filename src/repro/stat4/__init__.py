"""Stat4: the paper's P4 library for in-switch statistics.

Tracks distributions of values extracted from packets — frequencies or
windowed time series — and maintains mean, variance, standard deviation and
percentiles online with P4-legal integer operations, raising digests when
the configured anomaly checks fire.  Binding tables let a controller retune
what is tracked at runtime without recompiling.
"""

from repro.stat4.batch import (
    HAS_NUMPY,
    BatchEngine,
    BatchResult,
    PacketBatch,
    resolve_backend,
)
from repro.stat4.binding import (
    MATCH_ALL,
    TRACK_ACTION,
    BindingMatch,
    binding_key_of,
    build_binding_table,
)
from repro.stat4.config import DEFAULT_CONFIG, Stat4Config
from repro.stat4.distributions import DistributionKind, DistributionState, TrackSpec
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.parallel import ParallelBatchEngine, shutdown_pools, split_batch
from repro.stat4.runtime import BindingHandle, Stat4Runtime
from repro.stat4.sparse import HashedCells

__all__ = [
    "Stat4",
    "PacketBatch",
    "BatchEngine",
    "BatchResult",
    "ParallelBatchEngine",
    "split_batch",
    "shutdown_pools",
    "HAS_NUMPY",
    "resolve_backend",
    "Stat4Config",
    "DEFAULT_CONFIG",
    "Stat4Runtime",
    "BindingHandle",
    "BindingMatch",
    "MATCH_ALL",
    "TRACK_ACTION",
    "binding_key_of",
    "build_binding_table",
    "DistributionKind",
    "DistributionState",
    "TrackSpec",
    "ExtractSpec",
    "HashedCells",
]
