# p4-ok-file — host-side parallel execution layer; the per-packet P4
# semantics it reproduces live (and are linted) in repro.stat4.library.
"""Multi-worker Stat4 ingest: zero-copy chunk dispatch with exact merging.

:class:`~repro.stat4.batch.BatchEngine` already turns per-packet updates
into per-batch kernels; this module adds the last level of the hierarchy —
a worker pool that runs independent pieces of that kernel work
concurrently, **without giving up bit-identity** with the scalar loop:

- a trace is split into time-ordered chunks (:func:`split_batch`) that are
  processed strictly in order, so all cross-batch state (interval cursors,
  percentile walks, eviction order) evolves exactly as in serial replay;
- *within* one batch, the work fanned out to workers is chunked value
  **tallying** for dense frequency runs; everything order-dependent is
  replayed on the main thread from the per-chunk sub-tallies (or runs the
  serial kernels outright).

Zero-copy shipping
------------------

Worker chunks are views, not copies.  Thread workers receive zero-copy
windows of the batch's encoded value column
(:meth:`~repro.stat4.batch.PacketBatch.values_array_for`, backed by the
batch's :class:`~repro.traffic.columns.ColumnStore`).  Process workers
attach a ``multiprocessing.shared_memory`` segment by name and read the
rows in place (:func:`~repro.traffic.columns.attach_column`): the pickled
per-task payload is a ~100-byte :class:`ColumnDescriptor` instead of the
chunk's data, which is what lets a process pool win on multi-GB traces.
Segments are registered in the columns module; the engine releases them as
soon as the batch is applied, and :func:`shutdown_pools` (atexit, plus a
chained ``SIGTERM`` handler) sweeps anything a dying run leaves behind so
repeated bench runs cannot exhaust ``/dev/shm``.

Fan-out eligibility and the exactness argument
----------------------------------------------

:meth:`ParallelBatchEngine._fan_out_mode` classifies each run of equal
specs.  The invariant behind all four fanned-out modes is the same: for a
dense frequency slot, after any prefix of a run the moments (N, Xsum,
Xsumsq) and the cell registers are **order-independent functions of the
per-value occurrence counts** — each occurrence's ``observe_frequency``
depends only on its own cell's prior count, the telescoped
``observe_frequencies`` identity folds any grouping of occurrences to the
same sums, and cell writes wrap through ``value & mask``, which composes
modularly.  So per-chunk tallies merged by per-value addition land on
exactly the serial state.  What differs per mode is what must be replayed
serially on top:

- ``"tally"`` (no tracker, no k·σ): nothing.  Merge the tallies, fold once.
- ``"tracked"`` (``spec.percent`` set, no k·σ, no percentile alert): the
  percentile tracker walks one step per packet, which is order-dependent —
  but the tracker never feeds the cells or moments, and with no
  ``percentile_alert`` it emits nothing mid-run.  Workers tally; the main
  thread folds the merged counts, then replays the run's exact
  observe/tick event sequence through the tracker (the vectorized
  ``_tracker_walk`` on numpy, the scalar tracker otherwise) and syncs
  ``reg_pos``/``reg_low``/``reg_high`` once, under the same write gate as
  the serial ``_percentile_kernel`` (an observation landed, or the tracker
  already had a position and a value-free packet ticked it).  Digest
  stream: empty in this mode, trivially identical.
- ``"alerting"`` (no tracker, ``k_sigma > 0``): the k·σ judgement reads
  the live moments *at each packet*, so alert decisions replay per packet
  on the main thread — against a local dict of wrapped cell counts (one
  register read per unique value, one write at the end) and the live
  ``ScaledStats``, calling the library's own ``_maybe_alert`` so gate
  order, cooldown stamping, and digest fields are byte-for-byte the
  scalar path's.  The worker tallies are not wasted: a whole chunk is
  **folded without per-packet replay when no packet in it can possibly
  alert**, which is provable from the sub-tally alone in two cases:

  * ``stats.count + occurrences < spec.min_samples`` — every
    ``observe_frequency`` grows N by at most 1, so N stays below the
    ``min_samples`` gate for every packet of the chunk;
  * the cooldown window covers the chunk — ``last_alert`` is set,
    ``cooldown > 0``, and ``chunk_max_ts − last_alert < cooldown``:
    every packet's ``now ≤ chunk_max_ts``, and since no alert fires in a
    folded chunk, ``last_alert`` cannot move mid-chunk.

  Folded chunks cost O(distinct values); un-foldable chunks replay per
  packet but still skip the per-packet register reads/writes and
  ``_sync_stats`` of the scalar loop.  Alert counts and digest order are
  bit-identical by construction: every ``_maybe_alert`` call sees exactly
  the scalar path's ``(stats, sample, now)`` triple, and digests are
  tagged with their ``(packet, stage)`` and re-sorted by the shared sink.

- ``"merge"`` (tracker plus a digest stream: ``frequency+tracked+alerting``
  and both ``percentile_alert`` shapes): the OctoSketch-style local-state
  merge.  These runs interleave *two* replay streams — ``_sync_percentile``
  reads the ``reg_pos`` register per packet, and percentile-move digests
  interleave with k·σ digests order-dependently — so no per-chunk summary
  derives the stream.  Instead, every worker still tallies, and
  speculating workers additionally run a **fully local replica** of the
  slot (local ``ScaledStats`` moments, local ``PercentileTracker``, local
  cell dict, a local ``reg_pos`` mirror, local cooldown stamps) from a
  batch-entry snapshot fanned out over the same shared-memory columns,
  buffering digest records with chunk-relative sequence numbers.  The
  single-threaded merge then walks the chunks in order and resolves each
  deterministically:

  * **adopt** — the per-chunk *tracker fixpoint* check compares the live
    slot against the snapshot the worker's local walk started from
    (moments, tracker freqs/position/low/high/total/moves, every cell,
    both cooldown stamps, and the ``reg_pos`` mirror).  When they are
    equal — the common case for a steady-state run's first chunk — the
    local walk provably lands where the serial walk would: the replay
    routine is the *same code* the serial fallback runs
    (:class:`_MergeLocal`), so an equal entry state makes its exit state
    and digest stream the serial ones by construction.  The claimed exit
    is installed wholesale and the local digests are re-sequenced onto
    the shared sink under their absolute ``(packet, stage)`` tags.
  * **fold** — a chunk whose *both* streams are provably silent merges
    without replay: the ``min_samples`` headroom and covering-cooldown
    arguments of the alerting mode, applied per stream against its own
    stamp (``last_alert`` for k·σ, ``last_percentile_alert`` for
    percentile moves; the percentile gate also reads ``stats.count``, so
    the same headroom bound covers value-free ticks).  With no digest
    possible, the tracker and the moments are independent state machines
    — neither reads the other — so the chunk folds through the
    telescoped moment identity plus a resumable tracker walk
    (:meth:`~repro.stat4.batch.BatchEngine._tracker_replay`) from the
    chunk's entry state.
  * **replay** — anything else replays per packet from the chunk's true
    entry state through the same shared local-state routine, holding the
    ``reg_pos`` register mirror the scalar ``_sync_percentile`` would
    read.  Output stays bit-identical to scalar in all cases.

  ``staleness="bounded"`` (opt-in) skips the fixpoint check and the
  replay fallback: every chunk folds its moments/cells/tracker exactly,
  but adopts the digests its worker speculated against the batch-entry
  snapshot — the alert stream may lag state changes by at most one batch
  prefix, while registers, moments, and the tracker stay bit-exact.  The
  trade is benched through the scenario scorer (see BENCHMARKS.md).

Since the concurrency analyzer landed, this argument is *checked*, not
just written down: :data:`DECLARED_ELIGIBILITY` below is the table the
argument claims, but :meth:`ParallelBatchEngine._fan_out_mode` consumes
the table :func:`repro.analysis.concurrency.derive_eligibility_table`
derives from the kernel ASTs.  The first fan-out decision cross-checks
the two and refuses to run on drift (the ST500 rule; ``repro lint
--concurrency`` reports the disagreement in full).

``tests/stat4/test_parallel_differential.py`` proves scalar vs threads vs
shared-memory processes bit-identical — registers, digest order, alert
counts — for every ``DistributionKind`` on both backends.
"""

from __future__ import annotations

import atexit
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.percentile import PercentileTracker
from repro.core.stats import ScaledStats, square_for_target
from repro.p4.switch import Digest
from repro.stat4.batch import (
    BatchEngine,
    BatchResult,
    Column,
    PacketBatch,
    _DigestSink,
    _Event,
)
from repro.stat4.distributions import DistributionState, TrackSpec
from repro.stat4.library import Stat4
from repro.traffic.columns import (
    DIGEST_KIND_KSIGMA,
    DIGEST_KIND_PERCENTILE,
    ColumnDescriptor,
    SharedColumnSegment,
    attach_column,
    decode_digest_records,
    encode_column,
    encode_digest_records,
    release_all_segments,
    slice_backing,
)

try:  # pragma: no cover - exercised via both-backend CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "DECLARED_ELIGIBILITY",
    "ParallelBatchEngine",
    "split_batch",
    "shutdown_pools",
]

_EXECUTOR_KINDS = ("auto", "thread", "process", "serial")

#: The fan-out table the exactness argument above claims, keyed by kernel
#: shape (:func:`repro.analysis.concurrency.shape_key_of_spec`); values
#: are the fan-out mode or ``None`` for serial.  The engine does NOT
#: consume this table directly — ``_fan_out_mode`` consumes the table the
#: concurrency analyzer derives from the kernel ASTs, and the first
#: fan-out decision raises if the two disagree (rule ST500).  This
#: declaration exists so a kernel change that silently shifts a verdict
#: is an ERROR, not a silent behavior change.
DECLARED_ELIGIBILITY: Dict[str, Optional[str]] = {
    "frequency": "tally",
    "frequency+alerting": "alerting",
    "frequency+tracked": "tracked",
    "frequency+tracked+alerting": "merge",
    "frequency+tracked+percentile_alert": "merge",
    "frequency+tracked+alerting+percentile_alert": "merge",
    "time_series": None,
    "time_series+alerting": None,
    "sparse_frequency": None,
    "sparse_frequency+alerting": None,
}

#: Lazily resolved ``(derived_table, shape_key_of_spec)`` pair; populated
#: (and cross-checked against the declaration) on the first fan-out
#: decision so importing this module never pulls in the analyzer.
_ELIGIBILITY: Optional[Tuple[Dict[str, Optional[str]], Any]] = None


def _eligibility() -> Tuple[Dict[str, Optional[str]], Any]:
    global _ELIGIBILITY
    if _ELIGIBILITY is None:
        from repro.analysis.concurrency import (
            derive_eligibility_table,
            shape_key_of_spec,
        )

        derived = derive_eligibility_table()
        if derived != DECLARED_ELIGIBILITY:
            drift = sorted(
                key
                for key in set(derived) | set(DECLARED_ELIGIBILITY)
                if derived.get(key) != DECLARED_ELIGIBILITY.get(key)
            )
            raise RuntimeError(
                "parallel fan-out eligibility drift: the dataflow-derived "
                f"table disagrees with DECLARED_ELIGIBILITY on {drift}; "
                "run `repro lint --concurrency` for the ST500 report"
            )
        _ELIGIBILITY = (derived, shape_key_of_spec)
    return _ELIGIBILITY

#: Live executors, keyed by (kind, workers).  Worker pools are expensive to
#: start (especially process pools); one bench run reuses them across
#: batches and repeats.
_EXECUTORS: Dict[Tuple[str, int], Executor] = {}


def _pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    pool = _EXECUTORS.get(key)
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-ingest"
            )
        _EXECUTORS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool and sweep leaked shared segments.

    Runs at interpreter exit.  The shared-memory sweep
    (:func:`repro.traffic.columns.release_all_segments`) unlinks any
    segment a dying batch left registered, so repeated bench runs cannot
    exhaust ``/dev/shm``; the columns module additionally chains the same
    sweep onto ``SIGTERM`` for kills that bypass atexit.
    """
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=True)
    _EXECUTORS.clear()
    release_all_segments()


atexit.register(shutdown_pools)


def split_batch(batch: PacketBatch, chunk_size: int) -> List[PacketBatch]:
    """Split a batch into time-ordered contiguous chunks.

    Processing the chunks in order through any engine leaves the same
    state as processing the whole batch at once (and as the scalar loop):
    every kernel finishes its chunk before the next starts, and
    :meth:`PacketBatch.slice_view` carries every backing column over as a
    view — C-level list slices for the Python fields, zero-copy windows
    for the encoded :class:`~repro.traffic.columns.ColumnStore` columns.
    An empty batch splits into no chunks at all (``[]``), not one empty
    chunk.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n = len(batch)
    if n == 0:
        return []
    return [
        batch.slice_view(start, min(start + chunk_size, n))
        for start in range(0, n, chunk_size)
    ]


def _tally_chunk(
    values: Sequence[Optional[int]], size: int
) -> Tuple[Dict[int, int], int]:
    """Worker task core: count one chunk of a run's values.

    Returns ``(tally, dropped)`` — in-domain occurrence counts per value
    and the number of out-of-domain values (the scalar path's
    ``values_dropped``).  Value-free packets are skipped, exactly as the
    serial counting kernel skips them: ``None`` in plain list chunks, the
    columns sentinel ``-1`` in encoded array/memoryview chunks.  On an
    int64 ndarray chunk the count runs through ``numpy.bincount`` (which
    releases the GIL, so thread workers genuinely run concurrently).
    """
    if _np is not None and isinstance(values, _np.ndarray):
        present = values[values >= 0]
        dropped = int((present >= size).sum())
        in_domain = present[present < size]
        if not len(in_domain):
            return {}, dropped
        counts = _np.bincount(in_domain)
        nonzero = _np.nonzero(counts)[0]
        return {int(v): int(counts[v]) for v in nonzero}, dropped
    tally: Dict[int, int] = {}
    dropped = 0
    for value in values:
        if value is None or value < 0:
            continue
        if value >= size:
            dropped += 1
        else:
            tally[value] = tally.get(value, 0) + 1
    return tally, dropped


def _chunk_max(timestamps: Optional[Sequence[float]]) -> Optional[float]:
    """Max timestamp of a chunk (None when absent/empty) — cooldown bound."""
    if timestamps is None or len(timestamps) == 0:
        return None
    if _np is not None and isinstance(timestamps, _np.ndarray):
        return float(timestamps.max())
    return max(timestamps)


def _tally_task(
    values: Sequence[Optional[int]],
    size: int,
    timestamps: Optional[Sequence[float]] = None,
) -> Tuple[Dict[int, int], int, Optional[float]]:
    """Worker task over in-memory chunks (thread views or pickled lists)."""
    tally, dropped = _tally_chunk(values, size)
    return tally, dropped, _chunk_max(timestamps)


def _tally_task_shm(
    values_desc: ColumnDescriptor,
    start: int,
    stop: int,
    size: int,
    ts_desc: Optional[ColumnDescriptor] = None,
) -> Tuple[Dict[int, int], int, Optional[float]]:
    """Worker task over a shared-memory column: attach, read in place.

    The pickled inputs are descriptors plus chunk bounds (~100 bytes);
    the chunk's rows never cross the process boundary.  Views are dropped
    before the segment handle closes so the parent's unlink can reclaim
    the memory promptly.
    """
    with attach_column(values_desc) as column:
        window = column.values[start:stop]
        tally, dropped = _tally_chunk(window, size)
        del window
    max_ts: Optional[float] = None
    if ts_desc is not None:
        with attach_column(ts_desc) as column:
            window = column.values[start:stop]
            max_ts = _chunk_max(window)
            del window
    return tally, dropped, max_ts


def _merge_tallies(
    parts: Iterable[Tuple[Dict[int, int], int]]
) -> Tuple[List[Tuple[int, int]], int]:
    """Sum per-chunk tallies into one ascending ``(value, count)`` list.

    Frequency-cell addition is the exact-merge rule: occurrence counts per
    value add across any partition of the run, and ascending order matches
    the serial ``_tally`` output, so the downstream ``_apply_counts`` call
    sees byte-for-byte the same input as the single-worker path.
    """
    total: Dict[int, int] = {}
    dropped = 0
    for tally, chunk_dropped in parts:
        dropped += chunk_dropped
        for value, count in tally.items():
            total[value] = total.get(value, 0) + count
    return sorted(total.items()), dropped


class _MergeEntry:
    """Picklable batch-entry snapshot of one merge-mode run's slot state.

    Built during the submit phase *without* calling ``_state_for`` (slot
    repurposing must still happen in apply order), shipped to speculating
    workers so each can run a fully local replay, and kept by the parent
    as the reference state the per-chunk tracker-fixpoint check compares
    the live slot against at merge time.  A snapshot that turns out wrong
    — the apply phase resets the slot, or an earlier run of the same
    batch mutates it first — simply fails the fixpoint check, and the
    chunk falls back to fold/replay; exactness never depends on the
    snapshot being right.
    """

    __slots__ = (
        "size",
        "width_mask",
        "k_sigma",
        "min_samples",
        "margin",
        "cooldown",
        "percentile_alert",
        "percent",
        "steps_per_update",
        "square",
        "count_is_constant",
        "count",
        "xsum",
        "xsumsq",
        "freqs",
        "low",
        "high",
        "position",
        "total",
        "moves",
        "cells",
        "pos_mirror",
        "last_alert",
        "last_percentile_alert",
    )

    def wire_copy(self, strip_arrays: bool = False) -> "_MergeEntry":
        """A shippable copy; ``strip_arrays`` drops the freqs/cells arrays
        (they travel as shared-memory columns instead of pickle)."""
        clone = _MergeEntry()
        for name in self.__slots__:
            setattr(clone, name, getattr(self, name))
        if strip_arrays:
            clone.freqs = None
            clone.cells = None
        return clone

    def local_state(self) -> "_MergeLocal":
        """Build a fully local replica of the slot from this snapshot."""
        tracker = PercentileTracker(
            self.size,
            percent=self.percent,
            steps_per_update=self.steps_per_update,
        )
        tracker.freqs[:] = self.freqs
        tracker.low = self.low
        tracker.high = self.high
        tracker.total = self.total
        tracker.moves = self.moves
        tracker._position = self.position
        stats = ScaledStats(
            square=self.square, count_is_constant=self.count_is_constant
        )
        stats.count = self.count
        stats.xsum = self.xsum
        stats.xsumsq = self.xsumsq
        stats._sd_dirty = True
        return _MergeLocal(
            self,
            stats,
            tracker,
            {},
            self.cells,
            self.pos_mirror,
            self.last_alert,
            self.last_percentile_alert,
        )


class _MergeLocal:
    """A fully local tracker+alert state and the shared chunk replay.

    One pure routine (:meth:`replay`) drives both sides of the merge:
    workers speculate chunks against the shipped batch-entry snapshot
    (fresh local objects), and the parent replays unprovable chunks
    against the *live* objects — so the speculative stream and the
    fallback stream are the same code by construction, and both
    reproduce the scalar ``_update_frequency`` event order exactly:
    value-free packets tick-then-sync (gated on the tracker holding a
    position), dropped values return before the tracker, in-domain
    values run cell RMW → ``tracker.observe`` → percentile sync →
    k·σ judgement, with the percentile digest's ``previous`` read from
    the ``reg_pos`` register *mirror* (which can lag the tracker — it
    starts at the register's entry value, possibly never written yet).
    """

    __slots__ = (
        "entry",
        "stats",
        "tracker",
        "cells",
        "entry_cells",
        "pos_mirror",
        "last_alert",
        "last_percentile_alert",
        "records",
        "observed",
        "dropped",
        "touched",
        "synced",
    )

    def __init__(
        self,
        entry: _MergeEntry,
        stats: ScaledStats,
        tracker: PercentileTracker,
        cells: Dict[int, int],
        entry_cells: Any,
        pos_mirror: int,
        last_alert: Optional[float],
        last_percentile_alert: Optional[float],
    ):
        self.entry = entry
        self.stats = stats
        self.tracker = tracker
        self.cells = cells
        self.entry_cells = entry_cells
        self.pos_mirror = pos_mirror
        self.last_alert = last_alert
        self.last_percentile_alert = last_percentile_alert
        self.records: List[Tuple[int, ...]] = []
        self.observed = 0
        self.dropped = 0
        self.touched = False
        self.synced = False

    def replay(self, values: Any, timestamps: Any) -> None:
        """Replay one chunk's events in scalar ``_update_frequency`` order.

        ``values`` may carry either ``None`` (list form) or the columns
        sentinel ``-1`` (encoded form) for value-free packets; timestamps
        are coerced to plain floats so local arithmetic matches scalar.
        """
        entry = self.entry
        size = entry.size
        width_mask = entry.width_mask
        stats = self.stats
        tracker = self.tracker
        cells = self.cells
        entry_cells = self.entry_cells
        for idx in range(len(values)):
            raw = values[idx]
            if raw is None or raw < 0:
                if tracker.has_value:
                    tracker.tick()
                    self._sync_percentile(idx, float(timestamps[idx]))
                continue
            value = int(raw)
            if value >= size:
                self.dropped += 1
                continue
            old = cells.get(value)
            if old is None:
                old = int(entry_cells[value])
            sample = stats.observe_frequency(old)
            cells[value] = sample & width_mask
            self.touched = True
            self.observed += 1
            now = float(timestamps[idx])
            tracker.observe(value)
            self._sync_percentile(idx, now)
            self._maybe_alert(idx, value, sample, now)

    def _sync_percentile(self, idx: int, now: float) -> None:
        # Callers only reach this with the tracker holding a position,
        # mirroring library._sync_percentile's reachable paths.
        previous = self.pos_mirror
        position = self.tracker.value
        self.pos_mirror = position
        self.synced = True
        if position != previous:
            self._maybe_percentile_alert(idx, position, previous, now)

    def _maybe_percentile_alert(
        self, idx: int, position: int, previous: int, now: float
    ) -> None:
        entry = self.entry
        if not entry.percentile_alert:
            return
        if self.stats.count < entry.min_samples:
            return
        last = self.last_percentile_alert
        if last is not None and entry.cooldown > 0:
            if now - last < entry.cooldown:
                return
        self.last_percentile_alert = now
        self.records.append((DIGEST_KIND_PERCENTILE, idx, position, previous))

    def _maybe_alert(self, idx: int, value: int, sample: int, now: float) -> None:
        entry = self.entry
        if entry.k_sigma <= 0:
            return
        stats = self.stats
        if stats.count < entry.min_samples:
            return
        last = self.last_alert
        if last is not None and entry.cooldown > 0 and (now - last) < entry.cooldown:
            return
        if not stats.is_outlier(sample, k_sigma=entry.k_sigma, margin=entry.margin):
            return
        self.last_alert = now
        self.records.append(
            (
                DIGEST_KIND_KSIGMA,
                idx,
                value,
                sample,
                stats.scaled(sample),
                stats.xsum,
                stats.stddev_nx,
                stats.count,
            )
        )


class _MergeSpeculation:
    """A speculating worker's claimed chunk outcome: local digest records
    (chunk-relative sequence numbers; a ``bytes`` blob on the shm path)
    plus the claimed exit state of its local slot replica."""

    __slots__ = (
        "records",
        "count",
        "xsum",
        "xsumsq",
        "freqs",
        "low",
        "high",
        "position",
        "total",
        "moves",
        "cells",
        "pos_mirror",
        "last_alert",
        "last_percentile_alert",
        "observed",
        "touched",
        "synced",
    )


def _ship_speculation(local: _MergeLocal, encode: bool) -> _MergeSpeculation:
    """Pack a local replay's outcome for the trip back to the parent."""
    sim = _MergeSpeculation()
    records: Any = local.records
    if encode and records:
        try:
            records = encode_digest_records(records)
        except OverflowError:  # a field beyond int64: ship the raw tuples
            records = local.records
    sim.records = records
    stats = local.stats
    sim.count = stats.count
    sim.xsum = stats.xsum
    sim.xsumsq = stats.xsumsq
    tracker = local.tracker
    sim.freqs = list(tracker.freqs)
    sim.low = tracker.low
    sim.high = tracker.high
    sim.position = tracker._position
    sim.total = tracker.total
    sim.moves = tracker.moves
    sim.cells = local.cells
    sim.pos_mirror = local.pos_mirror
    sim.last_alert = local.last_alert
    sim.last_percentile_alert = local.last_percentile_alert
    sim.observed = local.observed
    sim.touched = local.touched
    sim.synced = local.synced
    return sim


def _merge_task(
    values: Sequence[Optional[int]],
    size: int,
    timestamps: Sequence[float],
    entry: Optional[_MergeEntry] = None,
    encode: bool = False,
) -> Tuple[Dict[int, int], int, Optional[float], Optional[_MergeSpeculation]]:
    """Merge-mode worker task over in-memory chunks: tally plus (when an
    entry snapshot was shipped) the fully local speculative replay."""
    tally, dropped = _tally_chunk(values, size)
    max_ts = _chunk_max(timestamps)
    sim = None
    if entry is not None:
        local = entry.local_state()
        local.replay(values, timestamps)
        sim = _ship_speculation(local, encode=encode)
    return tally, dropped, max_ts, sim


def _merge_task_shm(  # worker-context
    values_desc: ColumnDescriptor,
    start: int,
    stop: int,
    size: int,
    ts_desc: ColumnDescriptor,
    entry: Optional[_MergeEntry] = None,
    freqs_desc: Optional[ColumnDescriptor] = None,
    cells_desc: Optional[ColumnDescriptor] = None,
) -> Tuple[Dict[int, int], int, Optional[float], Optional[_MergeSpeculation]]:
    """Merge-mode worker task over shared-memory columns.

    The entry snapshot's two arrays (tracker freqs, cell counts) ride in
    the same segment as the value/timestamp columns; the pickled payload
    is descriptors plus the snapshot's scalar fields.  Digest records
    ship back as one encoded int64 blob.
    """
    with attach_column(values_desc) as vcol, attach_column(ts_desc) as tcol:
        vwindow = vcol.values[start:stop]
        twindow = tcol.values[start:stop]
        tally, dropped = _tally_chunk(vwindow, size)
        max_ts = _chunk_max(twindow)
        sim = None
        if entry is not None:
            if freqs_desc is not None:
                with attach_column(freqs_desc) as col:
                    entry.freqs = [int(v) for v in col.values]
            if cells_desc is not None:
                with attach_column(cells_desc) as col:
                    entry.cells = [int(v) for v in col.values]
            local = entry.local_state()
            local.replay(vwindow, twindow)
            sim = _ship_speculation(local, encode=True)
        del vwindow, twindow
    return tally, dropped, max_ts, sim


class _CellWindow:
    """Read-only view of one slot's cell registers, indexable by value —
    the parent-side stand-in for the snapshot's shipped cells array."""

    __slots__ = ("_counters", "_base")

    def __init__(self, counters: Any, base: int):
        self._counters = counters
        self._base = base

    def __getitem__(self, value: int) -> int:
        return self._counters.read(self._base + value)


class ParallelBatchEngine(BatchEngine):
    """A :class:`BatchEngine` that fans independent tally work onto a pool.

    Args:
        stat4: the library instance to drive.
        backend: kernel backend, as for :class:`BatchEngine`.
        workers: worker count; ``1`` (the default) delegates every batch
            to the serial engine, so ``workers=1`` and ``workers=N`` are
            interchangeable bit for bit.
        executor: ``"auto"``/``"thread"`` (thread pool over zero-copy
            column views), ``"process"`` (process pool; chunks travel as
            shared-memory descriptors, or picklable lists when
            ``share_columns=False``), or ``"serial"`` (never fan out —
            debugging aid).
        min_chunk: smallest per-worker chunk worth dispatching; batches or
            runs below ``2 * min_chunk`` stay serial (pool overhead would
            dominate).
        share_columns: back process-pool chunks with
            ``multiprocessing.shared_memory`` segments (the zero-copy
            path).  ``False`` re-ships plain value lists per task — the
            pre-zero-copy behaviour, kept as an A/B knob and fallback.
        measure_shipping: account the pickled bytes of every process-pool
            task payload in ``shipped_bytes`` / ``shipped_tasks`` /
            ``last_batch_shipped_bytes`` (bench instrumentation; adds a
            ``pickle.dumps`` per task, so off by default).
        staleness: merge-engine digest policy.  ``"exact"`` (default)
            keeps the replay fallback, so output is bit-identical to
            scalar.  ``"bounded"`` adopts every chunk's speculative digest
            stream (computed against the batch-entry snapshot) and skips
            the fixpoint/replay machinery: registers, moments, and the
            tracker stay bit-exact, but alert decisions may lag state by
            at most one batch prefix.  Opt-in; benched via the scenario
            scorer.

    Merge-engine accounting (cumulative across batches):
    ``merge_adopted_chunks`` fixpoint-proven speculations installed,
    ``merge_folded_chunks`` provably-silent folds,
    ``merge_replayed_chunks`` serial fallback replays (the exact-mode
    boundary-crossing rate), ``merge_stale_chunks`` bounded-mode stale
    adoptions.
    """

    def __init__(
        self,
        stat4: Stat4,
        backend: str = "auto",
        workers: int = 1,
        executor: str = "auto",
        min_chunk: int = 512,
        share_columns: bool = True,
        measure_shipping: bool = False,
        staleness: str = "exact",
    ):
        super().__init__(stat4, backend=backend)
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; pick one of {_EXECUTOR_KINDS}"
            )
        if staleness not in ("exact", "bounded"):
            raise ValueError(
                f"unknown staleness {staleness!r}; pick 'exact' or 'bounded'"
            )
        self.workers = workers
        self.executor = executor
        self.min_chunk = min_chunk
        self.share_columns = share_columns
        self.measure_shipping = measure_shipping
        self.staleness = staleness
        self.shipped_bytes = 0
        self.shipped_tasks = 0
        self.last_batch_shipped_bytes = 0
        self.merge_adopted_chunks = 0
        self.merge_folded_chunks = 0
        self.merge_replayed_chunks = 0
        self.merge_stale_chunks = 0

    # -- fan-out policy -------------------------------------------------------

    @staticmethod
    def _fan_out_mode(spec: TrackSpec) -> Optional[str]:
        """Classify how a run's work distributes (see the module docstring).

        Consumes the analyzer-derived eligibility table: the spec is
        projected onto its kernel shape (every shape field read
        symmetrically — ``kind``, tracker presence, ``k_sigma``,
        ``percentile_alert``) and looked up in the table the dataflow
        pass derived from the kernel ASTs, cross-checked once against
        :data:`DECLARED_ELIGIBILITY`.

        Spec-only on purpose: deciding from the spec (a tracker exists iff
        ``spec.percent`` is set) means no ``_state_for`` call during the
        submit phase, so slot repurposing still happens in apply order.

        Returns:
            ``"tally"`` — merge-exact: merge-only.
            ``"tracked"`` — replay-exact via the tracker stream: merge
            plus a serial tracker replay.
            ``"alerting"`` — replay-exact via the alert stream: merge
            plus a serial alert replay with per-chunk gate folding.
            ``"merge"`` — merge-replay-exact: local-state speculation
            reconciled by adopt/fold/replay (see the module docstring).
            ``None`` — order-dependent: run the serial kernels.
        """
        table, shape_key_of_spec = _eligibility()
        return table.get(shape_key_of_spec(spec))

    @staticmethod
    def _fan_out_eligible(spec: TrackSpec) -> bool:
        """Whether any fan-out mode applies (back-compat predicate)."""
        return ParallelBatchEngine._fan_out_mode(spec) is not None

    # -- chunk preparation ----------------------------------------------------

    def _run_full_coverage(
        self, batch: PacketBatch, spec: TrackSpec, segment: List[_Event]
    ) -> bool:
        """Single-stage run covering every packet in order — the common
        every-packet-matches case, where the batch columns ARE the run's
        event streams and can be shipped without gathering."""
        m = len(segment)
        return (
            m == len(batch)
            and len(self.stat4.binding_tables) == 1
            and segment[0][0] == 0
            and segment[-1][0] == m - 1
        )

    def _run_columns(
        self,
        batch: PacketBatch,
        spec: TrackSpec,
        segment: List[_Event],
        need_ts: bool,
        as_arrays: bool,
    ) -> Tuple[Any, Optional[Any]]:
        """The run's event-ordered value (and timestamp) streams.

        ``as_arrays=True`` returns contiguous encoded columns (``None``
        → ``-1``) ready for zero-copy slicing or shared-memory packing;
        ``False`` returns plain lists (the picklable legacy shape).
        """
        if self._run_full_coverage(batch, spec, segment):
            if as_arrays:
                return (
                    batch.values_array_for(spec),
                    batch.timestamps_array() if need_ts else None,
                )
            return batch.values_for(spec), batch.timestamps if need_ts else None
        values = batch.values_for(spec)
        timestamps = batch.timestamps
        column = [values[pkt] for pkt, _stage, _spec in segment]
        ts = (
            [timestamps[pkt] for pkt, _stage, _spec in segment]
            if need_ts
            else None
        )
        if as_arrays:
            encoded = encode_column(column)
            if ts is not None:
                if _np is not None:
                    ts = _np.asarray(ts, dtype=_np.float64)
                else:
                    import array as _array

                    ts = _array.array("d", ts)
            return encoded, ts
        return column, ts

    def _chunk_bounds(self, m: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` windows, at most one per worker."""
        chunk = -(-m // self.workers)  # ceil
        return [(i, min(i + chunk, m)) for i in range(0, m, chunk)]

    def _account_shipping(self, payload: Any) -> None:
        if not self.measure_shipping:
            return
        nbytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self.shipped_bytes += nbytes
        self.last_batch_shipped_bytes += nbytes
        self.shipped_tasks += 1

    def _merge_entry(self, spec: TrackSpec) -> _MergeEntry:
        """Batch-entry snapshot of a merge run's slot (submit phase).

        Deliberately avoids ``_state_for``: slot repurposing must still
        happen in apply order.  When the slot does not exist yet (or is
        bound to a different spec and will be reset), the snapshot is the
        fresh zero state the apply phase's reset produces; if that guess
        is wrong — e.g. an earlier run of the same batch mutates the slot
        first — the merge-time fixpoint check rejects the speculation and
        the chunk falls back to fold/replay.
        """
        stat4 = self.stat4
        size = stat4.config.counter_size
        entry = _MergeEntry()
        entry.size = size
        entry.width_mask = (1 << stat4.counters.width) - 1
        entry.k_sigma = spec.k_sigma
        entry.min_samples = spec.min_samples
        entry.margin = spec.margin
        entry.cooldown = max(stat4.config.alert_cooldown, spec.cooldown)
        entry.percentile_alert = bool(spec.percentile_alert)
        entry.percent = spec.percent if spec.percent is not None else 50
        state = stat4._states.get(spec.dist)
        if state is not None and state.spec == spec and state.tracker is not None:
            stats = state.stats
            tracker = state.tracker
            entry.steps_per_update = tracker.steps_per_update
            entry.square = stats.square
            entry.count_is_constant = stats.count_is_constant
            entry.count = stats.count
            entry.xsum = stats.xsum
            entry.xsumsq = stats.xsumsq
            entry.freqs = list(tracker.freqs)
            entry.low = tracker.low
            entry.high = tracker.high
            entry.position = tracker._position
            entry.total = tracker.total
            entry.moves = tracker.moves
            entry.last_alert = state.last_alert
            entry.last_percentile_alert = state.last_percentile_alert
            base = stat4.config.cell_index(spec.dist, 0)
            counters = stat4.counters
            entry.cells = [counters.read(base + i) for i in range(size)]
            entry.pos_mirror = stat4.reg_pos.read(spec.dist)
        else:
            entry.steps_per_update = 1
            entry.square = square_for_target()
            entry.count_is_constant = False
            entry.count = entry.xsum = entry.xsumsq = 0
            entry.freqs = [0] * size
            entry.low = entry.high = entry.total = entry.moves = 0
            entry.position = None
            entry.last_alert = None
            entry.last_percentile_alert = None
            entry.cells = [0] * size
            entry.pos_mirror = 0
        return entry

    def _speculates(self, chunk_index: int) -> bool:
        """Which chunks run the local speculation: all of them in bounded
        mode; only the first (the one whose fixpoint can hold) in exact
        mode — later chunks' entry states almost always differ from the
        batch-entry snapshot, so their speculation would be wasted."""
        return self.staleness == "bounded" or chunk_index == 0

    def _submit_run(
        self,
        pool: Executor,
        pool_kind: str,
        batch: PacketBatch,
        spec: TrackSpec,
        segment: List[_Event],
        size: int,
        need_ts: bool,
        entry: Optional[_MergeEntry] = None,
    ) -> Tuple[List[Tuple[int, int]], List[Any], Optional[SharedColumnSegment]]:
        """Dispatch one run's chunk tallies; returns (bounds, futures, shm).

        Thread pools get zero-copy views of the encoded columns.  Process
        pools get shared-memory descriptors (``share_columns=True``) or
        pickled list chunks (the legacy fallback, also taken when segment
        creation fails — e.g. no ``/dev/shm``).  Merge-mode runs (``entry``
        given) dispatch the local-state tasks instead: speculating chunks
        carry the batch-entry snapshot, whose freqs/cells arrays ride the
        shared segment as two extra int64 columns on the shm path.
        """
        bounds = self._chunk_bounds(len(segment))
        futures: List[Any] = []
        if pool_kind != "process":
            column, ts = self._run_columns(
                batch, spec, segment, need_ts, as_arrays=True
            )
            for i, (start, stop) in enumerate(bounds):
                vwin = slice_backing(column, start, stop)
                twin = slice_backing(ts, start, stop) if ts is not None else None
                if entry is not None:
                    futures.append(
                        pool.submit(
                            _merge_task,
                            vwin,
                            size,
                            twin,
                            entry if self._speculates(i) else None,
                        )
                    )
                else:
                    futures.append(pool.submit(_tally_task, vwin, size, twin))
            return bounds, futures, None
        segment_shm: Optional[SharedColumnSegment] = None
        if self.share_columns:
            try:
                column, ts = self._run_columns(
                    batch, spec, segment, need_ts, as_arrays=True
                )
                packed = [("values", "q", column)]
                if ts is not None:
                    packed.append(("timestamps", "d", ts))
                if entry is not None:
                    packed.append(("entry_freqs", "q", encode_column(entry.freqs)))
                    packed.append(("entry_cells", "q", encode_column(entry.cells)))
                segment_shm = SharedColumnSegment.pack(packed)
            except Exception:
                segment_shm = None  # no usable /dev/shm: ship lists below
        if segment_shm is not None:
            values_desc = segment_shm.descriptors["values"]
            ts_desc = segment_shm.descriptors.get("timestamps")
            if entry is not None:
                freqs_desc = segment_shm.descriptors["entry_freqs"]
                cells_desc = segment_shm.descriptors["entry_cells"]
                wire = entry.wire_copy(strip_arrays=True)
                for i, (start, stop) in enumerate(bounds):
                    payload = (
                        values_desc,
                        start,
                        stop,
                        size,
                        ts_desc,
                        wire if self._speculates(i) else None,
                        freqs_desc,
                        cells_desc,
                    )
                    self._account_shipping(payload)
                    futures.append(pool.submit(_merge_task_shm, *payload))
                return bounds, futures, segment_shm
            for start, stop in bounds:
                payload = (values_desc, start, stop, size, ts_desc)
                self._account_shipping(payload)
                futures.append(pool.submit(_tally_task_shm, *payload))
            return bounds, futures, segment_shm
        column, ts = self._run_columns(
            batch, spec, segment, need_ts, as_arrays=False
        )
        for i, (start, stop) in enumerate(bounds):
            if entry is not None:
                payload = (
                    column[start:stop],
                    size,
                    ts[start:stop] if ts is not None else None,
                    entry if self._speculates(i) else None,
                    True,
                )
                self._account_shipping(payload)
                futures.append(pool.submit(_merge_task, *payload))
                continue
            payload = (
                column[start:stop],
                size,
                ts[start:stop] if ts is not None else None,
            )
            self._account_shipping(payload)
            futures.append(pool.submit(_tally_task, *payload))
        return bounds, futures, None

    # -- entry point ----------------------------------------------------------

    def process(self, batch: PacketBatch) -> BatchResult:
        """Ingest one batch, fanning eligible tally work onto the pool.

        Two phases: *submit* walks the per-distribution runs in scalar
        order and enqueues chunk tallies for every eligible run (touching
        no engine state); *apply* then replays the same run order on the
        main thread, merging worker tallies where they exist, replaying
        tracker walks and alert decisions serially for the widened modes,
        and running the serial kernels everywhere else.  All state
        mutation happens in the apply phase, in scalar order, on one
        thread.  Shared-memory segments created for this batch are
        released before returning (crash sweeps are handled by
        :func:`shutdown_pools` and the columns module's signal hook).
        """
        if (
            self.workers <= 1
            or self.executor == "serial"
            or len(batch) < 2 * self.min_chunk
        ):
            return super().process(batch)
        stat4 = self.stat4
        n = len(batch)
        result = BatchResult(packets=n, backend=self.backend)
        stat4.packets_seen += n
        events = self._match(batch)
        sink = _DigestSink()
        pool_kind = "process" if self.executor == "process" else "thread"
        pool = _pool(pool_kind, self.workers)
        size = stat4.config.counter_size
        self.last_batch_shipped_bytes = 0
        segments: List[SharedColumnSegment] = []
        plan = []
        try:
            for dist in sorted(events):
                for spec, segment in self._split_runs(events[dist]):
                    mode = self._fan_out_mode(spec)
                    if mode is None or len(segment) < 2 * self.min_chunk:
                        plan.append((spec, segment, None, None, None, None))
                        continue
                    entry = self._merge_entry(spec) if mode == "merge" else None
                    bounds, futures, shm = self._submit_run(
                        pool,
                        pool_kind,
                        batch,
                        spec,
                        segment,
                        size,
                        need_ts=(mode in ("alerting", "merge")),
                        entry=entry,
                    )
                    if shm is not None:
                        segments.append(shm)
                    plan.append((spec, segment, mode, bounds, futures, entry))
            for spec, segment, mode, bounds, futures, entry in plan:
                if mode is None:
                    self._process_run(spec, segment, batch, sink, result)
                elif mode == "tally":
                    self._apply_tally(spec, segment, futures, result)
                elif mode == "tracked":
                    self._apply_tracked(spec, segment, batch, futures, result)
                elif mode == "merge":
                    self._apply_merge(
                        spec, segment, batch, bounds, futures, entry, sink, result
                    )
                else:
                    self._apply_alerting(
                        spec, segment, batch, bounds, futures, sink, result
                    )
            result.digests.extend(sink.in_scalar_order())
        finally:
            for shm in segments:
                shm.release()
        return result

    # -- apply phase ----------------------------------------------------------

    def _apply_tally(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        futures: List[Any],
        result: BatchResult,
    ) -> None:
        """Merge-only mode: fold the summed tallies into cells and moments."""
        state = self.stat4._state_for(spec)
        counts, dropped = _merge_tallies(
            (tally, chunk_dropped)
            for tally, chunk_dropped, _max_ts in (f.result() for f in futures)
        )
        state.values_dropped += dropped
        result.kernels["frequency_parallel"] = (
            result.kernels.get("frequency_parallel", 0) + len(segment)
        )
        if counts:
            self._apply_counts(state, counts)

    def _apply_tracked(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        futures: List[Any],
        result: BatchResult,
    ) -> None:
        """Tracked mode: merged fold plus a serial tracker replay.

        Exactness: the tracker's state never feeds the cells or moments,
        so folding the merged tallies first cannot perturb it; the replay
        then walks the run's exact observe/tick sequence (dropped values
        excluded entirely, value-free packets ticking only once the
        tracker has a position — precisely the scalar ``_update_frequency``
        flow), and the position registers are synced once under the serial
        ``_percentile_kernel``'s write gate.  No digests exist in this
        mode (no k·σ, no percentile alert), so the digest stream is
        trivially identical.
        """
        stat4 = self.stat4
        state = stat4._state_for(spec)
        size = stat4.config.counter_size
        counts, dropped = _merge_tallies(
            (tally, chunk_dropped)
            for tally, chunk_dropped, _max_ts in (f.result() for f in futures)
        )
        state.values_dropped += dropped
        result.kernels["percentile_parallel"] = (
            result.kernels.get("percentile_parallel", 0) + len(segment)
        )
        tracker = state.tracker
        values = batch.values_for(spec)
        events: List[int] = []
        for pkt, _stage, _spec in segment:
            value = values[pkt]
            if value is None:
                events.append(-1)  # value-free packet: a tracker tick
            elif value < size:
                events.append(value)
            # else: dropped — the scalar path returns before the tracker.
        if counts:
            self._apply_counts(state, counts)
        if self._tracker_replay(tracker, events):
            dist = state.spec.dist
            stat4.reg_pos.write(dist, tracker.value)
            stat4.reg_low.write(dist, tracker.low)
            stat4.reg_high.write(dist, tracker.high)

    def _apply_alerting(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        bounds: List[Tuple[int, int]],
        futures: List[Any],
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Alerting mode: per-chunk gate folding plus a serial alert replay.

        Exactness: alerts are judged by the library's own ``_maybe_alert``
        against the live ``ScaledStats`` — exactly the scalar call, with
        the same ``(sample, index, now)`` — while cell counts run through
        a local dict seeded from one register read per unique value
        (wrapped with the register width mask on every increment, so
        ``old``/``sample`` match the scalar read-modify-write sequence
        bit for bit).  A chunk folds to the telescoped bulk update only
        when its sub-tally proves no packet in it can alert (``min_samples``
        headroom or a covering cooldown window — see the module
        docstring); inside a folded chunk no alert fires, so ``last_alert``
        is constant and the cooldown bound stays valid for every packet.
        Cells are written once per unique value at the end and the derived
        measures synced once — the same coalescing as ``_apply_counts``,
        which never changes final register contents.
        """
        stat4 = self.stat4
        state = stat4._state_for(spec)
        stats = state.stats
        counters = stat4.counters
        width_mask = (1 << counters.width) - 1
        base = stat4.config.cell_index(spec.dist, 0)
        size = stat4.config.counter_size
        values = batch.values_for(spec)
        timestamps = batch.timestamps
        cooldown = max(stat4.config.alert_cooldown, spec.cooldown)
        result.kernels["alert_parallel"] = (
            result.kernels.get("alert_parallel", 0) + len(segment)
        )
        local: Dict[int, int] = {}
        touched = False
        for (start, stop), future in zip(bounds, futures):
            tally, dropped, max_ts = future.result()
            if not tally:
                # Only value-free and out-of-domain packets: the scalar
                # path returns before its alert check on every one.
                state.values_dropped += dropped
                continue
            occurrences = sum(tally.values())
            gated = stats.count + occurrences < spec.min_samples
            if (
                not gated
                and state.last_alert is not None
                and cooldown > 0
                and max_ts is not None
            ):
                gated = (max_ts - state.last_alert) < cooldown
            if gated:
                state.values_dropped += dropped
                for value, repeat in sorted(tally.items()):
                    old = local.get(value)
                    if old is None:
                        old = counters.read(base + value)
                    if old + repeat > width_mask:
                        # Near-wrap cell: replay per occurrence so the
                        # wrapped counts feed the moments exactly.
                        current = old
                        for _ in range(repeat):
                            stats.observe_frequency(current)
                            current = (current + 1) & width_mask
                        local[value] = current
                    else:
                        stats.observe_frequencies(old, repeat)
                        local[value] = old + repeat
                touched = True
                continue
            for pkt, stage, _spec in segment[start:stop]:
                value = values[pkt]
                if value is None:
                    continue
                if value >= size:
                    state.values_dropped += 1
                    continue
                old = local.get(value)
                if old is None:
                    old = counters.read(base + value)
                sample = stats.observe_frequency(old)
                local[value] = sample & width_mask
                touched = True
                now = timestamps[pkt]
                sink.set(pkt, stage, now)
                stat4._maybe_alert(
                    state, sink, sample=sample, index=value, now=now
                )
        for value, count in local.items():
            counters.write(base + value, count)
        if touched:
            stat4._sync_stats(state)

    def _apply_merge(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        bounds: List[Tuple[int, int]],
        futures: List[Any],
        entry: _MergeEntry,
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Merge mode: adopt proven speculation, fold silent chunks,
        replay the rest from their entry state (module docstring has the
        full exactness argument).

        Chunks are reconciled strictly in order on this one thread, so
        each chunk's "entry state" below is exactly the serial state after
        every earlier chunk.  ``local`` (the run's wrapped cell dict),
        ``pos_mirror`` (the ``reg_pos`` register mirror), and the cooldown
        stamps thread through all three resolution paths; cells, derived
        measures, and the position registers are written once at the end
        under the scalar write gates — the same coalescing as the other
        modes, which never changes final register contents.
        """
        stat4 = self.stat4
        state = stat4._state_for(spec)
        stats = state.stats
        tracker = state.tracker
        counters = stat4.counters
        width_mask = entry.width_mask
        base = stat4.config.cell_index(spec.dist, 0)
        size = entry.size
        dist = spec.dist
        values = batch.values_for(spec)
        timestamps = batch.timestamps
        cooldown = entry.cooldown
        bounded = self.staleness == "bounded"
        result.kernels["merge_parallel"] = (
            result.kernels.get("merge_parallel", 0) + len(segment)
        )
        local: Dict[int, int] = {}
        # Bounded staleness folds every chunk, so the run's cell overlay
        # can be a flat int64 column instead of a dict: chunk tallies
        # bincount into it and the epilogue writes back only the touched
        # mask.  Falls back to the dict overlay without numpy or when the
        # counter width could overflow the int64 fold.
        col = None
        col_touched = None
        if bounded and _np is not None and width_mask <= 0xFFFFFFFF:
            col = _np.asarray(
                counters._cells[base : base + size], dtype=_np.int64
            )
            col_touched = _np.zeros(size, dtype=bool)
        touched = False
        synced = False
        pos_mirror = stat4.reg_pos.read(dist)
        fixpoint_open = True
        for (start, stop), future in zip(bounds, futures):
            tally, dropped, max_ts, sim = future.result()
            state.values_dropped += dropped
            if sim is not None and not bounded and fixpoint_open:
                fixpoint_open = False
                if self._merge_fixpoint(entry, state, pos_mirror, base):
                    # Tracker fixpoint: the worker's local walk started
                    # from exactly the live entry state, so its claimed
                    # exit IS the serial exit.  Adopt it wholesale.
                    self._adopt_speculation(
                        state, sim, spec, segment, start, timestamps, local, sink
                    )
                    touched = touched or sim.touched
                    if sim.synced:
                        synced = True
                        pos_mirror = sim.pos_mirror
                    self.merge_adopted_chunks += 1
                    continue
            if bounded:
                # Bounded staleness: exact monoid fold + exact tracker
                # walk, stale digest stream from the worker's speculation.
                if col is not None:
                    folded = self._merge_fold_counts_np(
                        state, tally, col, col_touched, width_mask
                    )
                else:
                    folded = self._merge_fold_counts(
                        state, tally, local, counters, base, width_mask
                    )
                if folded:
                    touched = True
                if self._merge_fold_tracker(
                    tracker, segment, start, stop, values, size
                ):
                    synced = True
                    pos_mirror = tracker.value
                if sim is not None:
                    records = self._install_records(
                        sim.records, spec, segment, start, timestamps, sink
                    )
                    kinds = {record[0] for record in records}
                    if DIGEST_KIND_KSIGMA in kinds:
                        state.last_alert = sim.last_alert
                    if DIGEST_KIND_PERCENTILE in kinds:
                        state.last_percentile_alert = sim.last_percentile_alert
                self.merge_stale_chunks += 1
                continue
            occurrences = sum(tally.values())
            headroom = stats.count + occurrences < spec.min_samples
            k_silent = (
                spec.k_sigma <= 0
                or headroom
                or (
                    state.last_alert is not None
                    and cooldown > 0
                    and max_ts is not None
                    and (max_ts - state.last_alert) < cooldown
                )
            )
            p_silent = (
                not spec.percentile_alert
                or headroom
                or (
                    state.last_percentile_alert is not None
                    and cooldown > 0
                    and max_ts is not None
                    and (max_ts - state.last_percentile_alert) < cooldown
                )
            )
            if k_silent and p_silent:
                # Both streams provably silent: no digest can fire, so
                # tracker and moments decouple and the chunk folds.
                if self._merge_fold_counts(
                    state, tally, local, counters, base, width_mask
                ):
                    touched = True
                if self._merge_fold_tracker(
                    tracker, segment, start, stop, values, size
                ):
                    synced = True
                    pos_mirror = tracker.value
                self.merge_folded_chunks += 1
                continue
            # Boundary-crossing chunk: replay per packet from its true
            # entry state through the same routine the workers speculate
            # with, bound to the live objects.
            chunk_values: List[Optional[int]] = []
            chunk_ts: List[float] = []
            for pkt, _stage, _spec in segment[start:stop]:
                chunk_values.append(values[pkt])
                chunk_ts.append(timestamps[pkt])
            run = _MergeLocal(
                entry,
                stats,
                tracker,
                local,
                _CellWindow(counters, base),
                pos_mirror,
                state.last_alert,
                state.last_percentile_alert,
            )
            run.replay(chunk_values, chunk_ts)
            pos_mirror = run.pos_mirror
            state.last_alert = run.last_alert
            state.last_percentile_alert = run.last_percentile_alert
            touched = touched or run.touched
            synced = synced or run.synced
            self._install_records(
                run.records, spec, segment, start, timestamps, sink
            )
            self.merge_replayed_chunks += 1
        if col is not None:
            for value in _np.flatnonzero(col_touched):
                counters.write(base + int(value), int(col[int(value)]))
        else:
            for value, count in local.items():
                counters.write(base + value, count)
        if touched:
            stat4._sync_stats(state)
        if synced:
            stat4.reg_pos.write(dist, pos_mirror)
            stat4.reg_low.write(dist, tracker.low)
            stat4.reg_high.write(dist, tracker.high)

    def _merge_fixpoint(
        self,
        entry: _MergeEntry,
        state: DistributionState,
        pos_mirror: int,
        base: int,
    ) -> bool:
        """The per-chunk tracker fixpoint check: is the live slot exactly
        the snapshot the worker's local walk started from?

        Everything the replay's behaviour depends on is compared: the
        moments (and their squaring routine), the full tracker state
        including bookkeeping counters (the claimed exit installs absolute
        values), both cooldown stamps, the ``reg_pos`` mirror, and every
        cell register.  Equality makes the speculative replay the serial
        replay by construction; any mismatch rejects the speculation and
        costs only the wasted worker-side walk.
        """
        stats = state.stats
        tracker = state.tracker
        if tracker is None:
            return False
        if (
            stats.count != entry.count
            or stats.xsum != entry.xsum
            or stats.xsumsq != entry.xsumsq
            or stats.square is not entry.square
            or stats.count_is_constant != entry.count_is_constant
        ):
            return False
        if (
            tracker._position != entry.position
            or tracker.low != entry.low
            or tracker.high != entry.high
            or tracker.total != entry.total
            or tracker.moves != entry.moves
            or tracker.steps_per_update != entry.steps_per_update
            or tracker.freqs != entry.freqs
        ):
            return False
        if (
            state.last_alert != entry.last_alert
            or state.last_percentile_alert != entry.last_percentile_alert
            or pos_mirror != entry.pos_mirror
        ):
            return False
        counters = self.stat4.counters
        cells = entry.cells
        return all(
            counters.read(base + i) == cells[i] for i in range(entry.size)
        )

    def _adopt_speculation(
        self,
        state: DistributionState,
        sim: _MergeSpeculation,
        spec: TrackSpec,
        segment: List[_Event],
        start: int,
        timestamps: List[float],
        local: Dict[int, int],
        sink: _DigestSink,
    ) -> None:
        """Install a fixpoint-proven chunk's claimed exit state."""
        stats = state.stats
        stats.count = sim.count
        stats.xsum = sim.xsum
        stats.xsumsq = sim.xsumsq
        # One observe_frequency per in-domain packet, as in the scalar
        # loop; the lazy σ cache recomputes on next read either way.
        stats.updates += sim.observed
        stats._sd_dirty = True
        tracker = state.tracker
        tracker.freqs[:] = sim.freqs
        tracker.low = sim.low
        tracker.high = sim.high
        tracker._position = sim.position
        tracker.total = sim.total
        tracker.moves = sim.moves
        state.last_alert = sim.last_alert
        state.last_percentile_alert = sim.last_percentile_alert
        local.update(sim.cells)
        self._install_records(
            sim.records, spec, segment, start, timestamps, sink
        )

    def _merge_fold_counts(
        self,
        state: DistributionState,
        tally: Dict[int, int],
        local: Dict[int, int],
        counters: Any,
        base: int,
        width_mask: int,
    ) -> bool:
        """Telescoped moment/cell fold of one silent chunk — identical to
        the alerting mode's gated fold (near-wrap cells replay their
        occurrences individually so wrapped counts feed the moments
        exactly).  Returns whether any cell was touched."""
        if not tally:
            return False
        stats = state.stats
        for value, repeat in sorted(tally.items()):
            old = local.get(value)
            if old is None:
                old = counters.read(base + value)
            if old + repeat > width_mask:
                current = old
                for _ in range(repeat):
                    stats.observe_frequency(current)
                    current = (current + 1) & width_mask
                local[value] = current
            else:
                stats.observe_frequencies(old, repeat)
                local[value] = old + repeat
        return True

    def _merge_fold_counts_np(
        self,
        state: DistributionState,
        tally: Dict[int, int],
        col: Any,
        col_touched: Any,
        width_mask: int,
    ) -> bool:
        """Vectorized bounded-staleness fold: ``numpy.bincount`` of the
        chunk tally into the register column, with the telescoped moment
        deltas closed over the whole tally at once.

        Bit-identical to :meth:`_merge_fold_counts`: tally keys are
        distinct cells, so summing per-cell telescoped deltas in any
        order gives the same integers, and ``N`` grows by exactly the
        number of previously-empty cells.  Near-wrap cells (the rare
        ``old + repeat > width_mask`` case) drop out of the vector and
        replay their occurrences one by one so wrapped counts feed the
        moments exactly, as in the scalar fold.  Returns whether any
        cell was touched.
        """
        if not tally:
            return False
        stats = state.stats
        n = len(tally)
        vals = _np.fromiter(tally.keys(), dtype=_np.int64, count=n)
        reps = _np.fromiter(tally.values(), dtype=_np.int64, count=n)
        old = col[vals]
        wrap = old + reps > width_mask
        if wrap.any():
            for i in _np.flatnonzero(wrap):
                value = int(vals[i])
                current = int(old[i])
                for _ in range(int(reps[i])):
                    stats.observe_frequency(current)
                    current = (current + 1) & width_mask
                col[value] = current
                col_touched[value] = True
            keep = ~wrap
            vals, reps, old = vals[keep], reps[keep], old[keep]
            if not len(vals):
                return True
        zero_cells = int((old == 0).sum())
        if zero_cells:
            stats.count = stats.count + zero_cells
        total = int(reps.sum())
        stats.xsum = stats.xsum + total
        stats.xsumsq = stats.xsumsq + (
            (int((old * reps).sum()) << 1) + int((reps * reps).sum())
        )
        stats.updates = stats.updates + total
        stats._sd_dirty = True
        # Distinct keys make the bincount a pure scatter-add; float64
        # weights are exact for per-chunk repeat sums below 2**53.
        col += _np.bincount(
            vals, weights=reps, minlength=len(col)
        ).astype(_np.int64)
        col_touched[vals] = True
        return True

    def _merge_fold_tracker(
        self,
        tracker: PercentileTracker,
        segment: List[_Event],
        start: int,
        stop: int,
        values: Column,
        size: int,
    ) -> bool:
        """Walk one chunk's exact observe/tick sequence from the tracker's
        entry state (the resumable walk); returns the sync gate."""
        events: List[int] = []
        for pkt, _stage, _spec in segment[start:stop]:
            value = values[pkt]
            if value is None:
                events.append(-1)
            elif value < size:
                events.append(value)
        return self._tracker_replay(tracker, events)

    def _install_records(
        self,
        records: Any,
        spec: TrackSpec,
        segment: List[_Event],
        start: int,
        timestamps: List[float],
        sink: _DigestSink,
    ) -> List[Tuple[int, ...]]:
        """Re-sequence a chunk's local digest records onto the shared sink.

        Records carry chunk-relative sequence numbers; the absolute
        ``(packet, stage)`` tags come from the run segment, so the sink's
        stable scalar-order sort interleaves them exactly where the serial
        loop would have emitted them (per packet, a percentile-move digest
        precedes the k·σ digest, matching the record order).  Returns the
        decoded records (for the caller's stamp bookkeeping).
        """
        if isinstance(records, (bytes, bytearray)):
            records = decode_digest_records(records)
        if not records:
            return []
        stat4 = self.stat4
        for record in records:
            pkt, stage, _spec = segment[start + record[1]]
            now = timestamps[pkt]
            if record[0] == DIGEST_KIND_PERCENTILE:
                name = spec.percentile_alert
                fields = {
                    "dist": spec.dist,
                    "position": record[2],
                    "previous": record[3],
                    "percent": spec.percent if spec.percent is not None else 0,
                    "generation": spec.generation,
                }
            else:
                name = spec.alert
                fields = {
                    "dist": spec.dist,
                    "index": record[2],
                    "sample": record[3],
                    "scaled_sample": record[4],
                    "xsum": record[5],
                    "stddev_nx": record[6],
                    "count": record[7],
                    "generation": spec.generation,
                }
            sink.records.append(
                (pkt, stage, Digest(name=name, fields=fields, timestamp=now))
            )
            stat4.alerts_emitted += 1
        return records
