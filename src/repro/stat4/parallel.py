# p4-ok-file — host-side parallel execution layer; the per-packet P4
# semantics it reproduces live (and are linted) in repro.stat4.library.
"""Multi-worker Stat4 ingest: zero-copy chunk dispatch with exact merging.

:class:`~repro.stat4.batch.BatchEngine` already turns per-packet updates
into per-batch kernels; this module adds the last level of the hierarchy —
a worker pool that runs independent pieces of that kernel work
concurrently, **without giving up bit-identity** with the scalar loop:

- a trace is split into time-ordered chunks (:func:`split_batch`) that are
  processed strictly in order, so all cross-batch state (interval cursors,
  percentile walks, eviction order) evolves exactly as in serial replay;
- *within* one batch, the work fanned out to workers is chunked value
  **tallying** for dense frequency runs; everything order-dependent is
  replayed on the main thread from the per-chunk sub-tallies (or runs the
  serial kernels outright).

Zero-copy shipping
------------------

Worker chunks are views, not copies.  Thread workers receive zero-copy
windows of the batch's encoded value column
(:meth:`~repro.stat4.batch.PacketBatch.values_array_for`, backed by the
batch's :class:`~repro.traffic.columns.ColumnStore`).  Process workers
attach a ``multiprocessing.shared_memory`` segment by name and read the
rows in place (:func:`~repro.traffic.columns.attach_column`): the pickled
per-task payload is a ~100-byte :class:`ColumnDescriptor` instead of the
chunk's data, which is what lets a process pool win on multi-GB traces.
Segments are registered in the columns module; the engine releases them as
soon as the batch is applied, and :func:`shutdown_pools` (atexit, plus a
chained ``SIGTERM`` handler) sweeps anything a dying run leaves behind so
repeated bench runs cannot exhaust ``/dev/shm``.

Fan-out eligibility and the exactness argument
----------------------------------------------

:meth:`ParallelBatchEngine._fan_out_mode` classifies each run of equal
specs.  The invariant behind all three fanned-out modes is the same: for a
dense frequency slot, after any prefix of a run the moments (N, Xsum,
Xsumsq) and the cell registers are **order-independent functions of the
per-value occurrence counts** — each occurrence's ``observe_frequency``
depends only on its own cell's prior count, the telescoped
``observe_frequencies`` identity folds any grouping of occurrences to the
same sums, and cell writes wrap through ``value & mask``, which composes
modularly.  So per-chunk tallies merged by per-value addition land on
exactly the serial state.  What differs per mode is what must be replayed
serially on top:

- ``"tally"`` (no tracker, no k·σ): nothing.  Merge the tallies, fold once.
- ``"tracked"`` (``spec.percent`` set, no k·σ, no percentile alert): the
  percentile tracker walks one step per packet, which is order-dependent —
  but the tracker never feeds the cells or moments, and with no
  ``percentile_alert`` it emits nothing mid-run.  Workers tally; the main
  thread folds the merged counts, then replays the run's exact
  observe/tick event sequence through the tracker (the vectorized
  ``_tracker_walk`` on numpy, the scalar tracker otherwise) and syncs
  ``reg_pos``/``reg_low``/``reg_high`` once, under the same write gate as
  the serial ``_percentile_kernel`` (an observation landed, or the tracker
  already had a position and a value-free packet ticked it).  Digest
  stream: empty in this mode, trivially identical.
- ``"alerting"`` (no tracker, ``k_sigma > 0``): the k·σ judgement reads
  the live moments *at each packet*, so alert decisions replay per packet
  on the main thread — against a local dict of wrapped cell counts (one
  register read per unique value, one write at the end) and the live
  ``ScaledStats``, calling the library's own ``_maybe_alert`` so gate
  order, cooldown stamping, and digest fields are byte-for-byte the
  scalar path's.  The worker tallies are not wasted: a whole chunk is
  **folded without per-packet replay when no packet in it can possibly
  alert**, which is provable from the sub-tally alone in two cases:

  * ``stats.count + occurrences < spec.min_samples`` — every
    ``observe_frequency`` grows N by at most 1, so N stays below the
    ``min_samples`` gate for every packet of the chunk;
  * the cooldown window covers the chunk — ``last_alert`` is set,
    ``cooldown > 0``, and ``chunk_max_ts − last_alert < cooldown``:
    every packet's ``now ≤ chunk_max_ts``, and since no alert fires in a
    folded chunk, ``last_alert`` cannot move mid-chunk.

  Folded chunks cost O(distinct values); un-foldable chunks replay per
  packet but still skip the per-packet register reads/writes and
  ``_sync_stats`` of the scalar loop.  Alert counts and digest order are
  bit-identical by construction: every ``_maybe_alert`` call sees exactly
  the scalar path's ``(stats, sample, now)`` triple, and digests are
  tagged with their ``(packet, stage)`` and re-sorted by the shared sink.

Combined tracked+alerting runs and any run with a ``percentile_alert``
stay serial: ``_sync_percentile`` reads ``reg_pos`` per packet and
interleaves percentile-move digests with k·σ digests order-dependently,
so no per-chunk summary can reconstruct the stream.

Since the concurrency analyzer landed, this argument is *checked*, not
just written down: :data:`DECLARED_ELIGIBILITY` below is the table the
argument claims, but :meth:`ParallelBatchEngine._fan_out_mode` consumes
the table :func:`repro.analysis.concurrency.derive_eligibility_table`
derives from the kernel ASTs.  The first fan-out decision cross-checks
the two and refuses to run on drift (the ST500 rule; ``repro lint
--concurrency`` reports the disagreement in full).

``tests/stat4/test_parallel_differential.py`` proves scalar vs threads vs
shared-memory processes bit-identical — registers, digest order, alert
counts — for every ``DistributionKind`` on both backends.
"""

from __future__ import annotations

import atexit
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.stat4.batch import (
    BatchEngine,
    BatchResult,
    Column,
    PacketBatch,
    _DigestSink,
    _Event,
)
from repro.stat4.distributions import TrackSpec
from repro.stat4.library import Stat4
from repro.traffic.columns import (
    ColumnDescriptor,
    SharedColumnSegment,
    attach_column,
    encode_column,
    release_all_segments,
    slice_backing,
)

try:  # pragma: no cover - exercised via both-backend CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "DECLARED_ELIGIBILITY",
    "ParallelBatchEngine",
    "split_batch",
    "shutdown_pools",
]

_EXECUTOR_KINDS = ("auto", "thread", "process", "serial")

#: The fan-out table the exactness argument above claims, keyed by kernel
#: shape (:func:`repro.analysis.concurrency.shape_key_of_spec`); values
#: are the fan-out mode or ``None`` for serial.  The engine does NOT
#: consume this table directly — ``_fan_out_mode`` consumes the table the
#: concurrency analyzer derives from the kernel ASTs, and the first
#: fan-out decision raises if the two disagree (rule ST500).  This
#: declaration exists so a kernel change that silently shifts a verdict
#: is an ERROR, not a silent behavior change.
DECLARED_ELIGIBILITY: Dict[str, Optional[str]] = {
    "frequency": "tally",
    "frequency+alerting": "alerting",
    "frequency+tracked": "tracked",
    "frequency+tracked+alerting": None,
    "frequency+tracked+percentile_alert": None,
    "frequency+tracked+alerting+percentile_alert": None,
    "time_series": None,
    "time_series+alerting": None,
    "sparse_frequency": None,
    "sparse_frequency+alerting": None,
}

#: Lazily resolved ``(derived_table, shape_key_of_spec)`` pair; populated
#: (and cross-checked against the declaration) on the first fan-out
#: decision so importing this module never pulls in the analyzer.
_ELIGIBILITY: Optional[Tuple[Dict[str, Optional[str]], Any]] = None


def _eligibility() -> Tuple[Dict[str, Optional[str]], Any]:
    global _ELIGIBILITY
    if _ELIGIBILITY is None:
        from repro.analysis.concurrency import (
            derive_eligibility_table,
            shape_key_of_spec,
        )

        derived = derive_eligibility_table()
        if derived != DECLARED_ELIGIBILITY:
            drift = sorted(
                key
                for key in set(derived) | set(DECLARED_ELIGIBILITY)
                if derived.get(key) != DECLARED_ELIGIBILITY.get(key)
            )
            raise RuntimeError(
                "parallel fan-out eligibility drift: the dataflow-derived "
                f"table disagrees with DECLARED_ELIGIBILITY on {drift}; "
                "run `repro lint --concurrency` for the ST500 report"
            )
        _ELIGIBILITY = (derived, shape_key_of_spec)
    return _ELIGIBILITY

#: Live executors, keyed by (kind, workers).  Worker pools are expensive to
#: start (especially process pools); one bench run reuses them across
#: batches and repeats.
_EXECUTORS: Dict[Tuple[str, int], Executor] = {}


def _pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    pool = _EXECUTORS.get(key)
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-ingest"
            )
        _EXECUTORS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool and sweep leaked shared segments.

    Runs at interpreter exit.  The shared-memory sweep
    (:func:`repro.traffic.columns.release_all_segments`) unlinks any
    segment a dying batch left registered, so repeated bench runs cannot
    exhaust ``/dev/shm``; the columns module additionally chains the same
    sweep onto ``SIGTERM`` for kills that bypass atexit.
    """
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=True)
    _EXECUTORS.clear()
    release_all_segments()


atexit.register(shutdown_pools)


def split_batch(batch: PacketBatch, chunk_size: int) -> List[PacketBatch]:
    """Split a batch into time-ordered contiguous chunks.

    Processing the chunks in order through any engine leaves the same
    state as processing the whole batch at once (and as the scalar loop):
    every kernel finishes its chunk before the next starts, and
    :meth:`PacketBatch.slice_view` carries every backing column over as a
    view — C-level list slices for the Python fields, zero-copy windows
    for the encoded :class:`~repro.traffic.columns.ColumnStore` columns.
    An empty batch splits into no chunks at all (``[]``), not one empty
    chunk.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n = len(batch)
    if n == 0:
        return []
    return [
        batch.slice_view(start, min(start + chunk_size, n))
        for start in range(0, n, chunk_size)
    ]


def _tally_chunk(
    values: Sequence[Optional[int]], size: int
) -> Tuple[Dict[int, int], int]:
    """Worker task core: count one chunk of a run's values.

    Returns ``(tally, dropped)`` — in-domain occurrence counts per value
    and the number of out-of-domain values (the scalar path's
    ``values_dropped``).  Value-free packets are skipped, exactly as the
    serial counting kernel skips them: ``None`` in plain list chunks, the
    columns sentinel ``-1`` in encoded array/memoryview chunks.  On an
    int64 ndarray chunk the count runs through ``numpy.bincount`` (which
    releases the GIL, so thread workers genuinely run concurrently).
    """
    if _np is not None and isinstance(values, _np.ndarray):
        present = values[values >= 0]
        dropped = int((present >= size).sum())
        in_domain = present[present < size]
        if not len(in_domain):
            return {}, dropped
        counts = _np.bincount(in_domain)
        nonzero = _np.nonzero(counts)[0]
        return {int(v): int(counts[v]) for v in nonzero}, dropped
    tally: Dict[int, int] = {}
    dropped = 0
    for value in values:
        if value is None or value < 0:
            continue
        if value >= size:
            dropped += 1
        else:
            tally[value] = tally.get(value, 0) + 1
    return tally, dropped


def _chunk_max(timestamps: Optional[Sequence[float]]) -> Optional[float]:
    """Max timestamp of a chunk (None when absent/empty) — cooldown bound."""
    if timestamps is None or len(timestamps) == 0:
        return None
    if _np is not None and isinstance(timestamps, _np.ndarray):
        return float(timestamps.max())
    return max(timestamps)


def _tally_task(
    values: Sequence[Optional[int]],
    size: int,
    timestamps: Optional[Sequence[float]] = None,
) -> Tuple[Dict[int, int], int, Optional[float]]:
    """Worker task over in-memory chunks (thread views or pickled lists)."""
    tally, dropped = _tally_chunk(values, size)
    return tally, dropped, _chunk_max(timestamps)


def _tally_task_shm(
    values_desc: ColumnDescriptor,
    start: int,
    stop: int,
    size: int,
    ts_desc: Optional[ColumnDescriptor] = None,
) -> Tuple[Dict[int, int], int, Optional[float]]:
    """Worker task over a shared-memory column: attach, read in place.

    The pickled inputs are descriptors plus chunk bounds (~100 bytes);
    the chunk's rows never cross the process boundary.  Views are dropped
    before the segment handle closes so the parent's unlink can reclaim
    the memory promptly.
    """
    with attach_column(values_desc) as column:
        window = column.values[start:stop]
        tally, dropped = _tally_chunk(window, size)
        del window
    max_ts: Optional[float] = None
    if ts_desc is not None:
        with attach_column(ts_desc) as column:
            window = column.values[start:stop]
            max_ts = _chunk_max(window)
            del window
    return tally, dropped, max_ts


def _merge_tallies(
    parts: Iterable[Tuple[Dict[int, int], int]]
) -> Tuple[List[Tuple[int, int]], int]:
    """Sum per-chunk tallies into one ascending ``(value, count)`` list.

    Frequency-cell addition is the exact-merge rule: occurrence counts per
    value add across any partition of the run, and ascending order matches
    the serial ``_tally`` output, so the downstream ``_apply_counts`` call
    sees byte-for-byte the same input as the single-worker path.
    """
    total: Dict[int, int] = {}
    dropped = 0
    for tally, chunk_dropped in parts:
        dropped += chunk_dropped
        for value, count in tally.items():
            total[value] = total.get(value, 0) + count
    return sorted(total.items()), dropped


class ParallelBatchEngine(BatchEngine):
    """A :class:`BatchEngine` that fans independent tally work onto a pool.

    Args:
        stat4: the library instance to drive.
        backend: kernel backend, as for :class:`BatchEngine`.
        workers: worker count; ``1`` (the default) delegates every batch
            to the serial engine, so ``workers=1`` and ``workers=N`` are
            interchangeable bit for bit.
        executor: ``"auto"``/``"thread"`` (thread pool over zero-copy
            column views), ``"process"`` (process pool; chunks travel as
            shared-memory descriptors, or picklable lists when
            ``share_columns=False``), or ``"serial"`` (never fan out —
            debugging aid).
        min_chunk: smallest per-worker chunk worth dispatching; batches or
            runs below ``2 * min_chunk`` stay serial (pool overhead would
            dominate).
        share_columns: back process-pool chunks with
            ``multiprocessing.shared_memory`` segments (the zero-copy
            path).  ``False`` re-ships plain value lists per task — the
            pre-zero-copy behaviour, kept as an A/B knob and fallback.
        measure_shipping: account the pickled bytes of every process-pool
            task payload in ``shipped_bytes`` / ``shipped_tasks`` /
            ``last_batch_shipped_bytes`` (bench instrumentation; adds a
            ``pickle.dumps`` per task, so off by default).
    """

    def __init__(
        self,
        stat4: Stat4,
        backend: str = "auto",
        workers: int = 1,
        executor: str = "auto",
        min_chunk: int = 512,
        share_columns: bool = True,
        measure_shipping: bool = False,
    ):
        super().__init__(stat4, backend=backend)
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; pick one of {_EXECUTOR_KINDS}"
            )
        self.workers = workers
        self.executor = executor
        self.min_chunk = min_chunk
        self.share_columns = share_columns
        self.measure_shipping = measure_shipping
        self.shipped_bytes = 0
        self.shipped_tasks = 0
        self.last_batch_shipped_bytes = 0

    # -- fan-out policy -------------------------------------------------------

    @staticmethod
    def _fan_out_mode(spec: TrackSpec) -> Optional[str]:
        """Classify how a run's work distributes (see the module docstring).

        Consumes the analyzer-derived eligibility table: the spec is
        projected onto its kernel shape (every shape field read
        symmetrically — ``kind``, tracker presence, ``k_sigma``,
        ``percentile_alert``) and looked up in the table the dataflow
        pass derived from the kernel ASTs, cross-checked once against
        :data:`DECLARED_ELIGIBILITY`.

        Spec-only on purpose: deciding from the spec (a tracker exists iff
        ``spec.percent`` is set) means no ``_state_for`` call during the
        submit phase, so slot repurposing still happens in apply order.

        Returns:
            ``"tally"`` — merge-exact: merge-only.
            ``"tracked"`` — replay-exact via the tracker stream: merge
            plus a serial tracker replay.
            ``"alerting"`` — replay-exact via the alert stream: merge
            plus a serial alert replay with per-chunk gate folding.
            ``None`` — order-dependent: run the serial kernels.
        """
        table, shape_key_of_spec = _eligibility()
        return table.get(shape_key_of_spec(spec))

    @staticmethod
    def _fan_out_eligible(spec: TrackSpec) -> bool:
        """Whether any fan-out mode applies (back-compat predicate)."""
        return ParallelBatchEngine._fan_out_mode(spec) is not None

    # -- chunk preparation ----------------------------------------------------

    def _run_full_coverage(
        self, batch: PacketBatch, spec: TrackSpec, segment: List[_Event]
    ) -> bool:
        """Single-stage run covering every packet in order — the common
        every-packet-matches case, where the batch columns ARE the run's
        event streams and can be shipped without gathering."""
        m = len(segment)
        return (
            m == len(batch)
            and len(self.stat4.binding_tables) == 1
            and segment[0][0] == 0
            and segment[-1][0] == m - 1
        )

    def _run_columns(
        self,
        batch: PacketBatch,
        spec: TrackSpec,
        segment: List[_Event],
        need_ts: bool,
        as_arrays: bool,
    ) -> Tuple[Any, Optional[Any]]:
        """The run's event-ordered value (and timestamp) streams.

        ``as_arrays=True`` returns contiguous encoded columns (``None``
        → ``-1``) ready for zero-copy slicing or shared-memory packing;
        ``False`` returns plain lists (the picklable legacy shape).
        """
        if self._run_full_coverage(batch, spec, segment):
            if as_arrays:
                return (
                    batch.values_array_for(spec),
                    batch.timestamps_array() if need_ts else None,
                )
            return batch.values_for(spec), batch.timestamps if need_ts else None
        values = batch.values_for(spec)
        timestamps = batch.timestamps
        column = [values[pkt] for pkt, _stage, _spec in segment]
        ts = (
            [timestamps[pkt] for pkt, _stage, _spec in segment]
            if need_ts
            else None
        )
        if as_arrays:
            encoded = encode_column(column)
            if ts is not None:
                if _np is not None:
                    ts = _np.asarray(ts, dtype=_np.float64)
                else:
                    import array as _array

                    ts = _array.array("d", ts)
            return encoded, ts
        return column, ts

    def _chunk_bounds(self, m: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` windows, at most one per worker."""
        chunk = -(-m // self.workers)  # ceil
        return [(i, min(i + chunk, m)) for i in range(0, m, chunk)]

    def _account_shipping(self, payload: Any) -> None:
        if not self.measure_shipping:
            return
        nbytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self.shipped_bytes += nbytes
        self.last_batch_shipped_bytes += nbytes
        self.shipped_tasks += 1

    def _submit_run(
        self,
        pool: Executor,
        pool_kind: str,
        batch: PacketBatch,
        spec: TrackSpec,
        segment: List[_Event],
        size: int,
        need_ts: bool,
    ) -> Tuple[List[Tuple[int, int]], List[Any], Optional[SharedColumnSegment]]:
        """Dispatch one run's chunk tallies; returns (bounds, futures, shm).

        Thread pools get zero-copy views of the encoded columns.  Process
        pools get shared-memory descriptors (``share_columns=True``) or
        pickled list chunks (the legacy fallback, also taken when segment
        creation fails — e.g. no ``/dev/shm``).
        """
        bounds = self._chunk_bounds(len(segment))
        futures: List[Any] = []
        if pool_kind != "process":
            column, ts = self._run_columns(
                batch, spec, segment, need_ts, as_arrays=True
            )
            for start, stop in bounds:
                futures.append(
                    pool.submit(
                        _tally_task,
                        slice_backing(column, start, stop),
                        size,
                        slice_backing(ts, start, stop) if ts is not None else None,
                    )
                )
            return bounds, futures, None
        segment_shm: Optional[SharedColumnSegment] = None
        if self.share_columns:
            try:
                column, ts = self._run_columns(
                    batch, spec, segment, need_ts, as_arrays=True
                )
                packed = [("values", "q", column)]
                if ts is not None:
                    packed.append(("timestamps", "d", ts))
                segment_shm = SharedColumnSegment.pack(packed)
            except Exception:
                segment_shm = None  # no usable /dev/shm: ship lists below
        if segment_shm is not None:
            values_desc = segment_shm.descriptors["values"]
            ts_desc = segment_shm.descriptors.get("timestamps")
            for start, stop in bounds:
                payload = (values_desc, start, stop, size, ts_desc)
                self._account_shipping(payload)
                futures.append(pool.submit(_tally_task_shm, *payload))
            return bounds, futures, segment_shm
        column, ts = self._run_columns(
            batch, spec, segment, need_ts, as_arrays=False
        )
        for start, stop in bounds:
            payload = (
                column[start:stop],
                size,
                ts[start:stop] if ts is not None else None,
            )
            self._account_shipping(payload)
            futures.append(pool.submit(_tally_task, *payload))
        return bounds, futures, None

    # -- entry point ----------------------------------------------------------

    def process(self, batch: PacketBatch) -> BatchResult:
        """Ingest one batch, fanning eligible tally work onto the pool.

        Two phases: *submit* walks the per-distribution runs in scalar
        order and enqueues chunk tallies for every eligible run (touching
        no engine state); *apply* then replays the same run order on the
        main thread, merging worker tallies where they exist, replaying
        tracker walks and alert decisions serially for the widened modes,
        and running the serial kernels everywhere else.  All state
        mutation happens in the apply phase, in scalar order, on one
        thread.  Shared-memory segments created for this batch are
        released before returning (crash sweeps are handled by
        :func:`shutdown_pools` and the columns module's signal hook).
        """
        if (
            self.workers <= 1
            or self.executor == "serial"
            or len(batch) < 2 * self.min_chunk
        ):
            return super().process(batch)
        stat4 = self.stat4
        n = len(batch)
        result = BatchResult(packets=n, backend=self.backend)
        stat4.packets_seen += n
        events = self._match(batch)
        sink = _DigestSink()
        pool_kind = "process" if self.executor == "process" else "thread"
        pool = _pool(pool_kind, self.workers)
        size = stat4.config.counter_size
        self.last_batch_shipped_bytes = 0
        segments: List[SharedColumnSegment] = []
        plan = []
        try:
            for dist in sorted(events):
                for spec, segment in self._split_runs(events[dist]):
                    mode = self._fan_out_mode(spec)
                    if mode is None or len(segment) < 2 * self.min_chunk:
                        plan.append((spec, segment, None, None, None))
                        continue
                    bounds, futures, shm = self._submit_run(
                        pool,
                        pool_kind,
                        batch,
                        spec,
                        segment,
                        size,
                        need_ts=(mode == "alerting"),
                    )
                    if shm is not None:
                        segments.append(shm)
                    plan.append((spec, segment, mode, bounds, futures))
            for spec, segment, mode, bounds, futures in plan:
                if mode is None:
                    self._process_run(spec, segment, batch, sink, result)
                elif mode == "tally":
                    self._apply_tally(spec, segment, futures, result)
                elif mode == "tracked":
                    self._apply_tracked(spec, segment, batch, futures, result)
                else:
                    self._apply_alerting(
                        spec, segment, batch, bounds, futures, sink, result
                    )
            result.digests.extend(sink.in_scalar_order())
        finally:
            for shm in segments:
                shm.release()
        return result

    # -- apply phase ----------------------------------------------------------

    def _apply_tally(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        futures: List[Any],
        result: BatchResult,
    ) -> None:
        """Merge-only mode: fold the summed tallies into cells and moments."""
        state = self.stat4._state_for(spec)
        counts, dropped = _merge_tallies(
            (tally, chunk_dropped)
            for tally, chunk_dropped, _max_ts in (f.result() for f in futures)
        )
        state.values_dropped += dropped
        result.kernels["frequency_parallel"] = (
            result.kernels.get("frequency_parallel", 0) + len(segment)
        )
        if counts:
            self._apply_counts(state, counts)

    def _apply_tracked(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        futures: List[Any],
        result: BatchResult,
    ) -> None:
        """Tracked mode: merged fold plus a serial tracker replay.

        Exactness: the tracker's state never feeds the cells or moments,
        so folding the merged tallies first cannot perturb it; the replay
        then walks the run's exact observe/tick sequence (dropped values
        excluded entirely, value-free packets ticking only once the
        tracker has a position — precisely the scalar ``_update_frequency``
        flow), and the position registers are synced once under the serial
        ``_percentile_kernel``'s write gate.  No digests exist in this
        mode (no k·σ, no percentile alert), so the digest stream is
        trivially identical.
        """
        stat4 = self.stat4
        state = stat4._state_for(spec)
        size = stat4.config.counter_size
        counts, dropped = _merge_tallies(
            (tally, chunk_dropped)
            for tally, chunk_dropped, _max_ts in (f.result() for f in futures)
        )
        state.values_dropped += dropped
        result.kernels["percentile_parallel"] = (
            result.kernels.get("percentile_parallel", 0) + len(segment)
        )
        tracker = state.tracker
        values = batch.values_for(spec)
        events: List[int] = []
        observed = 0
        for pkt, _stage, _spec in segment:
            value = values[pkt]
            if value is None:
                events.append(-1)  # value-free packet: a tracker tick
            elif value < size:
                events.append(value)
                observed += 1
            # else: dropped — the scalar path returns before the tracker.
        had_value = tracker.has_value
        if counts:
            self._apply_counts(state, counts)
        if events:
            if self._np is not None and tracker.steps_per_update == 1:
                self._tracker_walk(
                    tracker, self._np.asarray(events, dtype=self._np.int64)
                )
            else:
                for value in events:
                    if value < 0:
                        if tracker.has_value:
                            tracker.tick()
                    else:
                        tracker.observe(value)
        if observed or (had_value and len(events) > observed):
            dist = state.spec.dist
            stat4.reg_pos.write(dist, tracker.value)
            stat4.reg_low.write(dist, tracker.low)
            stat4.reg_high.write(dist, tracker.high)

    def _apply_alerting(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        bounds: List[Tuple[int, int]],
        futures: List[Any],
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Alerting mode: per-chunk gate folding plus a serial alert replay.

        Exactness: alerts are judged by the library's own ``_maybe_alert``
        against the live ``ScaledStats`` — exactly the scalar call, with
        the same ``(sample, index, now)`` — while cell counts run through
        a local dict seeded from one register read per unique value
        (wrapped with the register width mask on every increment, so
        ``old``/``sample`` match the scalar read-modify-write sequence
        bit for bit).  A chunk folds to the telescoped bulk update only
        when its sub-tally proves no packet in it can alert (``min_samples``
        headroom or a covering cooldown window — see the module
        docstring); inside a folded chunk no alert fires, so ``last_alert``
        is constant and the cooldown bound stays valid for every packet.
        Cells are written once per unique value at the end and the derived
        measures synced once — the same coalescing as ``_apply_counts``,
        which never changes final register contents.
        """
        stat4 = self.stat4
        state = stat4._state_for(spec)
        stats = state.stats
        counters = stat4.counters
        width_mask = (1 << counters.width) - 1
        base = stat4.config.cell_index(spec.dist, 0)
        size = stat4.config.counter_size
        values = batch.values_for(spec)
        timestamps = batch.timestamps
        cooldown = max(stat4.config.alert_cooldown, spec.cooldown)
        result.kernels["alert_parallel"] = (
            result.kernels.get("alert_parallel", 0) + len(segment)
        )
        local: Dict[int, int] = {}
        touched = False
        for (start, stop), future in zip(bounds, futures):
            tally, dropped, max_ts = future.result()
            if not tally:
                # Only value-free and out-of-domain packets: the scalar
                # path returns before its alert check on every one.
                state.values_dropped += dropped
                continue
            occurrences = sum(tally.values())
            gated = stats.count + occurrences < spec.min_samples
            if (
                not gated
                and state.last_alert is not None
                and cooldown > 0
                and max_ts is not None
            ):
                gated = (max_ts - state.last_alert) < cooldown
            if gated:
                state.values_dropped += dropped
                for value, repeat in sorted(tally.items()):
                    old = local.get(value)
                    if old is None:
                        old = counters.read(base + value)
                    if old + repeat > width_mask:
                        # Near-wrap cell: replay per occurrence so the
                        # wrapped counts feed the moments exactly.
                        current = old
                        for _ in range(repeat):
                            stats.observe_frequency(current)
                            current = (current + 1) & width_mask
                        local[value] = current
                    else:
                        stats.observe_frequencies(old, repeat)
                        local[value] = old + repeat
                touched = True
                continue
            for pkt, stage, _spec in segment[start:stop]:
                value = values[pkt]
                if value is None:
                    continue
                if value >= size:
                    state.values_dropped += 1
                    continue
                old = local.get(value)
                if old is None:
                    old = counters.read(base + value)
                sample = stats.observe_frequency(old)
                local[value] = sample & width_mask
                touched = True
                now = timestamps[pkt]
                sink.set(pkt, stage, now)
                stat4._maybe_alert(
                    state, sink, sample=sample, index=value, now=now
                )
        for value, count in local.items():
            counters.write(base + value, count)
        if touched:
            stat4._sync_stats(state)
