# p4-ok-file — host-side parallel execution layer; the per-packet P4
# semantics it reproduces live (and are linted) in repro.stat4.library.
"""Multi-worker Stat4 ingest: chunked kernel dispatch with exact merging.

:class:`~repro.stat4.batch.BatchEngine` already turns per-packet updates
into per-batch kernels; this module adds the last level of the hierarchy —
a worker pool that runs independent pieces of that kernel work
concurrently, **without giving up bit-identity** with the scalar loop:

- a trace is split into time-ordered chunks (:func:`split_batch`) that are
  processed strictly in order, so all cross-batch state (interval cursors,
  percentile walks, eviction order) evolves exactly as in serial replay;
- *within* one batch, the only work that is fanned out to workers is work
  whose merge is provably exact: tallying occurrences for dense frequency
  slots with no tracker and no k·σ check.  Each worker counts one
  contiguous chunk of a run's values; the per-chunk tallies are summed per
  value and folded into cells and moments through the engine's own
  :meth:`~repro.stat4.batch.BatchEngine._apply_counts` — the telescoped
  ``observe_frequencies`` identity makes the result independent of how the
  occurrences were grouped, and per-chunk drop counters add up exactly;
- everything order-dependent (percentile stepping, alerts, time series,
  sparse evictions) runs on the main thread through the serial engine's
  kernels, sharing the batch's single digest sink — so digests keep scalar
  order and alert counts are race-free by construction.

The pool is a ``concurrent.futures`` executor: threads by default (the
tally loop is allocation-light and the numpy backend releases the GIL in
``bincount``), or a process pool (``executor="process"``) whose task
inputs are plain picklable lists.  Executors are cached per
``(kind, workers)`` and shut down at interpreter exit
(:func:`shutdown_pools`).

`tests/stat4/test_parallel_differential.py` proves ``workers=4`` ingest
bit-identical to ``workers=1`` and to the scalar oracle — registers,
digest order, alert counts — for every ``DistributionKind`` on both
backends.
"""

from __future__ import annotations

import atexit
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.stat4.batch import (
    BatchEngine,
    BatchResult,
    Column,
    PacketBatch,
    _DigestSink,
    _Event,
)
from repro.stat4.distributions import DistributionKind, TrackSpec
from repro.stat4.library import Stat4

__all__ = [
    "ParallelBatchEngine",
    "split_batch",
    "shutdown_pools",
]

_EXECUTOR_KINDS = ("auto", "thread", "process", "serial")

#: Live executors, keyed by (kind, workers).  Worker pools are expensive to
#: start (especially process pools); one bench run reuses them across
#: batches and repeats.
_EXECUTORS: Dict[Tuple[str, int], Executor] = {}


def _pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    pool = _EXECUTORS.get(key)
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-ingest"
            )
        _EXECUTORS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (also runs at interpreter exit)."""
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=True)
    _EXECUTORS.clear()


atexit.register(shutdown_pools)


def split_batch(batch: PacketBatch, chunk_size: int) -> List[PacketBatch]:
    """Split a batch into time-ordered contiguous chunks.

    Processing the chunks in order through any engine leaves the same
    state as processing the whole batch at once (and as the scalar loop):
    every kernel finishes its chunk before the next starts, and
    :meth:`PacketBatch.select` carries every backing column over.  This is
    the trace-level chunking unit of the parallel ingest layer.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    n = len(batch)
    return [
        batch.select(range(start, min(start + chunk_size, n)))
        for start in range(0, n, chunk_size)
    ]


def _tally_chunk(
    values: Sequence[Optional[int]], size: int
) -> Tuple[Dict[int, int], int]:
    """Worker task: count one chunk of a run's values.

    Returns ``(tally, dropped)`` — in-domain occurrence counts per value
    and the number of out-of-domain values (the scalar path's
    ``values_dropped``).  ``None`` entries (matched but value-free
    packets) are skipped, exactly as the serial counting kernel skips
    them.  Module-level and built from plain lists/ints so a process pool
    can pickle it.
    """
    tally: Dict[int, int] = {}
    dropped = 0
    for value in values:
        if value is None:
            continue
        if value >= size:
            dropped += 1
        else:
            tally[value] = tally.get(value, 0) + 1
    return tally, dropped


def _merge_tallies(
    parts: Iterable[Tuple[Dict[int, int], int]]
) -> Tuple[List[Tuple[int, int]], int]:
    """Sum per-chunk tallies into one ascending ``(value, count)`` list.

    Frequency-cell addition is the exact-merge rule: occurrence counts per
    value add across any partition of the run, and ascending order matches
    the serial ``_tally`` output, so the downstream ``_apply_counts`` call
    sees byte-for-byte the same input as the single-worker path.
    """
    total: Dict[int, int] = {}
    dropped = 0
    for tally, chunk_dropped in parts:
        dropped += chunk_dropped
        for value, count in tally.items():
            total[value] = total.get(value, 0) + count
    return sorted(total.items()), dropped


class ParallelBatchEngine(BatchEngine):
    """A :class:`BatchEngine` that fans independent tally work onto a pool.

    Args:
        stat4: the library instance to drive.
        backend: kernel backend, as for :class:`BatchEngine`.
        workers: worker count; ``1`` (the default) delegates every batch
            to the serial engine, so ``workers=1`` and ``workers=N`` are
            interchangeable bit for bit.
        executor: ``"auto"``/``"thread"`` (thread pool), ``"process"``
            (process pool over picklable chunk lists), or ``"serial"``
            (never fan out — debugging aid).
        min_chunk: smallest per-worker chunk worth dispatching; batches or
            runs below ``2 * min_chunk`` stay serial (pool overhead would
            dominate).
    """

    def __init__(
        self,
        stat4: Stat4,
        backend: str = "auto",
        workers: int = 1,
        executor: str = "auto",
        min_chunk: int = 512,
    ):
        super().__init__(stat4, backend=backend)
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; pick one of {_EXECUTOR_KINDS}"
            )
        self.workers = workers
        self.executor = executor
        self.min_chunk = min_chunk

    # -- fan-out policy -------------------------------------------------------

    @staticmethod
    def _fan_out_eligible(spec: TrackSpec) -> bool:
        """Whether a run's kernel work merges exactly across chunks.

        Dense frequency, no percentile tracker, no k·σ check — the
        counting kernel whose merge is plain frequency-cell addition.
        Spec-only on purpose: deciding from the spec (a tracker exists iff
        ``spec.percent`` is set) means no ``_state_for`` call during the
        submit phase, so slot repurposing still happens in apply order.
        """
        return (
            spec.kind is DistributionKind.FREQUENCY
            and spec.percent is None
            and spec.k_sigma <= 0
        )

    def _chunk_values(
        self, batch: PacketBatch, spec: TrackSpec, segment: List[_Event]
    ) -> List[Column]:
        """The run's value stream, cut into one contiguous chunk per worker."""
        values = batch.values_for(spec)
        m = len(segment)
        if (
            m == len(values)
            and len(self.stat4.binding_tables) == 1
            and segment[0][0] == 0
            and segment[-1][0] == m - 1
        ):
            # Single-stage run covering every packet in order (the common
            # every-packet-matches case): the column IS the event stream.
            column = values
        else:
            column = [values[pkt] for pkt, _stage, _spec in segment]
        chunk = -(-m // self.workers)  # ceil: at most `workers` chunks
        return [column[i : i + chunk] for i in range(0, m, chunk)]

    # -- entry point ----------------------------------------------------------

    def process(self, batch: PacketBatch) -> BatchResult:
        """Ingest one batch, fanning eligible tally work onto the pool.

        Two phases: *submit* walks the per-distribution runs in scalar
        order and enqueues chunk tallies for every eligible run (touching
        no engine state); *apply* then replays the same run order on the
        main thread, merging worker tallies where they exist and running
        the serial kernels everywhere else.  All state mutation happens in
        the apply phase, in scalar order, on one thread.
        """
        if (
            self.workers <= 1
            or self.executor == "serial"
            or len(batch) < 2 * self.min_chunk
        ):
            return super().process(batch)
        stat4 = self.stat4
        n = len(batch)
        result = BatchResult(packets=n, backend=self.backend)
        stat4.packets_seen += n
        events = self._match(batch)
        sink = _DigestSink()
        pool = _pool(
            "process" if self.executor == "process" else "thread", self.workers
        )
        size = stat4.config.counter_size
        plan = []
        for dist in sorted(events):
            for spec, segment in self._split_runs(events[dist]):
                futures = None
                if (
                    self._fan_out_eligible(spec)
                    and len(segment) >= 2 * self.min_chunk
                ):
                    futures = [
                        pool.submit(_tally_chunk, chunk, size)
                        for chunk in self._chunk_values(batch, spec, segment)
                    ]
                plan.append((spec, segment, futures))
        for spec, segment, futures in plan:
            if futures is None:
                self._process_run(spec, segment, batch, sink, result)
                continue
            state = stat4._state_for(spec)
            counts, dropped = _merge_tallies(f.result() for f in futures)
            state.values_dropped += dropped
            result.kernels["frequency_parallel"] = (
                result.kernels.get("frequency_parallel", 0) + len(segment)
            )
            if counts:
                self._apply_counts(state, counts)
        result.digests.extend(sink.in_scalar_order())
        return result
