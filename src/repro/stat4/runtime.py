"""Runtime tuning of tracked distributions (the control-plane API).

"Controllers can adjust at runtime the tracked distributions without
recompiling the P4 application, by modifying the content of Stat4's binding
tables" (Sec. 3).  :class:`Stat4Runtime` is that API: it builds the
binding-table operations — either applying them directly to a local
:class:`~repro.stat4.library.Stat4` instance (tests, standalone use) or
producing :class:`~repro.netsim.messages.TableAdd` /
:class:`~repro.netsim.messages.TableModify` messages a controller sends
over the control channel.

Every rebind bumps the spec's ``generation`` so the data plane resets the
slot's registers — re-purposing a distribution must not inherit stale
state.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.netsim.messages import TableAdd, TableDelete, TableModify
from repro.p4.errors import TableError
from repro.stat4.binding import TRACK_ACTION, BindingMatch
from repro.stat4.distributions import DistributionKind, TrackSpec
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4

__all__ = ["Stat4Runtime", "BindingHandle"]


class BindingHandle:
    """A controller-side handle to one installed binding entry."""

    __slots__ = ("stage", "entry_id", "spec", "match")

    def __init__(self, stage: int, entry_id: int, spec: TrackSpec, match: BindingMatch):
        self.stage = stage
        self.entry_id = entry_id
        self.spec = spec
        self.match = match

    def __repr__(self) -> str:
        return (
            f"BindingHandle(stage={self.stage}, entry={self.entry_id}, "
            f"dist={self.spec.dist})"
        )


class Stat4Runtime:
    """Builds and (optionally) applies binding-table operations.

    Args:
        stat4: a local library instance to apply operations to directly;
            None for message-only mode (a remote controller that sends the
            returned messages itself).
    """

    def __init__(self, stat4: Optional[Stat4] = None):
        self.stat4 = stat4
        self._generations = itertools.count(1)

    # -- binding -----------------------------------------------------------

    def bind(
        self,
        stage: int,
        match: BindingMatch,
        spec: TrackSpec,
        priority: int = 0,
    ) -> Tuple[BindingHandle, TableAdd]:
        """Install a tracking rule into one binding stage.

        Returns the handle (for later rebinds) and the equivalent control
        message.  When constructed with a local library the entry is also
        applied immediately.
        """
        message = TableAdd(
            table=f"stat4_binding_{stage}",
            matches=match.to_matches(),
            action=TRACK_ACTION,
            params={"spec": spec},
            priority=priority,
        )
        entry_id = 0
        if self.stat4 is not None:
            entry_id = self._table(stage).add_entry(
                message.matches, message.action, message.params, priority=priority
            )
        return BindingHandle(stage, entry_id, spec, match), message

    def rebind(
        self,
        handle: BindingHandle,
        match: Optional[BindingMatch] = None,
        spec: Optional[TrackSpec] = None,
        priority: Optional[int] = None,
    ) -> Tuple[BindingHandle, TableModify]:
        """Rewrite an installed rule in place (the drill-down refinement).

        The new spec's generation is bumped automatically so the data plane
        resets the slot.
        """
        new_match = match if match is not None else handle.match
        base_spec = spec if spec is not None else handle.spec
        new_spec = replace(base_spec, generation=next(self._generations))
        message = TableModify(
            table=f"stat4_binding_{handle.stage}",
            entry_id=handle.entry_id,
            matches=new_match.to_matches(),
            action=TRACK_ACTION,
            params={"spec": new_spec},
        )
        if self.stat4 is not None:
            self._table(handle.stage).modify_entry(
                handle.entry_id,
                matches=message.matches,
                action=message.action,
                params=message.params,
            )
            if priority is not None:
                self._table(handle.stage).modify_entry(
                    handle.entry_id, priority=priority
                )
        return BindingHandle(handle.stage, handle.entry_id, new_spec, new_match), message

    def unbind(self, handle: BindingHandle) -> TableDelete:
        """Remove an installed rule (stop tracking; registers keep their
        last values until the slot is re-bound, exactly like a real switch).
        """
        message = TableDelete(
            table=f"stat4_binding_{handle.stage}", entry_id=handle.entry_id
        )
        if self.stat4 is not None:
            self._table(handle.stage).delete_entry(handle.entry_id)
        return message

    # -- spec builders (sugar for the Table-1 use cases) ---------------------

    def rate_over_time(
        self,
        dist: int,
        interval: float,
        k_sigma: int = 2,
        alert: str = "traffic_spike",
        min_samples: int = 4,
        per_byte: bool = False,
        unit_shift: int = 0,
        margin: int = 1,
        cooldown: float = 0.0,  # p4-ok: control-plane API default in seconds, not a register value
        window: int = 0,
    ) -> TrackSpec:
        """Packets (or bytes) per ``interval`` in a circular window.

        ``per_byte=True`` tracks traffic volume; ``unit_shift`` coarsens the
        unit (Sec. 2's order-of-magnitude trick).
        """
        extract = (
            ExtractSpec.frame_size(shift=unit_shift)
            if per_byte
            else ExtractSpec.constant(1)
        )
        return TrackSpec(
            dist=dist,
            kind=DistributionKind.TIME_SERIES,
            extract=extract,
            interval=interval,
            k_sigma=k_sigma,
            alert=alert,
            min_samples=min_samples,
            margin=margin,
            cooldown=cooldown,
            window=window,
        )

    def frequency_of(
        self,
        dist: int,
        extract: ExtractSpec,
        k_sigma: int = 0,
        alert: str = "imbalance",
        percent: Optional[int] = None,
        percentile_alert: str = "",
        min_samples: int = 2,
        margin: int = 1,
        cooldown: float = 0.0,  # p4-ok: control-plane API default in seconds, not a register value
    ) -> TrackSpec:
        """Frequencies of a header-derived index (types, subnets, ports…)."""
        return TrackSpec(
            dist=dist,
            kind=DistributionKind.FREQUENCY,
            extract=extract,
            k_sigma=k_sigma,
            alert=alert,
            percent=percent,
            percentile_alert=percentile_alert,
            min_samples=min_samples,
            margin=margin,
            cooldown=cooldown,
        )

    def sparse_frequency_of(
        self,
        dist: int,
        extract: ExtractSpec,
        k_sigma: int = 0,
        alert: str = "heavy_key",
        min_samples: int = 6,
        margin: int = 1,
        cooldown: float = 0.0,  # p4-ok: control-plane API default in seconds, not a register value
    ) -> TrackSpec:
        """Frequencies over a sparse domain in hashed slots (Sec. 5).

        The slot must be compiled with sparse storage
        (``Stat4Config.sparse_dists``).  Alert digests carry the full key
        (e.g. the whole /32 address), so a heavy hitter is identified
        without any drill-down round trip.
        """
        return TrackSpec(
            dist=dist,
            kind=DistributionKind.SPARSE_FREQUENCY,
            extract=extract,
            k_sigma=k_sigma,
            alert=alert,
            min_samples=min_samples,
            margin=margin,
            cooldown=cooldown,
        )

    # -- internals -----------------------------------------------------------

    def _table(self, stage: int):
        assert self.stat4 is not None
        try:
            return self.stat4.binding_tables[stage]
        except IndexError:
            raise TableError(
                f"binding stage {stage} does not exist "
                f"(binding_stages={len(self.stat4.binding_tables)})"
            ) from None
