"""Hash-indexed sparse distributions (the paper's Sec. 5 future work).

"Stat4 currently allocates switch resources for every possible value in the
tracked distributions, even if some values are never observed. We will
explore techniques to avoid reserving memory for non-observed values (e.g.,
using hash-tables similarly to [23]) which would be especially beneficial
for sparse distributions."

:class:`HashedCells` implements that technique in the style of the cited
HashPipe: a fixed number of *stages*, each a (key, count) slot array indexed
by an independent multiply-shift hash.  Per packet the key probes one slot
per stage — a bounded, loop-free sequence a P4 pipeline can express:

- an empty slot claims the key;
- a matching slot increments;
- on a full miss, the *smallest* count along the probe path is evicted and
  its mass is accounted to ``evicted_mass`` (the estimate's error budget),
  keeping heavy keys resident like HashPipe does.

This lets a distribution over a huge, sparse domain (full /32 addresses,
16-bit ports) be tracked in a few dozen slots instead of a cell per possible
value; the moments (N, Xsum, Xsumsq) update through the same
``observe_frequency`` identity as dense distributions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.p4.errors import ValueRangeError
from repro.p4.registers import RegisterArray, RegisterFile

try:  # pragma: no cover - absence exercised on the list backend
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["HashedCells"]

#: Unique-key count above which bulk probe hashing goes vectorized.
_VECTOR_THRESHOLD = 32

# Odd 64-bit multipliers for per-stage multiply-shift hashing.
_STAGE_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0xD6E8FEB86659FD93,
)

#: Sentinel meaning "slot is empty" (keys are stored +1 so key 0 is usable).
_EMPTY = 0


class HashedCells:
    """A HashPipe-style multi-stage hash table of (key, count) slots.

    Args:
        slots_per_stage: slot count per stage (power of two recommended).
        stages: probe depth (1–4); each stage is one pipeline stage on
            hardware.
        registers: register file to allocate in (None = private).
        name: register name prefix.
        key_width: bit width of stored keys.
        count_width: bit width of counts.
    """

    def __init__(
        self,
        slots_per_stage: int = 64,
        stages: int = 2,
        registers: Optional[RegisterFile] = None,
        name: str = "sparse",
        key_width: int = 32,
        count_width: int = 32,
    ):
        if slots_per_stage <= 0:
            raise ValueRangeError("slots_per_stage must be positive")
        if not 0 < stages <= len(_STAGE_SEEDS):
            raise ValueRangeError(f"stages must be in [1, {len(_STAGE_SEEDS)}]")
        self.slots_per_stage = slots_per_stage
        self.stages = stages
        owner = registers if registers is not None else RegisterFile()
        self.registers = owner
        # Keys are stored offset by one so that 0 can mean "empty".
        self.key_rows: List[RegisterArray] = [
            owner.declare(f"{name}_keys{s}", key_width + 1, slots_per_stage)
            for s in range(stages)
        ]
        self.count_rows: List[RegisterArray] = [
            owner.declare(f"{name}_counts{s}", count_width, slots_per_stage)
            for s in range(stages)
        ]
        self.evictions = 0
        self.evicted_mass = 0
        self.resident_keys = 0

    # -- hashing ------------------------------------------------------------

    def _slot(self, key: int, stage: int) -> int:
        hashed = (key * _STAGE_SEEDS[stage]) & 0xFFFFFFFFFFFFFFFF
        return (hashed * self.slots_per_stage) >> 64

    def probe_path(self, key: int) -> Tuple[Tuple[int, int], ...]:
        """The ``(stage, slot)`` probe sequence for ``key``.

        A pure function of the key and the table geometry — batch callers
        memoize it per unique key so the multiply-shift hashes run once
        per batch instead of once per packet
        (:meth:`~repro.stat4.batch.BatchEngine._sparse_kernel`).
        """
        if key < 0:
            raise ValueRangeError("keys are unsigned")
        return tuple(
            (stage, self._slot(key, stage)) for stage in range(self.stages)
        )

    def probe_paths(self, keys) -> dict:
        """Bulk :meth:`probe_path`: ``{key: path}`` for an iterable of keys.

        The batched sparse kernel hands the whole batch's unique values in
        at once, so the per-key hash pipeline runs exactly once per batch
        regardless of how many packets repeat a key.  High-cardinality
        batches hash stage-parallel over numpy lanes
        (:meth:`_probe_paths_vector`); the result is bit-identical to the
        scalar loop either way.
        """
        keys = list(keys)
        if (
            _np is not None
            and len(keys) >= _VECTOR_THRESHOLD
            and self.slots_per_stage < 1 << 31
            and keys
            and max(keys) <= 0xFFFFFFFFFFFFFFFF
        ):
            return self._probe_paths_vector(keys)
        return {key: self.probe_path(key) for key in keys}

    def _probe_paths_vector(self, keys: List[int]) -> dict:
        """Stage-parallel probe hashing for high-cardinality batches.

        One vector pass per stage computes every key's multiply-shift
        slot.  The scalar hash needs the high 64 bits of the 128-bit
        ``hashed * slots_per_stage`` product, which uint64 lanes cannot
        hold, so ``hashed`` is split into 32-bit halves: with
        ``hashed = hi·2³² + lo`` and ``S = slots_per_stage``,
        ``(hashed·S) >> 64 == (hi·S + ((lo·S) >> 32)) >> 32`` and every
        intermediate fits 64 bits while ``S < 2³¹`` (guarded by the
        caller).  Bit-identical to :meth:`_slot`.
        """
        if min(keys) < 0:
            raise ValueRangeError("keys are unsigned")
        arr = _np.asarray(keys, dtype=_np.uint64)  # p4-ok: host-side batch amortization of the per-packet hash
        spread = _np.uint64(self.slots_per_stage)  # p4-ok: host-side batch amortization
        half = _np.uint64(32)  # p4-ok: host-side batch amortization
        low_mask = _np.uint64(0xFFFFFFFF)  # p4-ok: host-side batch amortization
        slots = []
        for stage in range(self.stages):
            hashed = arr * _np.uint64(_STAGE_SEEDS[stage])  # wraps mod 2^64  # p4-ok: host-side batch amortization
            hi = hashed >> half
            lo = hashed & low_mask
            slots.append(((hi * spread + ((lo * spread) >> half)) >> half).tolist())
        stage_range = range(self.stages)
        return {
            key: tuple((stage, slots[stage][i]) for stage in stage_range)
            for i, key in enumerate(keys)
        }

    # -- updates -------------------------------------------------------------

    def increment(
        self,
        key: int,
        probes: Optional[Tuple[Tuple[int, int], ...]] = None,
    ) -> Tuple[int, int, int]:
        """Count one occurrence of ``key``.

        Args:
            key: the observed value.
            probes: a memoized :meth:`probe_path` for ``key`` (computed
                here when omitted — the results are identical, a caller
                supplying it only skips the re-hash).

        Returns:
            ``(old_count, new_count, evicted_count)`` — the first two feed
            the moments update (``observe_frequency``); ``evicted_count``
            is the count of a victim displaced by a full probe path (0 when
            nothing was evicted) so the moments can forget it
            (:meth:`repro.core.stats.ScaledStats.remove_value`).
        """
        if probes is None:
            probes = self.probe_path(key)
        elif key < 0:
            raise ValueRangeError("keys are unsigned")
        stored = key + 1
        # Pass 1 (bounded, unrolled): find the key or an empty slot.
        path: List[Tuple[int, int]] = []
        for stage, index in probes:
            slot_key = self.key_rows[stage].read(index)
            if slot_key == stored:
                old = self.count_rows[stage].read(index)
                self.count_rows[stage].write(index, old + 1)
                return old, old + 1, 0
            if slot_key == _EMPTY:
                self.key_rows[stage].write(index, stored)
                self.count_rows[stage].write(index, 1)
                self.resident_keys += 1
                return 0, 1, 0
            path.append((stage, index))
        # Full miss: evict the lightest occupant along the probe path.
        victim_stage, victim_index = min(
            path, key=lambda si: self.count_rows[si[0]].read(si[1])
        )
        victim_count = self.count_rows[victim_stage].read(victim_index)
        self.evictions += 1
        self.evicted_mass += victim_count
        self.key_rows[victim_stage].write(victim_index, stored)
        self.count_rows[victim_stage].write(victim_index, 1)
        return 0, 1, victim_count

    # -- reads ---------------------------------------------------------------

    def count_of(self, key: int) -> int:
        """Current count for ``key`` (0 if not resident)."""
        stored = key + 1
        for stage in range(self.stages):
            index = self._slot(key, stage)
            if self.key_rows[stage].read(index) == stored:
                return self.count_rows[stage].read(index)
        return 0

    def items(self) -> List[Tuple[int, int]]:
        """All resident ``(key, count)`` pairs (controller-side dump)."""
        found = []
        for stage in range(self.stages):
            keys = self.key_rows[stage].dump()
            counts = self.count_rows[stage].dump()
            for slot_key, count in zip(keys, counts):
                if slot_key != _EMPTY:
                    found.append((slot_key - 1, count))
        return found

    def clear(self) -> None:
        """Control-plane reset."""
        for row in self.key_rows:
            row.fill(_EMPTY)
        for row in self.count_rows:
            row.fill(0)
        self.evictions = 0
        self.evicted_mass = 0
        self.resident_keys = 0

    @property
    def capacity(self) -> int:
        """Total slots."""
        return self.stages * self.slots_per_stage

    @property
    def bytes_used(self) -> int:
        """Memory of all key and count rows."""
        return sum(r.bytes_used for r in self.key_rows) + sum(
            r.bytes_used for r in self.count_rows
        )
