"""Binding tables: which packets feed which distribution.

Figure 4's binding tables map packet predicates to register updates.  The
reproduction uses a fixed composite key that covers every use case in
Table 1 —

    (ether_type ternary, ipv4.dst LPM, ip.protocol ternary, tcp.flags ternary)

— so "SYN == 1" is a flags ternary, "dst 1.0/16" is an LPM, and the echo
application matches its EtherType exactly.  Each of the library's
``binding_stages`` tables yields at most one matching rule per packet;
running two stages lets the case study track the /8 rate *and* the per-/24
spread simultaneously while keeping "at most one dependency between
match-action rules" (Sec. 4).

:class:`BindingMatch` is the human-friendly way to write the composite
match; :func:`build_binding_table` constructs one stage's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.p4 import headers as hdr
from repro.p4.switch import PacketContext
from repro.p4.tables import ActionSpec, Table, lpm_key, ternary_key

__all__ = [
    "BindingMatch",
    "MATCH_ALL",
    "build_binding_table",
    "binding_key_of",
    "TRACK_ACTION",
]

#: The single action of a binding table: feed the packet to a distribution.
TRACK_ACTION = "track"


@dataclass(frozen=True)
class BindingMatch:
    """A composite binding-table match, with None meaning wildcard.

    Attributes:
        ether_type: exact EtherType (e.g. 0x0800), or None for any.
        dst_prefix: ``(address, prefix_len)`` LPM on the IPv4 destination,
            or None for any.
        protocol: exact IP protocol (6 = TCP), or None for any.
        tcp_flags: ``(value, mask)`` ternary on TCP flags (e.g.
            ``(SYN, SYN)`` for "SYN set"), or None for any.
    """

    ether_type: Optional[int] = None
    dst_prefix: Optional[Tuple[int, int]] = None
    protocol: Optional[int] = None
    tcp_flags: Optional[Tuple[int, int]] = None

    def to_matches(self) -> Tuple:
        """Lower to the table's raw match tuple."""
        ether = (self.ether_type, 0xFFFF) if self.ether_type is not None else (0, 0)
        prefix = self.dst_prefix if self.dst_prefix is not None else (0, 0)
        proto = (self.protocol, 0xFF) if self.protocol is not None else (0, 0)
        flags = self.tcp_flags if self.tcp_flags is not None else (0, 0)
        return (ether, prefix, proto, flags)

    @staticmethod
    def ipv4_prefix(address: str, prefix_len: int) -> "BindingMatch":
        """Match IPv4 traffic into ``address/prefix_len``."""
        return BindingMatch(
            ether_type=hdr.ETHERTYPE_IPV4,
            dst_prefix=(hdr.ip_to_int(address), prefix_len),
        )

    @staticmethod
    def syn_packets(address: str = "0.0.0.0", prefix_len: int = 0) -> "BindingMatch":
        """Match TCP SYNs (optionally within a destination prefix)."""
        return BindingMatch(
            ether_type=hdr.ETHERTYPE_IPV4,
            dst_prefix=(hdr.ip_to_int(address), prefix_len),
            protocol=hdr.PROTO_TCP,
            tcp_flags=(hdr.TCP_FLAG_SYN, hdr.TCP_FLAG_SYN),
        )

    @staticmethod
    def echo_packets() -> "BindingMatch":
        """Match the Stat4 validation echo header (Figure 5)."""
        return BindingMatch(ether_type=hdr.ETHERTYPE_STAT4_ECHO)


#: Wildcard match — every packet feeds the distribution.
MATCH_ALL = BindingMatch()


def build_binding_table(stage: int, max_size: int = 64) -> Table:
    """Construct one binding stage's match-action table."""
    return Table(
        name=f"stat4_binding_{stage}",
        keys=[
            ternary_key("ether_type", 16),
            lpm_key("ipv4_dst", 32),
            ternary_key("ip_protocol", 8),
            ternary_key("tcp_flags", 8),
        ],
        actions=[ActionSpec(TRACK_ACTION, params=("spec",))],
        max_size=max_size,
    )


def binding_key_of(ctx: PacketContext) -> Tuple[int, int, int, int]:
    """Assemble the composite lookup key from a parsed packet.

    Missing headers contribute zero fields, which wildcard entries (mask 0)
    still match — exactly how a P4 program keys on possibly-invalid headers
    by guarding with validity bits folded into the ternary mask.
    """
    parsed = ctx.parsed
    ether_type = parsed["ethernet"].get("ether_type") if parsed.has("ethernet") else 0
    dst = parsed["ipv4"].get("dst") if parsed.has("ipv4") else 0
    protocol = parsed["ipv4"].get("protocol") if parsed.has("ipv4") else 0
    flags = parsed["tcp"].get("flags") if parsed.has("tcp") else 0
    return (ether_type, dst, protocol, flags)
