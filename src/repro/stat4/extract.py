"""Value-of-interest extraction from packets.

A binding-table entry defines "(i) how to extract values of interest from
packets, and (ii) how to update which registers" (Sec. 3).  Part (i) is an
:class:`ExtractSpec`: a *source* (a header field, the frame size, or a
constant) refined by a shift and a mask — exactly the arithmetic a P4
action can apply to a header field before using it as a register index.

Examples from the paper's use cases (Table 1):

- traffic rate over time: ``ExtractSpec.constant(1)`` counted into a time
  window (every matching packet contributes 1);
- traffic volume over time: ``ExtractSpec.frame_size(shift=10)`` (KiB units
  — the "order of magnitude" memory trick of Sec. 2);
- load across /24 subnets of 10/8: ``ExtractSpec.field("ipv4.dst",
  shift=8, mask=0xFF)`` (the third octet indexes the subnet);
- SYN frequency per destination: match SYN in the binding table and extract
  ``ExtractSpec.field("ipv4.dst", mask=0xFF)``;
- packets by type: ``ExtractSpec.field("ipv4.protocol")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.p4.errors import ValueRangeError
from repro.p4.switch import PacketContext

__all__ = ["ExtractSpec"]

#: Pseudo-sources that do not name a header field.
_FRAME_SIZE = "frame.size"
_CONSTANT = "const"


@dataclass(frozen=True)
class ExtractSpec:
    """How a binding entry turns a packet into an integer value of interest.

    Attributes:
        source: ``"<header>.<field>"`` (e.g. ``"ipv4.dst"``),
            ``"meta.<key>"`` for user metadata an earlier pipeline stage
            computed (P4 programs pass derived values — retransmission
            flags, hash results — through metadata exactly like this),
            the pseudo-source ``"frame.size"``, or ``"const"``.
        shift: right shift applied to the raw value (unit coarsening or
            octet selection).
        mask: AND-mask applied after the shift (None = keep everything).
        constant_value: the value produced when ``source == "const"``
            (named to avoid colliding with the :meth:`constant` builder).
    """

    source: str
    shift: int = 0
    mask: Optional[int] = None
    constant_value: int = 1

    def __post_init__(self):
        if self.shift < 0:
            raise ValueRangeError("extract shift cannot be negative")
        if self.mask is not None and self.mask < 0:
            raise ValueRangeError("extract mask cannot be negative")
        if not isinstance(self.constant_value, int) or self.constant_value < 0:
            raise ValueRangeError("constant_value must be a non-negative int")
        if self.source != _CONSTANT and self.source != _FRAME_SIZE:
            if "." not in self.source:
                raise ValueRangeError(
                    f"extract source {self.source!r} must be "
                    "'<header>.<field>', 'frame.size' or 'const'"
                )

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def field(source: str, shift: int = 0, mask: Optional[int] = None) -> "ExtractSpec":
        """Extract (part of) a header field."""
        return ExtractSpec(source=source, shift=shift, mask=mask)

    @staticmethod
    def frame_size(shift: int = 0, mask: Optional[int] = None) -> "ExtractSpec":
        """Extract the frame length (optionally coarsened by ``shift``)."""
        return ExtractSpec(source=_FRAME_SIZE, shift=shift, mask=mask)

    @staticmethod
    def metadata(key: str, shift: int = 0, mask: Optional[int] = None) -> "ExtractSpec":
        """Extract a user-metadata value computed earlier in the pipeline."""
        return ExtractSpec(source=f"meta.{key}", shift=shift, mask=mask)

    @staticmethod
    def constant(value: int = 1) -> "ExtractSpec":
        """Produce a constant — every matching packet counts ``value``."""
        if value < 0:
            raise ValueRangeError("constant extraction must be non-negative")
        return ExtractSpec(source=_CONSTANT, constant_value=value)

    # -- evaluation --------------------------------------------------------------

    def extract(self, ctx: PacketContext, frame_bytes: int) -> Optional[int]:
        """Evaluate against one packet.

        Returns None when the named header is absent — the binding entry
        matched, but the packet carries no value of interest (such packets
        still tick percentile rebalancing).
        """
        if self.source == _CONSTANT:
            raw = self.constant_value
        elif self.source == _FRAME_SIZE:
            raw = frame_bytes
        elif self.source.startswith("meta."):
            raw = ctx.user.get(self.source[5:])
            if raw is None:
                return None
        else:
            header_name, _, field_name = self.source.partition(".")
            if not ctx.parsed.has(header_name):
                return None
            raw = ctx.parsed[header_name].get(field_name)
        value = raw >> self.shift
        if self.mask is not None:
            value = value & self.mask
        return value
