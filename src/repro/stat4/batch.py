# p4-ok-file — host-side batching fast path; the per-packet P4 semantics
# it replicates live (and are linted) in repro.stat4.library.
"""Batched Stat4 ingestion: the software fast path for heavy traffic.

The scalar :meth:`~repro.stat4.library.Stat4.process` walks one packet at a
time through binding lookup, value extraction, and the register updates of
Figure 4.  That is the right *specification* — it mirrors what the P4
pipeline does per packet — but as a software server it leaves throughput on
the table: every packet pays a full binding lookup, a value extraction, and
a lazy-σ recomputation even when ten thousand packets in a row hit the same
rule.

This module ingests packets in **array batches** while producing *register
and working state bit-identical to the scalar path* (the paper's
integer-only semantics are the spec; differential tests enforce equality):

- :class:`PacketBatch` — a structure-of-arrays view of many packets
  (timestamps, binding keys, per-source value columns), built from parsed
  contexts, raw packets, a recorded trace, or synthetic columns;
- :class:`BatchEngine` — applies a batch to a :class:`Stat4` instance.
  Binding lookups are memoized per unique key (entries are fixed for the
  duration of a batch, exactly like a pipeline between control-plane
  writes), matched packets are partitioned into per-distribution event
  streams in scalar order, and each stream runs the fastest *exact* kernel
  available:

  * dense frequency slots with no percentile tracker and no k·σ check use a
    counting kernel — occurrences are tallied per unique value
    (``numpy.bincount`` on the numpy backend), folded into the moments with
    the telescoped :meth:`~repro.core.stats.ScaledStats.observe_frequencies`
    identity, and the derived measures are synced once per batch (the
    final lazy-σ value is identical; only *how often* it was recomputed
    differs);
  * tracked frequency slots with no alerts use the same counting kernel for
    cells and moments plus a **vectorized percentile stepper** (numpy
    backend): the one-step-per-packet walk of Figure 3 is replayed exactly
    through a cumulative-count formulation — between position moves the
    low/high/at counters are affine in the running observation counts, so
    the next move point is one vectorized compare away (see
    ``_tracker_walk``);
  * sparse hashed slots run a specialized per-packet loop that memoizes
    the per-stage probe slots per unique key (the multiply-shift hashes
    are computed once per batch instead of once per packet) and syncs the
    derived-measure registers once per batch, like the counting kernel;
  * time-series slots scan for interval closes with the same
    ``now − start ≥ interval`` float comparison the scalar path evaluates
    (vectorized on the numpy backend) and sum the in-between values in one
    step, calling the library's own ``_close_interval`` at each close so
    window/alert/silent-gap semantics stay byte-for-byte the library's;
  * everything else that is order-dependent (percentile stepping with
    alerts attached, k·σ checks on dense slots) runs the library's own
    per-packet update methods in a tight loop — still faster than the
    scalar path because lookups, extraction, and context plumbing are
    amortized.

The numpy backend is optional: ``backend="auto"`` uses numpy when
importable and falls back to pure Python otherwise.  Both backends are
exact; numpy only accelerates counting, close-point scans, and the
percentile walk.  :mod:`repro.stat4.parallel` builds a worker-pool
execution layer on top of this engine (chunked tallies merged through the
same ``observe_frequencies`` telescoping).

What is *not* preserved: per-register read/write accounting and the
σ-recomputation counter (the batch path coalesces touches by design).
Every value a controller can observe — register contents, digests and their
order, alert counts, table hit statistics, drop counters — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import array as _array

from repro.p4.switch import Digest, PacketContext, StandardMetadata
from repro.stat4.binding import TRACK_ACTION, binding_key_of
from repro.stat4.distributions import DistributionKind, TrackSpec
from repro.stat4.library import Stat4, _to_us
from repro.traffic.columns import ColumnStore, slice_backing

try:  # pragma: no cover - exercised via both-backend test parametrization
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "resolve_backend",
    "PacketBatch",
    "BatchResult",
    "BatchEngine",
]

#: Value columns: one optional int per packet (None = no value of interest).
Column = List[Optional[int]]

_FRAME_SIZE = "frame.size"
_CONSTANT = "const"

#: Memoization miss sentinel (lookup results may legitimately be None).
_MISS = object()


def resolve_backend(backend: str = "auto") -> str:
    """Normalize a backend request to ``"numpy"``, ``"python"``, or
    ``"compiled"``.

    ``"compiled"`` is the generated-kernel tier (:mod:`repro.stat4.compiled`):
    it requires numpy, and uses numba on top when importable.

    Raises:
        RuntimeError: if ``"numpy"`` or ``"compiled"`` is requested but
            numpy is not importable.
        ValueError: on an unknown backend name.
    """
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend in ("numpy", "compiled"):
        if not HAS_NUMPY:
            raise RuntimeError(
                f"{backend} backend requested but numpy is not importable; "
                "use backend='python' or 'auto'"
            )
        return backend
    if backend == "python":
        return "python"
    raise ValueError(f"unknown batch backend {backend!r}")


class PacketBatch:
    """A structure-of-arrays view of many packets.

    Args:
        timestamps: per-packet switch-local times (seconds).
        keys: per-packet composite binding keys
            ``(ether_type, ipv4_dst, ip_protocol, tcp_flags)``.
        contexts: the parsed contexts backing the batch (value columns are
            derived lazily from them); None for synthetic batches.
        columns: raw per-source value columns for synthetic batches —
            ``{"ipv4.dst": [...], "meta.v": [...]}``, each one optional int
            per packet, None meaning the header/metadata is absent.
        frame_bytes: per-packet frame sizes for synthetic batches (defaults
            to 0 per packet, mirroring ``ctx.user.get("frame_bytes", 0)``).
    """

    __slots__ = (
        "timestamps",
        "keys",
        "contexts",
        "frame_bytes",
        "parse_errors",
        "_raw_columns",
        "_value_columns",
        "_store",
        "_ts_array",
    )

    def __init__(
        self,
        timestamps: Sequence[float],
        keys: Sequence[Tuple[int, int, int, int]],
        contexts: Optional[Sequence[PacketContext]] = None,
        columns: Optional[Dict[str, Column]] = None,
        frame_bytes: Optional[Sequence[int]] = None,
    ):
        if len(timestamps) != len(keys):
            raise ValueError("timestamps and keys must have equal length")
        self.timestamps: List[float] = list(timestamps)
        self.keys: List[Tuple[int, int, int, int]] = list(keys)
        self.contexts = list(contexts) if contexts is not None else None
        self.frame_bytes = list(frame_bytes) if frame_bytes is not None else None
        self.parse_errors = 0
        self._raw_columns: Dict[str, Column] = dict(columns or {})
        self._value_columns: Dict[Tuple[Any, int, int], Column] = {}
        self._store = ColumnStore()
        self._ts_array: Optional[Any] = None

    def __len__(self) -> int:
        return len(self.timestamps)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_contexts(cls, contexts: Sequence[PacketContext]) -> "PacketBatch":
        """Build a batch over already-parsed packet contexts."""
        return cls(
            timestamps=[ctx.meta.timestamp for ctx in contexts],
            keys=[binding_key_of(ctx) for ctx in contexts],
            contexts=contexts,
        )

    @classmethod
    def from_packets(
        cls,
        packets: Sequence[Any],
        parser: Any,
        timestamps: Optional[Sequence[float]] = None,
        ingress_port: int = 0,
    ) -> "PacketBatch":
        """Parse raw packets into a batch.

        Frames the parser rejects are skipped and counted in
        ``parse_errors`` — the same packets a :class:`BehavioralSwitch`
        drops before its ingress (and before ``Stat4.process``) ever runs.
        """
        contexts: List[PacketContext] = []
        skipped = 0
        for index, packet in enumerate(packets):
            when = (
                timestamps[index]
                if timestamps is not None
                else getattr(packet, "created_at", 0.0)
            )
            try:
                parsed = parser.parse(packet)
            except Exception:
                skipped += 1
                continue
            ctx = PacketContext(
                parsed=parsed,
                meta=StandardMetadata(ingress_port=ingress_port, timestamp=when),
            )
            ctx.user["frame_bytes"] = len(packet)
            contexts.append(ctx)
        batch = cls.from_contexts(contexts)
        batch.parse_errors = skipped
        return batch

    @classmethod
    def from_trace(
        cls, records: Iterable[Any], parser: Any, ingress_port: int = 0
    ) -> "PacketBatch":
        """Build a batch from :class:`~repro.traffic.trace.TraceRecord`s."""
        from repro.p4.packet import Packet

        records = list(records)
        packets = [
            Packet(record.data, created_at=record.timestamp) for record in records
        ]
        return cls.from_packets(
            packets,
            parser,
            timestamps=[record.timestamp for record in records],
            ingress_port=ingress_port,
        )

    def select(self, indices: Sequence[int]) -> "PacketBatch":
        """A new batch holding the given rows, in the given order.

        The shard router uses this to split one ingest batch into
        per-owner sub-batches: every backing column (contexts, raw value
        columns, frame sizes) is subset consistently, so a sub-batch
        behaves exactly like a batch built from those packets alone.
        ``parse_errors`` stays with the original batch — the dropped frames
        never made it into any row.
        """
        subset = PacketBatch(
            timestamps=[self.timestamps[i] for i in indices],
            keys=[self.keys[i] for i in indices],
            contexts=(
                [self.contexts[i] for i in indices]
                if self.contexts is not None
                else None
            ),
            columns={
                source: [column[i] for i in indices]
                for source, column in self._raw_columns.items()
            },
            frame_bytes=(
                [self.frame_bytes[i] for i in indices]
                if self.frame_bytes is not None
                else None
            ),
        )
        return subset

    def slice_view(self, start: int, stop: int) -> "PacketBatch":
        """A contiguous sub-batch over rows ``[start, stop)`` sharing storage.

        Where :meth:`select` copies element by element for arbitrary row
        sets, a contiguous window uses C-level list slicing for the plain
        Python fields and carries every already-encoded column of the
        backing :class:`~repro.traffic.columns.ColumnStore` (and the cached
        timestamp array) as a true zero-copy view — numpy slices or
        ``memoryview`` windows.  ``split_batch`` builds its worker chunks
        through this, so chunking a batch for fan-out does no per-element
        Python work and no column data movement.
        """
        sub = PacketBatch.__new__(PacketBatch)
        sub.timestamps = self.timestamps[start:stop]
        sub.keys = self.keys[start:stop]
        sub.contexts = (
            self.contexts[start:stop] if self.contexts is not None else None
        )
        sub.frame_bytes = (
            self.frame_bytes[start:stop] if self.frame_bytes is not None else None
        )
        sub.parse_errors = 0
        sub._raw_columns = {
            source: column[start:stop]
            for source, column in self._raw_columns.items()
        }
        sub._value_columns = {
            key: column[start:stop]
            for key, column in self._value_columns.items()
        }
        sub._store = self._store.slice(start, stop)
        sub._ts_array = (
            slice_backing(self._ts_array, start, stop)
            if self._ts_array is not None
            else None
        )
        return sub

    # -- column access --------------------------------------------------------

    def raw_column(self, source: str) -> Column:
        """The raw (pre-shift/mask) per-packet values of one extract source.

        Mirrors :meth:`repro.stat4.extract.ExtractSpec.extract` exactly:
        missing headers/metadata yield None, ``frame.size`` defaults to 0.
        """
        column = self._raw_columns.get(source)
        if column is not None:
            return column
        if self.contexts is None:
            # Synthetic batch without this source: the header/metadata is
            # absent on every packet (frame sizes default to zero).
            if source == _FRAME_SIZE:
                column = list(self.frame_bytes or [0] * len(self))
            else:
                column = [None] * len(self)
        elif source == _FRAME_SIZE:
            column = [ctx.user.get("frame_bytes", 0) for ctx in self.contexts]
        elif source.startswith("meta."):
            key = source[5:]
            column = [ctx.user.get(key) for ctx in self.contexts]
        else:
            header_name, _, field_name = source.partition(".")
            column = []
            append = column.append
            for ctx in self.contexts:
                # The hot path of ExtractSpec.extract with the per-call
                # validity and field-spec lookups flattened out.
                header = ctx.parsed.headers.get(header_name)
                if header is None or not header._valid:
                    append(None)
                else:
                    append(header._values[field_name].value)
        self._raw_columns[source] = column
        return column

    def values_for(self, spec: TrackSpec) -> Column:
        """Per-packet values of interest for one spec (None = no value).

        Applies the extract's shift/mask and the spec's accept filter — the
        exact pipeline of ``_apply`` in the scalar path.  Cached per
        ``(extract, accept_lo, accept_hi)`` so equal specs (across rebinds
        or repeated batches) share the work.
        """
        cache_key = (spec.extract, spec.accept_lo, spec.accept_hi)
        cached = self._value_columns.get(cache_key)
        if cached is not None:
            return cached
        extract = spec.extract
        shift = extract.shift
        mask = extract.mask
        lo = spec.accept_lo
        hi = spec.accept_hi
        out: Column = []
        append = out.append
        if extract.source == _CONSTANT:
            value = extract.constant_value >> shift
            if mask is not None:
                value &= mask
            if value < lo or (hi != 0 and value >= hi):
                value = None
            out = [value] * len(self)
        else:
            for item in self.raw_column(extract.source):
                if item is None:
                    append(None)
                    continue
                value = item >> shift
                if mask is not None:
                    value &= mask
                if value < lo or (hi != 0 and value >= hi):
                    append(None)
                else:
                    append(value)
        self._value_columns[cache_key] = out
        return out

    def values_array_for(self, spec: TrackSpec) -> Any:
        """Encoded value column for one spec: contiguous signed 64-bit.

        ``None`` entries are stored as the columns sentinel ``-1`` (field
        values are masked unsigned slices, so the sentinel is unambiguous).
        The array lives in the batch's :class:`ColumnStore`, cached under
        the same ``(extract, accept_lo, accept_hi)`` key as
        :meth:`values_for`, and is what the parallel engine slices into
        zero-copy worker chunks or packs into a shared-memory segment.
        """
        cache_key = (spec.extract, spec.accept_lo, spec.accept_hi)
        if cache_key in self._store:
            return self._store.get(cache_key)
        return self._store.put(cache_key, self.values_for(spec))

    def timestamps_array(self) -> Any:
        """Contiguous float64 timestamp column (cached)."""
        arr = self._ts_array
        if arr is None:
            if _np is not None:
                arr = _np.asarray(self.timestamps, dtype=_np.float64)
            else:
                arr = _array.array("d", self.timestamps)
            self._ts_array = arr
        return arr


@dataclass
class BatchResult:
    """What one batch produced.

    Attributes:
        packets: packets ingested (``Stat4.packets_seen`` grew by this).
        digests: every digest emitted, in scalar order (packet-major,
            binding-stage-minor).
        kernels: events handled per kernel, keyed by kernel name
            (``frequency_fast`` / ``percentile_fast`` / ``sparse_fast`` /
            ``time_series`` / ``exact_loop``; the parallel engine adds
            ``frequency_parallel`` / ``percentile_parallel`` /
            ``alert_parallel`` for its fanned-out modes).
        backend: the backend that ran the batch.
    """

    packets: int = 0
    digests: List[Digest] = field(default_factory=list)
    kernels: Dict[str, int] = field(default_factory=dict)
    backend: str = "python"

    @property
    def alerts(self) -> int:
        """Digest count (every alert is a digest)."""
        return len(self.digests)


class _DigestSink:
    """A minimal stand-in for :class:`PacketContext` inside batch kernels.

    The library's update methods touch their context only through
    ``emit_digest``; the sink implements that one method, stamping each
    digest with the packet's timestamp (as ``PacketContext.emit_digest``
    does) and tagging it with ``(packet, stage)`` so the batch result can
    restore the scalar emission order.
    """

    __slots__ = ("records", "_pkt", "_stage", "_now")

    def __init__(self):
        self.records: List[Tuple[int, int, Digest]] = []
        self._pkt = 0
        self._stage = 0
        self._now = 0.0

    def set(self, pkt: int, stage: int, now: float) -> None:
        self._pkt = pkt
        self._stage = stage
        self._now = now

    def emit_digest(self, name: str, **fields: int) -> None:
        self.records.append(
            (
                self._pkt,
                self._stage,
                Digest(name=name, fields=dict(fields), timestamp=self._now),
            )
        )

    def in_scalar_order(self) -> List[Digest]:
        """The recorded digests re-ordered as the scalar loop emits them.

        A stable sort on ``(packet, stage)``: digests from one update keep
        their relative order, and per-distribution kernels that ran in any
        order collapse back to packet-major, stage-minor emission.

        This also holds **across chunk boundaries**: one sink serves
        exactly one batch, packet indices are batch-local and
        monotonically assigned, and every kernel finishes its batch before
        the next batch starts — so concatenating ``in_scalar_order()``
        outputs over consecutive (time-ordered) chunks of a trace yields
        precisely the digest sequence of the scalar loop over the whole
        trace.  ``tests/stat4/test_digest_ordering.py`` guards this.
        """
        return [d for _, _, d in sorted(self.records, key=lambda r: (r[0], r[1]))]


#: One matched application: (packet index, binding stage, spec).
_Event = Tuple[int, int, TrackSpec]


class BatchEngine:
    """Applies :class:`PacketBatch`es to a :class:`Stat4` instance.

    Args:
        stat4: the library instance to drive.
        backend: ``"auto"`` (numpy when available), ``"numpy"``,
            ``"python"``, or ``"compiled"`` (generated specialized
            kernels, numba-jitted when the ``jit`` extra is installed).
    """

    def __init__(self, stat4: Stat4, backend: str = "auto"):
        self.stat4 = stat4
        self.backend = resolve_backend(backend)
        # The compiled tier layers on the numpy kernels: any run its
        # generated kernels decline falls through to them.
        self._np = _np if self.backend in ("numpy", "compiled") else None
        self._compiled = None
        if self.backend == "compiled":
            from repro.stat4.compiled import CompiledKernelLibrary

            self._compiled = CompiledKernelLibrary(stat4)

    # -- entry point ----------------------------------------------------------

    def process(self, batch: PacketBatch) -> BatchResult:
        """Ingest one batch; returns the digests and kernel statistics.

        Table entries must not change mid-batch (they cannot: the batch is
        the data-plane unit of work, and control-plane writes land between
        batches — the same atomicity a pipeline gives a single packet).
        """
        stat4 = self.stat4
        n = len(batch)
        result = BatchResult(packets=n, backend=self.backend)
        if n == 0:
            return result
        stat4.packets_seen += n
        events = self._match(batch)
        sink = _DigestSink()
        for dist in sorted(events):
            self._process_dist(events[dist], batch, sink, result)
        digests = sink.in_scalar_order()
        result.digests.extend(digests)
        return result

    # -- binding resolution ---------------------------------------------------

    def _match(self, batch: PacketBatch) -> Dict[int, List[_Event]]:
        """Matched applications grouped by distribution slot, in scalar order.

        Within a batch every distinct composite key resolves once per
        table — entries are fixed for the batch — and the memo caches the
        destination event bucket alongside the spec, so repeat keys cost
        one dict probe.  The table's ``lookups``/``hits`` counters are set
        to exactly what n scalar lookups would have left behind.

        The scalar path applies stage 0 then stage 1 for packet i before
        touching packet i+1; slots are independent of each other, so each
        slot's event stream in packet-major, stage-minor order replayed
        sequentially reproduces the interleaved execution exactly — even
        when two stages feed the *same* slot with different specs (the
        repurpose-per-packet ping-pong case).  With one binding stage the
        single pass below is already packet-major; with several, the
        per-stage passes still fill each bucket packet-major, and bucket
        merging is only needed when two stages share a dist — handled by a
        packet-major merge pass.
        """
        keys = batch.keys
        n = len(keys)
        tables = self.stat4.binding_tables
        events: Dict[int, List[_Event]] = {}
        multi = len(tables) > 1
        stage_dists: List[set] = []
        for stage, table in enumerate(tables):
            before_lookups = table.lookups
            before_hits = table.hits
            # memo: key -> None (miss) or (spec|None, bucket|None).
            memo: Dict[Tuple[int, int, int, int], Any] = {}
            memo_get = memo.get
            matched = 0
            dists: set = set()
            for i, key in enumerate(keys):
                hit = memo_get(key, _MISS)
                if hit is _MISS:
                    entry = table.lookup(key)
                    if entry is None:
                        hit = None
                    elif entry.action == TRACK_ACTION:
                        spec = entry.params["spec"]
                        bucket = (
                            events.setdefault((stage, spec.dist), [])
                            if multi
                            else events.setdefault(spec.dist, [])
                        )
                        dists.add(spec.dist)
                        hit = (spec, bucket)
                    else:
                        hit = (None, None)
                    memo[key] = hit
                if hit is None:
                    continue
                matched += 1
                spec, bucket = hit
                if bucket is not None:
                    bucket.append((i, stage, spec))
            table.lookups = before_lookups + n
            table.hits = before_hits + matched
            stage_dists.append(dists)
        if not multi:
            return events
        return self._merge_stage_buckets(events, stage_dists)

    @staticmethod
    def _merge_stage_buckets(
        staged: Dict[Any, List[_Event]], stage_dists: List[set]
    ) -> Dict[int, List[_Event]]:
        """Collapse per-(stage, dist) buckets into per-dist scalar order.

        A dist fed by one stage keeps its bucket as-is (already
        packet-major).  A dist fed by several stages merges their buckets
        on ``(packet, stage)`` — both already sorted, so this is a linear
        heap-free merge.
        """
        events: Dict[int, List[_Event]] = {}
        all_dists = set()
        for dists in stage_dists:
            all_dists |= dists
        for dist in all_dists:
            buckets = [
                staged[(stage, dist)]
                for stage in range(len(stage_dists))
                if (stage, dist) in staged
            ]
            if len(buckets) == 1:
                events[dist] = buckets[0]
                continue
            merged: List[_Event] = []
            cursors = [0] * len(buckets)
            total = sum(len(b) for b in buckets)
            while len(merged) < total:
                best = None
                best_rank = None
                for b, bucket in enumerate(buckets):
                    c = cursors[b]
                    if c >= len(bucket):
                        continue
                    rank = (bucket[c][0], bucket[c][1])
                    if best_rank is None or rank < best_rank:
                        best_rank = rank
                        best = b
                merged.append(buckets[best][cursors[best]])
                cursors[best] += 1
            events[dist] = merged
        return events

    # -- per-distribution dispatch --------------------------------------------

    @staticmethod
    def _split_runs(
        dist_events: List[_Event],
    ) -> List[Tuple[TrackSpec, List[_Event]]]:
        """Split one slot's event stream into runs of equal specs.

        Each run is the longest prefix whose events carry the same spec
        (identity first, equality as the fallback for rebind-equal specs),
        so a run maps to exactly one ``_state_for`` call — the scalar
        repurpose-per-application behaviour, amortized.
        """
        runs: List[Tuple[TrackSpec, List[_Event]]] = []
        i = 0
        n = len(dist_events)
        while i < n:
            spec = dist_events[i][2]
            j = i + 1
            while j < n:
                other = dist_events[j][2]
                if other is not spec and other != spec:
                    break
                j += 1
            runs.append((spec, dist_events[i:j]))
            i = j
        return runs

    def _process_dist(
        self,
        dist_events: List[_Event],
        batch: PacketBatch,
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        for spec, segment in self._split_runs(dist_events):
            self._process_run(spec, segment, batch, sink, result)

    def _process_run(
        self,
        spec: TrackSpec,
        segment: List[_Event],
        batch: PacketBatch,
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        # One _state_for per run of equal specs — idempotent for the rest
        # of the run, resetting the slot iff it was repurposed (exactly
        # the scalar per-application behaviour).
        state = self.stat4._state_for(spec)
        if self._compiled is not None and self._compiled.run(
            self, spec, state, segment, batch, sink, result
        ):
            return
        values = batch.values_for(spec)
        if spec.kind is DistributionKind.FREQUENCY and spec.k_sigma <= 0:
            if state.tracker is None:
                self._frequency_kernel(state, segment, values, result)
                return
            if (
                self._np is not None
                and not spec.percentile_alert
                and state.tracker.steps_per_update == 1
            ):
                self._percentile_kernel(state, segment, values, result)
                return
        if spec.kind is DistributionKind.TIME_SERIES:
            self._time_series_kernel(
                state, segment, values, batch.timestamps, sink, result
            )
        elif spec.kind is DistributionKind.SPARSE_FREQUENCY:
            self._sparse_kernel(
                state, segment, values, batch.timestamps, sink, result
            )
        else:
            self._exact_loop(
                state, segment, values, batch.timestamps, sink, result
            )

    # -- kernels -------------------------------------------------------------

    def _frequency_kernel(
        self,
        state,
        segment: List[_Event],
        values: Column,
        result: BatchResult,
    ) -> None:
        """Dense frequency slots with no tracker and no k·σ check.

        Occurrences are tallied per unique value and folded into the
        moments with the telescoped ``observe_frequencies`` identity; the
        cell register is written once per unique value and the derived
        measures are synced once.  Final register state is bit-identical to
        per-packet updates (a near-wrap cell falls back to the per-packet
        loop so width wrapping reproduces exactly).
        """
        stat4 = self.stat4
        size = stat4.config.counter_size
        observed: List[int] = []
        dropped = 0
        for pkt, _stage, _spec in segment:
            value = values[pkt]
            if value is None:
                # Matched but no value of interest: with no percentile
                # tracker the scalar path does nothing for this packet.
                continue
            if value >= size:
                dropped += 1
            else:
                observed.append(value)
        state.values_dropped += dropped
        result.kernels["frequency_fast"] = (
            result.kernels.get("frequency_fast", 0) + len(segment)
        )
        if not observed:
            return
        self._apply_counts(state, self._tally(observed, size))

    def _apply_counts(
        self, state, counts: Sequence[Tuple[int, int]]
    ) -> None:
        """Fold ``(value, occurrences)`` tallies into cells and moments.

        One register write per unique value, the telescoped
        ``observe_frequencies`` identity for the moments, and one derived-
        measure sync at the end — bit-identical to replaying the
        occurrences one at a time (a near-wrap cell falls back to the
        per-occurrence loop so width wrapping reproduces exactly).  This
        is also the exact-merge step of the parallel engine: per-chunk
        tallies summed per value and applied here land on the same final
        state as the serial kernel, because the moments update of each
        occurrence depends only on its own cell's prior count.
        """
        stat4 = self.stat4
        counters = stat4.counters
        width_mask = (1 << counters.width) - 1
        base = stat4.config.cell_index(state.spec.dist, 0)
        stats = state.stats
        for value, repeat in counts:
            cell = base + value
            old = counters.read(cell)
            if old + repeat > width_mask:
                # The cell would wrap mid-run: replay per occurrence so the
                # wrapped reads feed the moments exactly as the scalar path.
                for _ in range(repeat):
                    current = counters.read(cell)
                    counters.write(cell, stats.observe_frequency(current))
            else:
                stats.observe_frequencies(old, repeat)
                counters.write(cell, old + repeat)
        stat4._sync_stats(state)

    def _tally(self, observed: List[int], size: int) -> List[Tuple[int, int]]:
        """``(value, occurrences)`` pairs for in-domain observed values."""
        if self._np is not None:
            array = self._np.asarray(observed, dtype=self._np.int64)
            counts = self._np.bincount(array, minlength=0)
            nonzero = self._np.nonzero(counts)[0]
            return [(int(v), int(counts[v])) for v in nonzero]
        tally: Dict[int, int] = {}
        for value in observed:
            tally[value] = tally.get(value, 0) + 1
        return sorted(tally.items())

    #: Vectorized-walk rounds before the percentile stepper falls back to
    #: the scalar tracker for the rest of the segment.  Each round re-scans
    #: the remaining tail once, so a pathological trace that moves the
    #: position on every packet would otherwise cost O(moves · n).
    _WALK_ROUNDS = 256

    def _percentile_kernel(
        self,
        state,
        segment: List[_Event],
        values: Column,
        result: BatchResult,
    ) -> None:
        """Tracked frequency slots with no alerts (numpy backend only).

        Cells and moments take the counting kernel (the tracker's state
        does not feed them), and the percentile tracker replays the exact
        observe/tick event sequence through the vectorized stepper
        (:meth:`_tracker_walk`).  The percentile registers are synced once
        at the end — same final contents as the scalar per-packet
        ``_sync_percentile`` calls, and written only if the scalar path
        would have synced at least once (an observation landed, or the
        tracker already had a position and a value-free packet ticked it).
        """
        stat4 = self.stat4
        size = stat4.config.counter_size
        tracker = state.tracker
        events: List[int] = []
        observed: List[int] = []
        dropped = 0
        for pkt, _stage, _spec in segment:
            value = values[pkt]
            if value is None:
                events.append(-1)  # value-free packet: a tracker tick
            elif value >= size:
                # Scalar path returns before the tracker: no tick either.
                dropped += 1
            else:
                events.append(value)
                observed.append(value)
        state.values_dropped += dropped
        result.kernels["percentile_fast"] = (
            result.kernels.get("percentile_fast", 0) + len(segment)
        )
        had_value = tracker.has_value
        if observed:
            self._apply_counts(state, self._tally(observed, size))
        if events:
            self._tracker_walk(
                tracker, self._np.asarray(events, dtype=self._np.int64)
            )
        if observed or (had_value and len(events) > len(observed)):
            dist = state.spec.dist
            stat4.reg_pos.write(dist, tracker.value)
            stat4.reg_low.write(dist, tracker.low)
            stat4.reg_high.write(dist, tracker.high)

    def _tracker_walk(self, tracker, vals) -> None:
        """Replay observe/tick events through a tracker, vectorized.

        ``vals`` is an int64 array: a value in ``[0, domain)`` is one
        ``observe``, ``-1`` is one ``tick``.  The walk is exact because of
        the cumulative-count formulation of the one-step-per-packet rule:
        **between moves the position is fixed**, so after each event the
        low/high/at counters are the segment-start counters plus running
        counts of events below/above/at the position — affine in three
        cumulative sums.  The move conditions ``wl·high > wh·(low + at)``
        and ``wh·low > wl·(high + at)`` (provably never both true: summing
        them gives ``0 > (wl+wh)·at``) are then evaluated for *every*
        event of the segment in one vectorized compare; the first trigger
        is where the scalar walk would have moved, everything before it is
        absorbed in bulk, the single-unit move is applied, and the scan
        restarts after the trigger with the new position.
        """
        np = self._np
        n = int(len(vals))
        obs_mask = vals >= 0
        pos = tracker._position
        start = 0
        if pos is None:
            if not bool(obs_mask.any()):
                return  # ticks before any observation are no-ops
            first = int(np.argmax(obs_mask))
            pos = int(vals[first])
            # The first observation's rebalance cannot move (low=high=0).
            tracker.freqs[pos] += 1
            start = first + 1
        freqs = np.asarray(tracker.freqs, dtype=np.int64)
        low = tracker.low
        high = tracker.high
        domain = tracker.domain_size
        wl = tracker._weight_low
        wh = tracker._weight_high
        moves = 0
        rounds = 0
        while start < n:
            if rounds >= self._WALK_ROUNDS:
                # Heavy-movement tail: write back what is settled and
                # replay the rest through the scalar tracker — still
                # exact, without the quadratic re-scan regime.
                self._tracker_writeback(
                    tracker, freqs, low, high, pos,
                    int(obs_mask[:start].sum()), moves,
                )
                for v in vals[start:].tolist():
                    if v < 0:
                        tracker.tick()
                    else:
                        tracker.observe(v)
                return
            rounds += 1
            seg = vals[start:]
            seg_obs = obs_mask[start:]
            low_run = low + np.cumsum(seg_obs & (seg < pos))
            high_run = high + np.cumsum(seg_obs & (seg > pos))
            at_run = int(freqs[pos]) + np.cumsum(seg == pos)
            up = wl * high_run > wh * (low_run + at_run)
            down = wh * low_run > wl * (high_run + at_run)
            if pos >= domain - 1:
                up[:] = False
            if pos <= 0:
                down[:] = False
            trigger = up | down
            if not bool(trigger.any()):
                absorbed = seg[seg_obs]
                if len(absorbed):
                    freqs += np.bincount(absorbed, minlength=domain)
                low = int(low_run[-1])
                high = int(high_run[-1])
                break
            hit = int(np.argmax(trigger))
            absorbed = seg[: hit + 1][seg_obs[: hit + 1]]
            if len(absorbed):
                freqs += np.bincount(absorbed, minlength=domain)
            low = int(low_run[hit])
            high = int(high_run[hit])
            if bool(up[hit]):
                low += int(freqs[pos])
                pos += 1
                high -= int(freqs[pos])
            else:
                high += int(freqs[pos])
                pos -= 1
                low -= int(freqs[pos])
            moves += 1
            start += hit + 1
        self._tracker_writeback(
            tracker, freqs, low, high, pos, int(obs_mask.sum()), moves
        )

    @staticmethod
    def _tracker_writeback(
        tracker, freqs, low: int, high: int, pos: int, observed: int, moves: int
    ) -> None:
        """Install the walked state back into the scalar tracker."""
        tracker.freqs[:] = [int(f) for f in freqs]
        tracker.low = low
        tracker.high = high
        tracker._position = pos
        tracker.total += observed
        tracker.moves += moves

    def _tracker_replay(self, tracker, events: List[int]) -> bool:
        """Resumable tracker walk over one window of observe/tick events.

        ``events`` is the window's exact event sequence — a value in
        ``[0, domain)`` is one ``observe``, ``-1`` one ``tick`` — replayed
        from whatever entry state the tracker currently holds, so callers
        can chunk a run and walk it window by window (the parallel merge
        engine folds provably-silent chunks through exactly this entry
        point).  Dispatches to the vectorized :meth:`_tracker_walk` when
        numpy is available and the tracker moves one step per packet, and
        to the scalar tracker otherwise; both count moves identically.
        Returns ``True`` when the window requires a position-register
        sync under the serial write gate: an observation landed, or the
        tracker entered the window holding a position and a value-free
        packet ticked it.
        """
        if not events:
            return False
        had_value = tracker.has_value
        observed = sum(1 for value in events if value >= 0)
        if self._np is not None and tracker.steps_per_update == 1:
            self._tracker_walk(
                tracker, self._np.asarray(events, dtype=self._np.int64)
            )
        else:
            for value in events:
                if value < 0:
                    if tracker.has_value:
                        tracker.tick()
                else:
                    tracker.observe(value)
        return bool(observed or (had_value and len(events) > observed))

    def _sparse_kernel(
        self,
        state,
        segment: List[_Event],
        values: Column,
        timestamps: List[float],
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Sparse hashed slots: the exact per-packet loop, batch-amortized.

        Probe order, eviction choice, and the k·σ judgement are all
        order-dependent, so every event still runs individually — but the
        multiply-shift probe path is memoized per unique key for the batch
        (:meth:`~repro.stat4.sparse.HashedCells.probe_path`), and the
        derived-measure registers are synced once at the end instead of
        per packet.  Final register contents are identical either way:
        ``_maybe_alert`` judges samples against the live ``state.stats``,
        never the registers.
        """
        stat4 = self.stat4
        spec = state.spec
        cells = stat4.sparse_cells[spec.dist]
        stats = state.stats
        increment = cells.increment
        # Bulk-memoize the multiply-shift probe paths: one hash pipeline
        # per unique key for the whole batch.
        probes = cells.probe_paths(
            {values[pkt] for pkt, _s, _sp in segment if values[pkt] is not None}
        )
        alerts = spec.k_sigma > 0
        touched = False
        result.kernels["sparse_fast"] = (
            result.kernels.get("sparse_fast", 0) + len(segment)
        )
        for pkt, stage, _spec in segment:
            value = values[pkt]
            if value is None:
                continue
            path = probes[value]
            old, new, evicted = increment(value, path)
            if evicted:
                stats.remove_value(evicted)
            stats.observe_frequency(old)
            touched = True
            if alerts:
                now = timestamps[pkt]
                sink.set(pkt, stage, now)
                stat4._maybe_alert(state, sink, sample=new, index=value, now=now)
        if touched:
            stat4._sync_stats(state)

    def _time_series_kernel(
        self,
        state,
        segment: List[_Event],
        values: Column,
        timestamps: List[float],
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Segmented time-series scan: chunk-sum between interval closes.

        The close predicate is evaluated exactly as the scalar path does —
        ``now − interval_start ≥ interval`` as one float subtraction and
        compare per packet — and each close runs the library's own
        ``_close_interval`` so window absorption, the pre-absorb alert
        check, cursor advance, and the silent-gap snap are byte-for-byte
        the library's.  Only the per-packet ``reg_current`` writes are
        coalesced: the register holds the same final value either way.

        On the numpy backend the close search is a galloping block scan:
        the same ``(ts[k] - start) >= interval`` float subtract-and-compare
        (both operands are IEEE doubles on either backend), evaluated over
        doubling-size blocks from the cursor, so each close costs work
        proportional to its distance from the cursor — never the whole
        remaining segment, which is the quadratic regime a naive
        full-tail compare per close would hit when closes are frequent.
        The list backend keeps the one-pass scalar scan; both take
        bit-identical close decisions.
        """
        stat4 = self.stat4
        spec = state.spec
        dist = spec.dist
        interval = spec.interval
        m = len(segment)
        ts = [timestamps[e[0]] for e in segment]
        counts = [values[e[0]] if values[e[0]] is not None else 0 for e in segment]
        result.kernels["time_series"] = result.kernels.get("time_series", 0) + m
        idx = 0
        if state.interval_start is None:
            state.interval_start = ts[0]
            stat4.reg_interval_start.write(dist, _to_us(ts[0]))
            state.current_count += counts[0]
            idx = 1
        tsv = (
            self._np.asarray(ts, dtype=self._np.float64)
            if self._np is not None
            else None
        )
        while idx < m:
            start = state.interval_start
            if tsv is not None:
                j = self._next_close(tsv, start, idx, interval)
            else:
                j = -1
                for k in range(idx, m):
                    if ts[k] - start >= interval:
                        j = k
                        break
            if j < 0:
                state.current_count += sum(counts[idx:])
                break
            if j > idx:
                state.current_count += sum(counts[idx:j])
            pkt, stage, _spec = segment[j]
            now = ts[j]
            sink.set(pkt, stage, now)
            stat4._close_interval(state, sink, now)
            state.current_count += counts[j]
            idx = j + 1
        stat4.reg_current.write(dist, state.current_count)

    def _next_close(self, tsv, start: float, idx: int, interval: float) -> int:
        """Galloping search for the first ``k >= idx`` closing an interval.

        Evaluates exactly the scalar close predicate —
        ``(ts[k] - start) >= interval`` as one float64 subtract and
        compare per element — over blocks that double in size, stopping at
        the first block containing a hit.  Returns -1 when no event in the
        tail closes the interval.
        """
        np = self._np
        m = len(tsv)
        k = idx
        block = 32
        while k < m:
            stop = min(m, k + block)
            hits = (tsv[k:stop] - start) >= interval
            first = int(np.argmax(hits))
            if hits[first]:
                return k + first
            k = stop
            block <<= 1
        return -1

    def _exact_loop(
        self,
        state,
        segment: List[_Event],
        values: Column,
        timestamps: List[float],
        sink: _DigestSink,
        result: BatchResult,
    ) -> None:
        """Order-dependent slots: run the library's own per-packet updates.

        Percentile stepping moves at most one unit per packet, k·σ checks
        judge each sample against the pre-update moments, and sparse hashed
        slots evict by probe order — none of that can be reordered, so this
        loop calls the exact scalar methods with the context plumbing
        stripped away.
        """
        stat4 = self.stat4
        kind = state.spec.kind
        if kind is DistributionKind.FREQUENCY:
            update = stat4._update_frequency
        elif kind is DistributionKind.SPARSE_FREQUENCY:
            update = stat4._update_sparse
        else:
            update = stat4._update_time_series
        result.kernels["exact_loop"] = (
            result.kernels.get("exact_loop", 0) + len(segment)
        )
        for pkt, stage, _spec in segment:
            now = timestamps[pkt]
            sink.set(pkt, stage, now)
            update(state, sink, values[pkt], now)
