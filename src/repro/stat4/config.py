"""Compile-time configuration of the Stat4 library.

"The size and number of those registers is controlled by two compiler
macros whose values can be tuned by P4 applications using the library: the
maximum number of distributions tracked simultaneously depends on the macro
STAT_COUNTER_NUM, and the number of values per distribution on the macro
STAT_COUNTER_SIZE" (Sec. 3).

:class:`Stat4Config` is the reproduction of those macros plus the register
widths.  It is fixed when the program is "compiled" (the :class:`Stat4`
instance is built); everything else — which distributions to track, over
which packets, with which checks — is runtime state in binding tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.p4.errors import ResourceError

__all__ = ["Stat4Config", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class Stat4Config:
    """Compile-time geometry of the Stat4 register layout.

    Attributes:
        counter_num: STAT_COUNTER_NUM — distributions tracked simultaneously.
        counter_size: STAT_COUNTER_SIZE — values (cells) per distribution.
        counter_width: bit width of each value cell.
        stats_width: bit width of the derived-measure registers (Xsum,
            Xsumsq, σ²; Xsumsq of ``counter_size`` squared 32-bit values
            needs headroom, hence 64 by default).
        binding_stages: number of binding tables applied in sequence; each
            stage contributes at most one matching rule per packet, which is
            how the paper keeps "at most one dependency between match-action
            rules" with two rules matching each packet (Sec. 4).
        alert_cooldown: minimum seconds between two digests from the same
            distribution, so one anomaly does not flood the controller.
        sparse_dists: distribution slots compiled with HashPipe-style hashed
            storage instead of dense cells (the Sec. 5 sparse-distribution
            extension); like everything else here, fixed at compile time.
        sparse_slots: hashed slots per stage for those distributions.
        sparse_stages: hashed probe stages (pipeline stages on hardware).
    """

    counter_num: int = 8
    counter_size: int = 256
    counter_width: int = 32
    stats_width: int = 64
    binding_stages: int = 2
    alert_cooldown: float = 0.0  # p4-ok: control-plane config knob in seconds, not a register value
    sparse_dists: Tuple[int, ...] = ()
    sparse_slots: int = 64
    sparse_stages: int = 2

    def __post_init__(self):
        if self.counter_num <= 0:
            raise ResourceError("STAT_COUNTER_NUM must be positive")
        if self.counter_size <= 0:
            raise ResourceError("STAT_COUNTER_SIZE must be positive")
        if self.counter_width <= 0 or self.stats_width <= 0:
            raise ResourceError("register widths must be positive")
        if self.binding_stages <= 0:
            raise ResourceError("need at least one binding stage")
        if self.alert_cooldown < 0:
            raise ResourceError("alert_cooldown cannot be negative")
        for dist in self.sparse_dists:
            if not 0 <= dist < self.counter_num:
                raise ResourceError(
                    f"sparse slot {dist} outside [0, {self.counter_num})"
                )
        if self.sparse_dists:
            if self.sparse_slots <= 0 or self.sparse_stages <= 0:
                raise ResourceError("sparse geometry must be positive")

    @property
    def total_counter_cells(self) -> int:
        """Flattened size of the shared value-cell register."""
        return self.counter_num * self.counter_size

    def cell_index(self, dist: int, offset: int) -> int:
        """Flattened register index of ``(distribution, cell)``.

        ``dist * counter_size`` is a compile-time-constant multiply.
        """
        if not 0 <= dist < self.counter_num:
            raise ResourceError(
                f"distribution {dist} out of range [0, {self.counter_num})"
            )
        if not 0 <= offset < self.counter_size:
            raise ResourceError(
                f"cell {offset} out of range [0, {self.counter_size})"
            )
        return dist * self.counter_size + offset


#: The library's default geometry: 8 distributions of 256 values.
DEFAULT_CONFIG = Stat4Config()
