"""A small indentation-aware code writer for the P4 generator."""

from __future__ import annotations

from typing import Iterator, List

__all__ = ["CodeWriter"]


class CodeWriter:
    """Accumulates lines with managed indentation."""

    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._depth = 0
        self._lines: List[str] = []

    def line(self, text: str = "") -> "CodeWriter":
        """Append one line at the current depth (empty = blank line)."""
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, *texts: str) -> "CodeWriter":
        """Append several lines."""
        for text in texts:
            self.line(text)
        return self

    def blank(self) -> "CodeWriter":
        """Append a blank line."""
        return self.line()

    def comment(self, text: str) -> "CodeWriter":
        """Append a ``//`` comment."""
        return self.line(f"// {text}")

    class _Block:
        def __init__(self, writer: "CodeWriter", opener: str, closer: str):
            self.writer = writer
            self.opener = opener
            self.closer = closer

        def __enter__(self):
            self.writer.line(self.opener)
            self.writer._depth += 1
            return self.writer

        def __exit__(self, *exc):
            self.writer._depth -= 1
            self.writer.line(self.closer)
            return False

    def block(self, opener: str, closer: str = "}") -> "_Block":
        """Context manager: ``with w.block("control X {"): ...``."""
        return CodeWriter._Block(self, opener, closer)

    def render(self) -> str:
        """The accumulated source text."""
        return "\n".join(self._lines) + "\n"

    def __iter__(self) -> Iterator[str]:
        return iter(self._lines)
