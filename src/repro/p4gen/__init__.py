"""P4-16 source generation from Stat4 configurations.

Makes the simulator↔P4 correspondence concrete: the same
:class:`~repro.stat4.config.Stat4Config` that sizes the simulated registers
renders to a v1model P4-16 program, and installed bindings render to
``simple_switch_CLI`` runtime commands.
"""

from repro.p4gen.emit import CodeWriter
from repro.p4gen.generator import generate_p4, generate_runtime_commands

__all__ = ["CodeWriter", "generate_p4", "generate_runtime_commands"]
