# p4-ok-file — host-side experiment driver, not data-plane code.
"""Victim-identification strategies compared (Sec. 4 vs Sec. 5 designs).

Three ways to answer "who is the spike hitting?" after in-switch detection:

1. **drill-down** (the paper's case study): two binding-table rebind
   cycles, each paying a control RTT plus statistics re-accumulation;
2. **hybrid pull-on-alert** (the paper's Sec. 5 sketch): one pull of a
   passively-maintained count-min sketch;
3. **sparse in-digest** (this reproduction's Sec. 5 sparse extension): the
   hashed per-destination distribution puts the full victim address in the
   alert itself — zero extra round trips.

Same workload and control-channel delay for all three; the experiment
reports identification latency (alert → victim known) and the control
bytes each strategy moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.hybrid import HybridController, build_hybrid_app
from repro.controller.base import Controller
from repro.experiments.case_study import CaseStudySetup, run_case_study
from repro.experiments.common import format_rows
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.parser import standard_parser
from repro.p4.pipeline import PipelineProgram
from repro.p4.registers import RegisterFile
from repro.p4.switch import CPU_PORT, PacketContext
from repro.stat4.binding import BindingMatch
from repro.stat4.config import Stat4Config
from repro.stat4.extract import ExtractSpec
from repro.stat4.library import Stat4
from repro.stat4.runtime import Stat4Runtime
from repro.traffic.profiles import spike_phase, uniform_phase
from repro.traffic.source import TrafficSource

__all__ = ["StrategyResult", "run_identification_comparison", "format_strategies"]


@dataclass(frozen=True)
class StrategyResult:
    """One strategy's outcome on the shared scenario."""

    strategy: str
    victim_correct: bool
    identify_seconds: Optional[float]
    control_bytes: int


def _shared_workload(destinations, victim, interval, ppi, seed):
    base_rate = ppi / interval
    return [
        uniform_phase(destinations, duration=40 * interval, rate_pps=base_rate,
                      poisson=False),
        spike_phase(victim, destinations, duration=120 * interval,
                    rate_pps=base_rate * 8, poisson=False),
    ]


def _run_hybrid(destinations, victim, interval, ppi, control_delay, seed):
    app = build_hybrid_app(interval=interval, window=50)
    network = Network()
    switch = network.add(SwitchNode("p4", app.program))
    controller = network.add(
        HybridController(
            "ctrl",
            candidates=destinations,
            sketch_registers=app.sketch_registers,
            sketch_width=app.sketch.width,
        )
    )
    sink = network.add(Host("sink"))
    network.connect(switch, CPU_PORT, controller, 0, delay=control_delay)
    network.connect(switch, 1, sink, 0)
    source = network.add(
        TrafficSource("src", _shared_workload(destinations, victim, interval, ppi, seed), seed=seed)
    )
    network.connect(source, 0, switch, 0)
    source.start()
    network.run()
    onset = source.phase_start_of("spike")
    identify = (
        controller.identified_at - onset
        if controller.identified_at is not None and onset is not None
        else None
    )
    bytes_moved = (
        network.link_of(switch, CPU_PORT).bytes_carried
        + network.link_of(controller, 0).bytes_carried
    )
    return StrategyResult(
        strategy="hybrid pull-on-alert",
        victim_correct=controller.identified == victim,
        identify_seconds=identify,
        control_bytes=bytes_moved,
    )


def _run_sparse(destinations, victim, interval, ppi, control_delay, seed):
    config = Stat4Config(
        counter_num=2,
        counter_size=max(50, 64),
        binding_stages=2,
        sparse_dists=(1,),
        sparse_slots=128,
    )
    registers = RegisterFile()
    stat4 = Stat4(config, registers)
    runtime = Stat4Runtime(stat4)
    runtime.bind(
        0,
        BindingMatch.ipv4_prefix("10.0.0.0", 8),
        runtime.rate_over_time(
            dist=0, interval=interval, k_sigma=2, alert="traffic_spike",
            min_samples=5, margin=max(3, (ppi + 7) >> 3), cooldown=0.1, window=50
        ),
    )
    runtime.bind(
        1,
        BindingMatch.ipv4_prefix("10.0.0.0", 8),
        runtime.sparse_frequency_of(
            dist=1,
            extract=ExtractSpec.field("ipv4.dst"),
            k_sigma=2,
            alert="heavy_key",
            min_samples=len(destinations),
            margin=2,
            cooldown=0.1,
        ),
    )

    def ingress(ctx: PacketContext) -> None:
        stat4.process(ctx)
        ctx.meta.egress_spec = 1

    program = PipelineProgram(
        name="sparse_id", parser=standard_parser(), registers=registers, ingress=ingress
    )
    stat4.install_into(program)
    network = Network()
    switch = network.add(SwitchNode("p4", program))
    controller = network.add(Controller("ctrl"))
    sink = network.add(Host("sink"))
    network.connect(switch, CPU_PORT, controller, 0, delay=control_delay)
    network.connect(switch, 1, sink, 0)
    source = network.add(
        TrafficSource("src", _shared_workload(destinations, victim, interval, ppi, seed), seed=seed)
    )
    network.connect(source, 0, switch, 0)
    source.start()
    network.run()
    onset = source.phase_start_of("spike")
    heavy = [
        (when, digest)
        for (when, digest) in controller.alerts_named("heavy_key")
        if when >= (onset or 0) and digest.fields["index"] == victim
    ]
    identify = heavy[0][0] - onset if heavy and onset is not None else None
    bytes_moved = (
        network.link_of(switch, CPU_PORT).bytes_carried
        + network.link_of(controller, 0).bytes_carried
    )
    return StrategyResult(
        strategy="sparse in-digest",
        victim_correct=bool(heavy),
        identify_seconds=identify,
        control_bytes=bytes_moved,
    )


def run_identification_comparison(
    interval: float = 0.01,
    ppi: int = 30,
    control_delay: float = 0.02,
    seed: int = 3,
) -> List[StrategyResult]:
    """Run all three strategies on equivalent scenarios."""
    destinations = [hdr.ip_to_int(f"10.0.{s}.{h}") for s in range(1, 7) for h in range(1, 7)]
    victim = destinations[seed % len(destinations)]

    # Strategy 1: the paper's drill-down, via the case-study driver.
    case = run_case_study(
        CaseStudySetup(
            interval=interval,
            window=50,
            packets_per_interval=ppi,
            warmup_intervals=40,
            spike_intervals=120,
            control_delay=control_delay,
            controller_processing=0.0,
            seed=seed,
        )
    )
    drill = StrategyResult(
        strategy="drill-down rebinding",
        victim_correct=case.victim_correct,
        identify_seconds=case.pinpoint_seconds,
        control_bytes=0,  # filled below if measurable
    )
    results = [drill]
    results.append(_run_hybrid(destinations, victim, interval, ppi, control_delay, seed))
    results.append(_run_sparse(destinations, victim, interval, ppi, control_delay, seed))
    return results


def format_strategies(results: List[StrategyResult]) -> str:
    """Render the strategy comparison."""
    header = ["strategy", "victim correct", "identify latency", "control bytes"]
    rows = [
        [
            r.strategy,
            "yes" if r.victim_correct else "NO",
            f"{r.identify_seconds * 1000:.0f} ms" if r.identify_seconds is not None else "-",
            str(r.control_bytes) if r.control_bytes else "-",
        ]
        for r in results
    ]
    return format_rows(header, rows)
