# p4-ok-file — host-side experiment driver, not data-plane code.
"""Sec. 4 case study (Figure 6): spike detection and drill-down.

Topology, as in the paper: a single traffic source feeds a P4 switch that
forwards into two OVS-like boxes, behind which live 36 destinations in six
/24 subnets of 10.0.0.0/8.  A controller hangs off the switch's CPU port.

Sequence: uniform load-balanced traffic for a randomized warm-up, then a
spike toward a randomly selected destination.  The paper reports that (i)
the switch detects the spike in the first interval after onset, (ii) the
drill-down correctly identifies the /24 and then the destination, and
(iii) pinpointing takes 2–3 s "because of the interaction between the
control and data planes" — reproduced here by the control-channel delay,
the controller processing time, the alert cooldowns, and the statistics
re-accumulation after each rebind, all explicit parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.anomaly import CaseStudyParams, build_case_study_app
from repro.controller.drilldown import DrillDownController, Phase
from repro.netsim.forwarder import StaticForwarder
from repro.netsim.network import Network
from repro.netsim.hosts import Host
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.profiles import spike_phase, uniform_phase
from repro.traffic.source import TrafficSource
from repro.experiments.common import format_rows

__all__ = [
    "CaseStudySetup",
    "CaseStudyResult",
    "run_case_study",
    "run_case_study_sweep",
    "format_sweep",
]

#: Subnet octets and host octets of the 36 destinations (6 x 6).
SUBNETS = (1, 2, 3, 4, 5, 6)
HOSTS_PER_SUBNET = (1, 2, 3, 4, 5, 6)


@dataclass(frozen=True)
class CaseStudySetup:
    """Parameters of one case-study run.

    Attributes:
        interval: monitoring interval in seconds (paper default 8 ms,
            swept up to 2 s).
        window: circular-window length in intervals (paper default 100,
            swept down to 10).
        packets_per_interval: baseline load, in packets per interval (the
            sweep holds this constant so runtimes stay bounded as the
            interval grows).
        spike_factor: traffic multiplier during the spike.
        victim_share: fraction of spike traffic aimed at the victim.
        warmup_intervals: deterministic part of the uniform phase.
        spike_intervals: length of the spike phase.
        control_delay: one-way switch↔controller delay in seconds.
        controller_processing: controller think time per table operation.
        margin: flat packets-per-interval margin on top of 2σ; 0 derives it
            from the expected load (⌈ppi/8⌉, what an operator would set to
            absorb Poisson noise around a known baseline).
        poisson: exponential inter-arrivals.  The default is constant
            spacing, matching the paper's emulated load-balanced traffic;
            with Poisson arrivals the bare 2σ rule fires on ~0.7 % of
            baseline intervals (measured), which the experiment reports as
            ``false_alerts_before_onset``.
        seed: randomizes warm-up length, victim choice and traffic.
    """

    interval: float = 0.008
    window: int = 100
    packets_per_interval: int = 40
    spike_factor: int = 8
    victim_share: float = 0.8
    warmup_intervals: int = 30
    spike_intervals: int = 120
    control_delay: float = 0.02
    controller_processing: float = 0.05
    margin: int = 0
    poisson: bool = False
    seed: int = 0

    @property
    def effective_margin(self) -> int:
        """The margin actually installed in the monitor binding."""
        if self.margin > 0:
            return self.margin
        return max(3, (self.packets_per_interval + 7) >> 3)


@dataclass
class CaseStudyResult:
    """Everything the Sec. 4 text reports, measured.

    Attributes:
        setup: the run's parameters.
        victim: the actual spike destination (dotted quad).
        identified: the controller's verdict (None if never pinpointed).
        spike_onset: when the spike phase began.
        detected_at_switch: timestamp of the first spike digest at the
            switch (the "first interval after the start of the spike"
            claim is judged against this).
        detection_intervals: detection latency in units of the interval.
        subnet_correct: whether the identified /24 was the victim's.
        pinpointed_at: when the controller identified the destination.
        pinpoint_seconds: onset→pinpoint wall-clock (the 2–3 s claim).
        false_alerts_before_onset: spike alerts before the spike existed.
        packets: total packets the switch processed.
    """

    setup: CaseStudySetup
    victim: str
    identified: Optional[str] = None
    spike_onset: float = 0.0
    detected_at_switch: Optional[float] = None
    detection_intervals: Optional[float] = None
    subnet_correct: bool = False
    pinpointed_at: Optional[float] = None
    pinpoint_seconds: Optional[float] = None
    false_alerts_before_onset: int = 0
    packets: int = 0
    timeline: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """Whether the spike produced an alert at all."""
        return self.detected_at_switch is not None

    @property
    def victim_correct(self) -> bool:
        """Whether the drill-down named the right destination."""
        return self.identified is not None and self.identified == self.victim


def destination_ips() -> List[int]:
    """The 36 destination addresses."""
    return [
        hdr.ip_to_int(f"10.0.{subnet}.{host}")
        for subnet in SUBNETS
        for host in HOSTS_PER_SUBNET
    ]


def run_case_study(setup: CaseStudySetup = CaseStudySetup()) -> CaseStudyResult:
    """Run one full detection + drill-down experiment."""
    rng = random.Random(setup.seed)
    destinations = destination_ips()
    victim = destinations[rng.randrange(len(destinations))]

    params = CaseStudyParams(
        interval=setup.interval,
        window=setup.window,
        counter_size=max(setup.window, 256),
        margin=setup.effective_margin,
    )
    routes = {
        1: [f"10.0.{s}.0/24" for s in SUBNETS[:3]],
        2: [f"10.0.{s}.0/24" for s in SUBNETS[3:]],
    }
    bundle = build_case_study_app(params, routes=routes)

    network = Network()
    switch = network.add(SwitchNode("p4", bundle.program))
    controller = network.add(
        DrillDownController(
            "ctrl",
            min_samples=len(SUBNETS) - 1,
            cooldown=params.cooldown,
            processing_delay=setup.controller_processing,
        )
    )
    network.connect(switch, CPU_PORT, controller, 0, delay=setup.control_delay)

    # Two forwarders (the OVS boxes), each fronting three subnets.
    for box, (port, subnets) in enumerate(((1, SUBNETS[:3]), (2, SUBNETS[3:]))):
        host_port = 1
        forwarder_routes = {}
        hosts = []
        for subnet in subnets:
            for host_octet in HOSTS_PER_SUBNET:
                ip = f"10.0.{subnet}.{host_octet}"
                forwarder_routes[f"{ip}/32"] = host_port
                hosts.append((host_port, Host(f"d{subnet}_{host_octet}", ip=hdr.ip_to_int(ip))))
                host_port += 1
        forwarder = network.add(StaticForwarder(f"ovs{box + 1}", forwarder_routes))
        network.connect(switch, port, forwarder, 0)
        for hport, host in hosts:
            network.add(host)
            network.connect(forwarder, hport, host, 0)

    base_rate = setup.packets_per_interval / setup.interval
    warmup = (setup.warmup_intervals + rng.randint(0, setup.warmup_intervals)) * setup.interval
    spike_duration = setup.spike_intervals * setup.interval
    source = network.add(
        TrafficSource(
            "source",
            phases=[
                uniform_phase(
                    destinations,
                    duration=warmup,
                    rate_pps=base_rate,
                    poisson=setup.poisson,
                ),
                spike_phase(
                    victim,
                    destinations,
                    duration=spike_duration,
                    rate_pps=base_rate * setup.spike_factor,
                    victim_share=setup.victim_share,
                    poisson=setup.poisson,
                ),
            ],
            seed=setup.seed + 1,
        )
    )
    network.connect(source, 0, switch, 0)
    source.start()
    network.run()

    onset = source.phase_start_of("spike")
    result = CaseStudyResult(
        setup=setup,
        victim=hdr.int_to_ip(victim),
        spike_onset=onset if onset is not None else 0.0,
        packets=switch.switch.packets_in,
        timeline=list(controller.timeline),
    )
    spike_digests = [
        digest
        for (_arrival, _switch_name, digest) in controller.alerts
        if digest.name == DrillDownController.SPIKE_ALERT
    ]
    if onset is not None:
        result.false_alerts_before_onset = sum(
            1 for digest in spike_digests if digest.timestamp < onset
        )
        after = [d.timestamp for d in spike_digests if d.timestamp >= onset]
        if after:
            result.detected_at_switch = after[0]
            result.detection_intervals = (after[0] - onset) / setup.interval
    victim_subnet = (victim >> 8) & 0xFF
    result.subnet_correct = controller.identified_subnet == victim_subnet
    result.identified = controller.victim_ip()
    if controller.victim_identified_at is not None and onset is not None:
        result.pinpointed_at = controller.victim_identified_at
        result.pinpoint_seconds = controller.victim_identified_at - onset
    return result


def run_case_study_sweep(
    intervals: Sequence[float] = (0.008, 0.1, 0.5, 2.0),
    windows: Sequence[int] = (10, 100),
    repetitions: int = 3,
    base_seed: int = 0,
    **overrides,
) -> List[CaseStudyResult]:
    """The paper's sweep: "time intervals ranging from 8 ms to 2 seconds,
    and number of intervals between 10 and 100", repeated with different
    randomized onsets and victims."""
    results = []
    for interval in intervals:
        for window in windows:
            for rep in range(repetitions):
                setup = CaseStudySetup(
                    interval=interval,
                    window=window,
                    seed=base_seed + rep * 7919 + int(interval * 1000) + window,
                    **overrides,
                )
                results.append(run_case_study(setup))
    return results


def format_sweep(results: Sequence[CaseStudyResult]) -> str:
    """Render the sweep as a table."""
    header = [
        "interval",
        "window",
        "detected in (intervals)",
        "subnet ok",
        "victim ok",
        "pinpoint (s)",
        "false alerts",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                f"{r.setup.interval * 1000:g} ms",
                str(r.setup.window),
                f"{r.detection_intervals:.2f}" if r.detection_intervals is not None else "-",
                "yes" if r.subnet_correct else "NO",
                "yes" if r.victim_correct else "NO",
                f"{r.pinpoint_seconds:.2f}" if r.pinpoint_seconds is not None else "-",
                str(r.false_alerts_before_onset),
            ]
        )
    return format_rows(header, rows)
