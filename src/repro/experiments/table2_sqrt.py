# p4-ok-file — host-side experiment driver, not data-plane code.
"""Table 2: percentage error of the approximate square root.

The paper reports, per input decade, the 50th/90th-percentile and maximum
"percentage error in square root estimation with respect to the fractional
square root value", with a footnote that small inputs have high percentage
error but low absolute error (√3 → 1).

We compute two error definitions for every integer in each range:

- ``relative``: ``|approx − √y| / √y`` — the naive reading;
- ``input-normalized``: ``|approx − √y| / y`` — absolute error on the
  square-root scale normalized by the input.

The paper's numbers (20 % → 3.8 % → 0.44 % → 0.05 % maxima, falling with
magnitude) are reproduced by the input-normalized definition; the relative
definition cannot fall with magnitude because the algorithm interpolates
between powers of two with a constant ~6 % worst case (see DESIGN.md).
EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.approx import approx_isqrt
from repro.experiments.common import format_rows, percentile_of

__all__ = ["SqrtErrorRow", "PAPER_TABLE2", "run_table2", "format_table2"]

#: The ranges of Table 2.
DEFAULT_RANGES: Tuple[Tuple[int, int], ...] = (
    (1, 10),
    (10, 100),
    (100, 1000),
    (1000, 10000),
)

#: The paper's reported values (input-normalized metric), for comparison:
#: range -> (p50, p90, max) in percent.  "<x" entries use x.
PAPER_TABLE2 = {
    (1, 10): (3.0, 10.0, 20.0),
    (10, 100): (0.4, 1.4, 3.8),
    (100, 1000): (0.05, 0.14, 0.44),
    (1000, 10000): (0.01, 0.01, 0.05),
}


@dataclass(frozen=True)
class SqrtErrorRow:
    """Error summary for one input range (all values in percent)."""

    lo: int
    hi: int
    p50_normalized: float
    p90_normalized: float
    max_normalized: float
    p50_relative: float
    p90_relative: float
    max_relative: float


def run_table2(ranges: Sequence[Tuple[int, int]] = DEFAULT_RANGES) -> List[SqrtErrorRow]:
    """Evaluate the square-root error exhaustively over each range."""
    rows = []
    for lo, hi in ranges:
        normalized = []
        relative = []
        for y in range(lo, hi + 1):
            true = math.sqrt(y)
            error = abs(approx_isqrt(y) - true)
            normalized.append(error / y * 100.0)
            relative.append(error / true * 100.0)
        rows.append(
            SqrtErrorRow(
                lo=lo,
                hi=hi,
                p50_normalized=percentile_of(normalized, 50),
                p90_normalized=percentile_of(normalized, 90),
                max_normalized=max(normalized),
                p50_relative=percentile_of(relative, 50),
                p90_relative=percentile_of(relative, 90),
                max_relative=max(relative),
            )
        )
    return rows


def format_table2(rows: Sequence[SqrtErrorRow]) -> str:
    """Render the measured table next to the paper's values."""
    header = [
        "input number y",
        "50th perc",
        "90th perc",
        "max",
        "paper (50/90/max)",
        "rel 50th",
        "rel max",
    ]
    body = []
    for row in rows:
        paper = PAPER_TABLE2.get((row.lo, row.hi))
        paper_txt = (
            f"{paper[0]:g}% / {paper[1]:g}% / {paper[2]:g}%" if paper else "-"
        )
        body.append(
            [
                f"{row.lo}-{row.hi}",
                f"{row.p50_normalized:.2f}%",
                f"{row.p90_normalized:.2f}%",
                f"{row.max_normalized:.2f}%",
                paper_txt,
                f"{row.p50_relative:.2f}%",
                f"{row.max_relative:.2f}%",
            ]
        )
    return format_rows(header, body)
