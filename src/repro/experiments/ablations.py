# p4-ok-file — host-side experiment driver, not data-plane code.
"""Ablations of the design choices DESIGN.md calls out.

Each function isolates one decision the paper makes and quantifies the
alternative:

1. :func:`ablate_lazy_sd` — lazy vs eager σ recomputation (Sec. 3's
   amortization of the MSB if-chain).
2. :func:`ablate_square_approx` — exact vs shift-approximated squaring
   (the hardware fallback's accuracy cost).
3. :func:`ablate_median_steps` — one-step-per-packet vs multi-step median
   movement (error decay vs per-packet work).
4. :func:`ablate_division_table` — the rejected alternative of storing
   division approximations in match-action tables ("they require
   significant memory to be accurate", Sec. 2) vs Stat4's scaled tracking.
5. :func:`ablate_unit_coarsening` — order-of-magnitude counting (Sec. 2's
   Gb-unit trick): memory saved vs relative error introduced.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.approx import approx_isqrt, approx_square
from repro.core.bitops import msb_position_if_chain
from repro.core.ewma import EwmaDetector
from repro.core.percentile import PercentileTracker
from repro.core.stats import ScaledStats, exact_square
from repro.experiments.common import FenwickMedian, format_rows

__all__ = [
    "EwmaComparison",
    "ablate_ewma_vs_window",
    "ZipfRow",
    "ablate_zipf",
    "LazySdResult",
    "ablate_lazy_sd",
    "SquareApproxResult",
    "ablate_square_approx",
    "MedianStepsResult",
    "ablate_median_steps",
    "DivisionTableRow",
    "ablate_division_table",
    "format_division_table",
    "UnitCoarseningRow",
    "ablate_unit_coarsening",
]


# -- 0a. window vs EWMA detector ------------------------------------------------


@dataclass(frozen=True)
class EwmaComparison:
    """Windowed mean+2σ vs shift-based EWMA on identical interval streams.

    Attributes:
        window_bits / ewma_bits: detector state in register bits.
        window_spike_latency / ewma_spike_latency: intervals to flag an
            abrupt 8x spike (None = missed).
        window_recovery / ewma_recovery: intervals after the spike ends
            until the detector's threshold falls back within 1.2x of its
            pre-spike level — how long the absorbed spike inflates the
            baseline and blinds the detector to a follow-up anomaly.
    """

    window_bits: int
    ewma_bits: int
    window_spike_latency: object
    ewma_spike_latency: object
    window_recovery: int
    ewma_recovery: int


def ablate_ewma_vs_window(
    window: int = 64,
    baseline: int = 40,
    spike_factor: int = 8,
    spike_intervals: int = 40,
    seed: int = 0,
) -> EwmaComparison:
    """Drive both detectors with the same Poisson interval counts."""
    rng = random.Random(seed)

    def draw(lam: int) -> int:
        # Poisson via exponential gaps (host-side workload generation).
        t = 0
        count = 0
        while True:
            t += rng.expovariate(lam)
            if t >= 1:
                return count
            count += 1

    phases = (
        [baseline] * (3 * window)
        + [baseline * spike_factor] * spike_intervals
        + [baseline] * (3 * window)
    )
    spike_start = 3 * window
    spike_end = spike_start + spike_intervals

    window_stats = ScaledStats()
    cells: List[int] = []
    ewma = EwmaDetector(alpha_shift=3, k_dev=3, margin=3)
    window_flags: List[bool] = []
    ewma_flags: List[bool] = []
    window_thresholds: List[float] = []
    ewma_thresholds: List[float] = []
    margin = max(3, baseline >> 3)
    for lam in phases:
        x = draw(lam)
        flagged = (
            window_stats.count >= 8
            and window_stats.is_outlier(x, 2, margin=margin)
        )
        window_flags.append(flagged)
        if window_stats.count:
            # Per-value threshold: (Xsum + 2 sigma)/N + margin.
            window_thresholds.append(
                (window_stats.xsum + 2 * window_stats.stddev_nx)
                / window_stats.count
                + margin
            )
        else:
            window_thresholds.append(0.0)
        if len(cells) >= window:
            window_stats.replace_value(cells.pop(0), x)
        else:
            window_stats.add_value(x)
        cells.append(x)
        ewma_flags.append(ewma.update(x))
        ewma_thresholds.append(
            ewma.mean + ewma.k_dev * ewma.deviation + ewma.margin
        )

    def first_flag(flags, start, end):
        for i in range(start, min(end, len(flags))):
            if flags[i]:
                return i - start
        return None

    def threshold_recovery(thresholds, start):
        reference = thresholds[spike_start - 1] * 1.2
        for i in range(start, len(thresholds)):
            if thresholds[i] <= reference:
                return i - start
        return len(thresholds) - start

    return EwmaComparison(
        window_bits=window * 32 + 5 * 64,
        ewma_bits=ewma.state_bits,
        window_spike_latency=first_flag(window_flags, spike_start, spike_end),
        ewma_spike_latency=first_flag(ewma_flags, spike_start, spike_end),
        window_recovery=threshold_recovery(window_thresholds, spike_end),
        ewma_recovery=threshold_recovery(ewma_thresholds, spike_end),
    )


# -- 0. zipfian distributions (Sec. 5's caveat) --------------------------------


@dataclass(frozen=True)
class ZipfRow:
    """Behaviour of the k·σ check on zipf-distributed per-prefix counts.

    The paper warns that "the distribution of traffic per prefix may be
    zipfian" and not "straightforward to characterize with the measures we
    currently support" (Sec. 5).  Quantified: under a zipf head, the most
    popular prefix is a *permanent* k·σ outlier, so the check degenerates
    into a head detector.

    Attributes:
        exponent: zipf skew (0 = uniform).
        alert_packets_percent: fraction of baseline packets that trigger
            the 2σ check (with cooldown disabled) — the false-alert load.
        head_z_score: the top prefix's z-score in the final distribution.
        silencing_k: smallest integer k at which the settled baseline stops
            flagging the head (∞-proxy 99 if none ≤ 16 works).
    """

    exponent: float
    alert_packets_percent: float
    head_z_score: float
    silencing_k: int


def ablate_zipf(
    exponents: Sequence[float] = (0.0, 0.5, 1.0, 1.5),
    prefixes: int = 64,
    packets: int = 20_000,
    seed: int = 0,
) -> List[ZipfRow]:
    """Run the 2σ frequency check against zipf workloads of varying skew."""
    rows = []
    for exponent in exponents:
        rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(prefixes)]
        stats = ScaledStats()
        counts = [0] * prefixes
        alerts = 0
        judged = 0
        for _ in range(packets):
            prefix = rng.choices(range(prefixes), weights=weights, k=1)[0]
            old = counts[prefix]
            counts[prefix] = stats.observe_frequency(old)
            if stats.count >= 8:
                judged += 1
                if stats.is_outlier(counts[prefix], 2, margin=1):
                    alerts += 1
        head = max(counts)
        n = stats.count
        mean = stats.xsum / n
        sigma = math.sqrt(
            max(sum(c * c for c in counts if c) / n - mean * mean, 1e-9)
        )
        z = (head - mean) / sigma
        silencing_k = 99
        for k in range(1, 17):
            if not stats.is_outlier(head, k, margin=1):
                silencing_k = k
                break
        rows.append(
            ZipfRow(
                exponent=exponent,
                alert_packets_percent=100.0 * alerts / judged if judged else 0.0,
                head_z_score=z,
                silencing_k=silencing_k,
            )
        )
    return rows


# -- 1. lazy vs eager standard deviation --------------------------------------


@dataclass(frozen=True)
class LazySdResult:
    """MSB-search cost with lazy vs eager recomputation.

    ``comparisons_*`` counts the if-chain comparisons spent on MSB search —
    the cost Sec. 3 says the lazy scheme amortizes.
    """

    packets: int
    value_adds: int
    comparisons_lazy: int
    comparisons_eager: int

    @property
    def amortization(self) -> float:
        """Eager/lazy comparison ratio (> 1 means the paper's choice wins)."""
        if self.comparisons_lazy == 0:
            return float("inf")
        return self.comparisons_eager / self.comparisons_lazy


def ablate_lazy_sd(
    packets: int = 10_000, packets_per_interval: int = 50, seed: int = 0
) -> LazySdResult:
    """Replay a time-series workload and count MSB comparisons both ways.

    Eager recomputation runs the σ pipeline on *every packet*; the lazy
    scheme only when an interval closes (a value joins the distribution).
    """
    rng = random.Random(seed)
    stats = ScaledStats()
    window: List[int] = []
    comparisons_lazy = 0
    comparisons_eager = 0
    value_adds = 0
    current = 0
    for packet in range(packets):
        current += 1
        variance = stats.variance_nx
        if variance > 0:
            # Eager: σ per packet.
            _, cost = msb_position_if_chain(variance, width=64)
            comparisons_eager += cost
        if current >= packets_per_interval + rng.randint(-5, 5):
            if len(window) >= 100:
                stats.replace_value(window.pop(0), current)
            else:
                stats.add_value(current)
            window.append(current)
            value_adds += 1
            current = 0
            variance = stats.variance_nx
            if variance > 0:
                # Lazy: σ only on value-add.
                _, cost = msb_position_if_chain(variance, width=64)
                comparisons_lazy += cost
    return LazySdResult(
        packets=packets,
        value_adds=value_adds,
        comparisons_lazy=comparisons_lazy,
        comparisons_eager=comparisons_eager,
    )


# -- 2. exact vs approximate squaring ---------------------------------------------


@dataclass(frozen=True)
class SquareApproxResult:
    """σ accuracy with exact vs shift-approximated squaring."""

    samples: int
    mean_sd_error_exact: float
    mean_sd_error_approx: float
    max_sd_error_exact: float
    max_sd_error_approx: float


def ablate_square_approx(
    samples: int = 2000, window: int = 100, lo: int = 50, hi: int = 150, seed: int = 0
) -> SquareApproxResult:
    """Run the same stream through both squaring modes and compare σ."""
    rng = random.Random(seed)
    exact_stats = ScaledStats(square=exact_square)
    approx_stats = ScaledStats(square=approx_square)
    window_values: List[int] = []
    errors_exact: List[float] = []
    errors_approx: List[float] = []
    for _ in range(samples):
        value = rng.randint(lo, hi)
        if len(window_values) >= window:
            oldest = window_values.pop(0)
            exact_stats.replace_value(oldest, value)
            approx_stats.replace_value(oldest, value)
        else:
            exact_stats.add_value(value)
            approx_stats.add_value(value)
        window_values.append(value)
        if len(window_values) < 4:
            continue
        n = len(window_values)
        mean = sum(window_values) / n
        true_var_nx = n * n * (
            sum((v - mean) ** 2 for v in window_values) / n
        )
        if true_var_nx <= 0:
            continue
        true_sd = math.sqrt(true_var_nx)
        errors_exact.append(abs(exact_stats.stddev_nx - true_sd) / true_sd)
        errors_approx.append(abs(approx_stats.stddev_nx - true_sd) / true_sd)
    return SquareApproxResult(
        samples=samples,
        mean_sd_error_exact=sum(errors_exact) / len(errors_exact),
        mean_sd_error_approx=sum(errors_approx) / len(errors_approx),
        max_sd_error_exact=max(errors_exact),
        max_sd_error_approx=max(errors_approx),
    )


# -- 3. median movement steps -----------------------------------------------------


@dataclass(frozen=True)
class MedianStepsResult:
    """Convergence of the median tracker at a given per-packet step budget."""

    steps_per_update: int
    samples_to_converge: int
    final_error_percent: float


def ablate_median_steps(
    budgets: Sequence[int] = (1, 2, 4, 8),
    domain: int = 1000,
    samples: int = 2000,
    tolerance_percent: float = 1.0,
    seed: int = 0,
) -> List[MedianStepsResult]:
    """Samples needed until the tracked median stays within tolerance."""
    results = []
    for budget in budgets:
        rng = random.Random(seed)
        tracker = PercentileTracker(domain, steps_per_update=budget)
        exact = FenwickMedian(domain)
        converged_at = samples
        error = 100.0
        for step in range(samples):
            value = rng.randrange(domain)
            tracker.observe(value)
            exact.add(value)
            error = abs(tracker.value - exact.value()) * 100.0 / domain
            if error > tolerance_percent:
                converged_at = samples  # reset: must *stay* within tolerance
            elif converged_at == samples:
                converged_at = step
        results.append(
            MedianStepsResult(
                steps_per_update=budget,
                samples_to_converge=converged_at,
                final_error_percent=error,
            )
        )
    return results


# -- 4. the rejected division lookup table ----------------------------------------


@dataclass(frozen=True)
class DivisionTableRow:
    """Memory a match-action division table needs at a given accuracy.

    The alternative the paper rejects: precompute ``x / N`` (or reciprocal
    mantissas) in a TCAM/SRAM table.  For ``operand_bits``-wide numerators
    matched to ``precision_bits`` of result precision, the table needs an
    entry per (truncated numerator, divisor) pair.
    """

    precision_bits: int
    operand_bits: int
    max_divisor: int
    entries: int
    table_bytes: int
    worst_relative_error: float


def ablate_division_table(
    precisions: Sequence[int] = (4, 6, 8, 10),
    operand_bits: int = 32,
    max_divisor: int = 256,
    entry_bytes: int = 8,
) -> List[DivisionTableRow]:
    """Size the lookup table the paper refuses to pay for.

    A table keyed on the numerator's top ``p`` bits (after normalization)
    and the divisor gives a result with relative error ``~2^-p``; entries
    scale as ``2^p * max_divisor`` and each consumes key+value memory.
    Stat4's scaled-distribution trick needs none of this.
    """
    rows = []
    for precision in precisions:
        entries = (1 << precision) * max_divisor
        rows.append(
            DivisionTableRow(
                precision_bits=precision,
                operand_bits=operand_bits,
                max_divisor=max_divisor,
                entries=entries,
                table_bytes=entries * entry_bytes,
                worst_relative_error=1.0 / (1 << precision),
            )
        )
    return rows


def format_division_table(rows: Sequence[DivisionTableRow]) -> str:
    """Render the memory/accuracy trade-off."""
    header = ["precision", "worst rel error", "entries", "memory"]
    body = [
        [
            f"{row.precision_bits} bits",
            f"{row.worst_relative_error * 100:.2f}%",
            str(row.entries),
            f"{row.table_bytes / 1024:.0f} KB",
        ]
        for row in rows
    ]
    return format_rows(header, body)


# -- 5. order-of-magnitude counting -------------------------------------------------


@dataclass(frozen=True)
class UnitCoarseningRow:
    """Effect of counting in ``2^shift``-byte units (Sec. 2's Gb trick)."""

    unit_shift: int
    counter_bits_needed: int
    mean_relative_error: float
    outlier_agreement: float


def ablate_unit_coarsening(
    shifts: Sequence[int] = (0, 4, 8, 12),
    intervals: int = 400,
    mean_bytes: int = 120_000,
    spike_every: int = 50,
    seed: int = 0,
) -> List[UnitCoarseningRow]:
    """Track per-interval byte counts at several unit granularities.

    Measures the counter width needed, the mean error of the coarsened
    mean (vs exact bytes), and whether the 2σ outlier verdicts agree with
    the full-precision tracker.
    """
    rng = random.Random(seed)
    # One shared workload: normal intervals plus periodic spikes.
    workload = []
    for i in range(intervals):
        value = int(rng.gauss(mean_bytes, mean_bytes * 0.05))
        if spike_every and i and i % spike_every == 0:
            value *= 6
        workload.append(max(value, 0))
    rows = []
    for shift in shifts:
        stats = ScaledStats()
        reference = ScaledStats()
        agree = 0
        judged = 0
        max_cell = 0
        errors: List[float] = []
        for value in workload:
            coarse = value >> shift
            max_cell = max(max_cell, coarse)
            if reference.count >= 4:
                judged += 1
                if stats.is_outlier(coarse, 2) == reference.is_outlier(value, 2):
                    agree += 1
            stats.add_value(coarse)
            reference.add_value(value)
            # Compare the (rescaled) coarse mean against the exact mean.
            if reference.count:
                exact_mean = reference.xsum / reference.count
                coarse_mean = (stats.xsum << shift) / stats.count
                errors.append(abs(coarse_mean - exact_mean) / exact_mean)
        rows.append(
            UnitCoarseningRow(
                unit_shift=shift,
                counter_bits_needed=max(max_cell.bit_length(), 1),
                mean_relative_error=sum(errors) / len(errors),
                outlier_agreement=agree / judged if judged else 1.0,
            )
        )
    return rows
