# p4-ok-file — host-side experiment driver, not data-plane code.
"""Figure 1 / Sec. 1: reactivity of push vs pull architectures.

The paper's motivation: "for any sketch-only system, a delay is inevitable
between when a traffic change is theoretically detectable and when the
system is actually able to detect the change: this delay is inversely
proportional to the generated overhead".

This experiment makes that trade-off measurable.  The same spike workload
runs against

- the **in-switch** architecture (Figure 1c): a Stat4 monitor binding that
  pushes a digest when an interval is an outlier, and
- the **sketch-only** architecture (Figure 1b): the same interval counts,
  pulled by a controller every ``period`` seconds and checked host-side,
  for a sweep of periods.

For each run we report the detection delay after spike onset and the
control-channel overhead in bytes per second of monitoring.  The expected
shape: sketch-only delay grows with the period while its overhead shrinks
(the hyperbola), and the in-switch point sits below the whole curve with
near-zero overhead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.anomaly import CaseStudyParams, build_case_study_app
from repro.baselines.sketch_only import SketchPollingController, build_sketch_only_app
from repro.controller.base import Controller
from repro.netsim.hosts import Host
from repro.netsim.network import Network
from repro.netsim.switchnode import SwitchNode
from repro.p4 import headers as hdr
from repro.p4.switch import CPU_PORT
from repro.traffic.profiles import spike_phase, uniform_phase
from repro.traffic.source import TrafficSource
from repro.experiments.common import format_rows

__all__ = ["ReactivityPoint", "run_reactivity", "format_reactivity"]


@dataclass(frozen=True)
class ReactivityPoint:
    """One architecture/configuration's measured trade-off.

    Attributes:
        architecture: ``"in-switch"`` or ``"sketch-only"``.
        period: pull period in seconds (0 for the push architecture).
        detection_delay: spike onset → controller knows, in seconds
            (None = never detected within the run).
        control_bytes: bytes that crossed the control channel.
        monitor_seconds: length of the monitored run.
        overhead_bps: control bytes per monitored second.
    """

    architecture: str
    period: float
    detection_delay: Optional[float]
    control_bytes: int
    monitor_seconds: float

    @property
    def overhead_bps(self) -> float:
        """Control-channel overhead rate."""
        if self.monitor_seconds <= 0:
            return 0.0
        return self.control_bytes / self.monitor_seconds


def _workload(destinations, interval, ppi, warmup_intervals, spike_intervals, seed):
    base_rate = ppi / interval
    warmup = warmup_intervals * interval
    return (
        [
            uniform_phase(destinations, duration=warmup, rate_pps=base_rate, poisson=False),
            spike_phase(
                destinations[0],
                destinations,
                duration=spike_intervals * interval,
                rate_pps=base_rate * 8,
                poisson=False,
            ),
        ],
        warmup,
    )


def _run_in_switch(
    interval: float,
    window: int,
    ppi: int,
    warmup_intervals: int,
    spike_intervals: int,
    control_delay: float,
    seed: int,
) -> ReactivityPoint:
    destinations = [hdr.ip_to_int(f"10.0.1.{h}") for h in range(1, 7)]
    params = CaseStudyParams(
        interval=interval,
        window=window,
        counter_size=max(window, 256),
        margin=max(3, (ppi + 7) >> 3),
    )
    bundle = build_case_study_app(params)
    network = Network()
    switch = network.add(SwitchNode("p4", bundle.program))
    controller = network.add(Controller("ctrl"))
    sink = network.add(Host("sink"))
    network.connect(switch, CPU_PORT, controller, 0, delay=control_delay)
    network.connect(switch, 1, sink, 0)
    phases, warmup = _workload(
        destinations, interval, ppi, warmup_intervals, spike_intervals, seed
    )
    source = network.add(TrafficSource("src", phases, seed=seed))
    network.connect(source, 0, switch, 0)
    source.start()
    network.run()
    onset = source.phase_start_of("spike")
    detections = [t for (t, d) in controller.alerts_named("traffic_spike") if t >= onset]
    delay = detections[0] - onset if detections else None
    cpu_bytes = (
        network.link_of(switch, CPU_PORT).bytes_carried
        + network.link_of(controller, 0).bytes_carried
    )
    return ReactivityPoint(
        architecture="in-switch",
        period=0.0,
        detection_delay=delay,
        control_bytes=cpu_bytes,
        monitor_seconds=network.now,
    )


def _run_sketch_only(
    period: float,
    interval: float,
    window: int,
    ppi: int,
    warmup_intervals: int,
    spike_intervals: int,
    control_delay: float,
    seed: int,
) -> ReactivityPoint:
    destinations = [hdr.ip_to_int(f"10.0.1.{h}") for h in range(1, 7)]
    app = build_sketch_only_app(interval=interval, window=window)
    network = Network()
    switch = network.add(SwitchNode("p4", app.program))
    controller = network.add(
        SketchPollingController(
            "ctrl",
            period=period,
            window=window,
            margin=max(3, (ppi + 7) >> 3),
        )
    )
    sink = network.add(Host("sink"))
    network.connect(switch, CPU_PORT, controller, 0, delay=control_delay)
    network.connect(switch, 1, sink, 0)
    phases, warmup = _workload(
        destinations, interval, ppi, warmup_intervals, spike_intervals, seed
    )
    source = network.add(TrafficSource("src", phases, seed=seed))
    network.connect(source, 0, switch, 0)
    source.start()
    controller.start()
    total = warmup + spike_intervals * interval
    network.run(until=total + 2.0)
    controller.stop()
    network.run()
    onset = source.phase_start_of("spike")
    detected = controller.first_detection_after(onset) if onset is not None else None
    delay = detected - onset if detected is not None else None
    # Control overhead: everything on the CPU-port link, both directions.
    cpu_bytes = (
        network.link_of(switch, CPU_PORT).bytes_carried
        + network.link_of(controller, 0).bytes_carried
    )
    return ReactivityPoint(
        architecture="sketch-only",
        period=period,
        detection_delay=delay,
        control_bytes=cpu_bytes,
        monitor_seconds=network.now,
    )


def run_reactivity(
    periods: Sequence[float] = (0.01, 0.05, 0.1, 0.5, 1.0),
    interval: float = 0.008,
    window: int = 100,
    ppi: int = 30,
    warmup_intervals: int = 40,
    spike_intervals: int = 150,
    control_delay: float = 0.005,
    seed: int = 0,
) -> List[ReactivityPoint]:
    """Run the full comparison: one in-switch point plus the pull sweep.

    Keep ``spike_intervals * interval`` above the largest period, or slow
    pollers legitimately miss the spike altogether (a finding in itself —
    the paper's "may simply not be supported by the network" case).
    Similarly, a poller needs at least ~3 clean pulls of baseline before
    the spike, so the warm-up is stretched to cover the slowest period.
    """
    if periods:
        needed = int(3 * max(periods) / interval) + 5
        warmup_intervals = max(warmup_intervals, needed)
    points = [
        _run_in_switch(
            interval, window, ppi, warmup_intervals, spike_intervals, control_delay, seed
        )
    ]
    for period in periods:
        points.append(
            _run_sketch_only(
                period,
                interval,
                window,
                ppi,
                warmup_intervals,
                spike_intervals,
                control_delay,
                seed,
            )
        )
    return points


def format_reactivity(points: Sequence[ReactivityPoint]) -> str:
    """Render the trade-off table."""
    header = ["architecture", "pull period", "detection delay", "overhead (B/s)"]
    rows = []
    for p in points:
        rows.append(
            [
                p.architecture,
                f"{p.period * 1000:g} ms" if p.period else "push",
                f"{p.detection_delay * 1000:.1f} ms" if p.detection_delay is not None else "missed",
                f"{p.overhead_bps:.0f}",
            ]
        )
    return format_rows(header, rows)
