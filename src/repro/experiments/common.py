# p4-ok-file — host-side experiment driver, not data-plane code.
"""Shared helpers for the experiment drivers."""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["percentile_of", "FenwickMedian", "format_rows"]


def percentile_of(values: Sequence[float], percent: float) -> float:
    """Nearest-rank percentile of a sample (host-side analysis helper)."""
    if not values:
        raise ValueError("percentile of empty sample")
    ordered = sorted(values)
    rank = math.ceil(percent / 100.0 * len(ordered))
    return ordered[max(rank - 1, 0)]


class FenwickMedian:
    """Exact running percentile over a *bounded integer domain*.

    A Fenwick (binary indexed) tree over the value domain gives O(log N)
    insertion and O(log N) percentile queries — fast enough to serve as the
    ground truth for the Table-3 experiment at N = 65536 without the O(n)
    cost of sorted-list insertion.
    """

    def __init__(self, domain_size: int, percent: int = 50):
        if domain_size <= 0:
            raise ValueError("domain_size must be positive")
        if not 0 < percent < 100:
            raise ValueError("percent must be in (0, 100)")
        self.domain_size = domain_size
        self.percent = percent
        self._tree: List[int] = [0] * (domain_size + 1)
        self.count = 0
        # Highest power of two <= domain_size, for the descending search.
        self._top_bit = 1 << (domain_size.bit_length() - 1)

    def add(self, value: int) -> None:
        """Insert one observation."""
        if not 0 <= value < self.domain_size:
            raise ValueError(f"value {value} outside [0, {self.domain_size})")
        index = value + 1
        while index <= self.domain_size:
            self._tree[index] += 1
            index += index & (-index)
        self.count += 1

    def value(self) -> int:
        """The exact current percentile (smallest value reaching the rank)."""
        if self.count == 0:
            raise ValueError("no observations yet")
        target = math.ceil(self.percent / 100.0 * self.count)
        position = 0
        remaining = target
        bit = self._top_bit
        while bit:
            candidate = position + bit
            if candidate <= self.domain_size and self._tree[candidate] < remaining:
                position = candidate
                remaining -= self._tree[candidate]
            bit >>= 1
        return position  # zero-based domain value


def format_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table (for bench output and EXPERIMENTS.md)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
