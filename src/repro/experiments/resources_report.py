# p4-ok-file — host-side experiment driver, not data-plane code.
"""Sec. 4 "Resource Consumption": the case-study app's footprint.

The paper reports that the case-study application "occupies 3.1KB",
"entails at most one dependency between match-action rules, since at most
two rules with independent actions match each packet", and has a longest
dependency chain of "12 sequential steps, used to override the oldest
counter in distributions of traffic over time", deployable on targets with
"more than 10 pipeline stages".

We build the case-study program in its end-of-experiment state (monitor
binding installed, drill-down binding installed, routes populated) and run
the static analyzer over it.
"""

from __future__ import annotations

from repro.apps.anomaly import CaseStudyParams, build_case_study_app
from repro.p4.values import TOFINO_LIKE
from repro.resources.model import ResourceReport, analyze_program
from repro.stat4.binding import BindingMatch
from repro.stat4.extract import ExtractSpec

__all__ = ["build_case_study_report", "PAPER_TOTAL_KB", "PAPER_CHAIN", "PAPER_RULE_DEPS"]

#: The paper's reported numbers.
PAPER_TOTAL_KB = 3.1
PAPER_CHAIN = 12
PAPER_RULE_DEPS = 1


def build_case_study_report(
    params: CaseStudyParams = CaseStudyParams(),
    with_drilldown: bool = True,
) -> ResourceReport:
    """Analyze the case-study program's resource consumption.

    Args:
        params: the app configuration (paper defaults: 100-interval window).
        with_drilldown: include the controller-installed per-/24 binding,
            matching the two-rules-per-packet state the paper describes.
    """
    bundle = build_case_study_app(params)
    if with_drilldown:
        spec = bundle.runtime.frequency_of(
            dist=1,
            extract=ExtractSpec.field("ipv4.dst", shift=8, mask=0xFF),
            k_sigma=2,
            alert="imbalance_subnet",
        )
        bundle.runtime.bind(
            1, BindingMatch.ipv4_prefix(params.base_prefix, params.base_len), spec
        )
    report = analyze_program(bundle.program)
    return report


def summarize(report: ResourceReport) -> str:
    """The report plus the paper-vs-measured comparison lines."""
    lines = report.summary_lines()
    lines.append("")
    lines.append(
        f"paper: {PAPER_TOTAL_KB} KB total, chain {PAPER_CHAIN}, "
        f"{PAPER_RULE_DEPS} rule dependency"
    )
    lines.append(
        f"measured: {report.total_bytes / 1024:.1f} KB total, "
        f"chain {report.longest_chain}, "
        f"{report.rule_dependencies} rule dependency"
    )
    lines.append(
        f"fits tofino-like stage budget ({TOFINO_LIKE.max_pipeline_stages}): "
        f"{report.fits_target(TOFINO_LIKE)}"
    )
    return "\n".join(lines)
