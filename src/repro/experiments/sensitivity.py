# p4-ok-file — host-side experiment driver, not data-plane code.
"""Detection sensitivity: how small a spike can mean + 2σ catch?

The paper's case study uses a large spike ("much more traffic"); this
experiment maps the detector's operating region by sweeping the spike
factor from barely-above-baseline upward and measuring, per factor, the
detection probability (over seeds) and the detection latency in intervals.
The baseline uses Poisson arrivals (unlike the near-CBR case-study runs):
with λ = packets-per-interval, the threshold sits near
``λ + 2√λ + margin``, so the expected shape is a knee around factor
``1 + (2√λ + margin)/λ``, then uniformly first-interval detection — the
quantitative version of the paper's "detects the spike in the first
interval", with its sensitivity limit made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.case_study import CaseStudySetup, run_case_study
from repro.experiments.common import format_rows

__all__ = ["SensitivityRow", "run_sensitivity", "format_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """Detection behaviour at one spike factor."""

    spike_factor: float
    runs: int
    detected: int
    mean_detection_intervals: float

    @property
    def detection_rate(self) -> float:
        """Fraction of runs that raised a spike alert after onset."""
        return self.detected / self.runs if self.runs else 0.0


def run_sensitivity(
    factors: Sequence[float] = (1.2, 1.5, 2.0, 3.0, 5.0, 8.0),
    repetitions: int = 3,
    interval: float = 0.01,
    window: int = 30,
    packets_per_interval: int = 30,
    base_seed: int = 0,
) -> List[SensitivityRow]:
    """Sweep the spike factor and measure detection rate and latency."""
    rows = []
    for factor in factors:
        detected = 0
        latencies: List[float] = []
        for rep in range(repetitions):
            setup = CaseStudySetup(
                interval=interval,
                window=window,
                packets_per_interval=packets_per_interval,
                spike_factor=factor,  # fractional factors are fine
                warmup_intervals=15,
                spike_intervals=30,
                control_delay=0.005,
                controller_processing=0.005,
                poisson=True,
                seed=base_seed + rep * 101 + int(factor * 10),
            )
            result = run_case_study(setup)
            if result.detected:
                detected += 1
                latencies.append(result.detection_intervals)
        rows.append(
            SensitivityRow(
                spike_factor=factor,
                runs=repetitions,
                detected=detected,
                mean_detection_intervals=(
                    sum(latencies) / len(latencies) if latencies else float("nan")
                ),
            )
        )
    return rows


def format_sensitivity(rows: Sequence[SensitivityRow]) -> str:
    """Render the sweep."""
    header = ["spike factor", "detected", "mean latency (intervals)"]
    body = []
    for row in rows:
        latency = (
            f"{row.mean_detection_intervals:.2f}"
            if row.detected
            else "-"
        )
        body.append(
            [
                f"{row.spike_factor:g}x",
                f"{row.detected}/{row.runs}",
                latency,
            ]
        )
    return format_rows(header, body)
