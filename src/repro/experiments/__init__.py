"""Experiment drivers: one module per table/figure, plus ablations.

| Paper artifact | Driver |
|---|---|
| Table 2 (sqrt error) | :mod:`repro.experiments.table2_sqrt` |
| Table 3 (median error) | :mod:`repro.experiments.table3_median` |
| Figure 5 / Sec. 3 validation | :mod:`repro.experiments.validation` |
| Figure 6 / Sec. 4 case study | :mod:`repro.experiments.case_study` |
| Sec. 4 resources | :mod:`repro.experiments.resources_report` |
| Figure 1 / Sec. 1 reactivity | :mod:`repro.experiments.reactivity` |
| design ablations | :mod:`repro.experiments.ablations` |
"""

from repro.experiments.case_study import (
    CaseStudyResult,
    CaseStudySetup,
    format_sweep,
    run_case_study,
    run_case_study_sweep,
)
from repro.experiments.reactivity import (
    ReactivityPoint,
    format_reactivity,
    run_reactivity,
)
from repro.experiments.hybrid import (
    StrategyResult,
    format_strategies,
    run_identification_comparison,
)
from repro.experiments.multiswitch import MultiSwitchResult, run_multiswitch
from repro.experiments.resources_report import build_case_study_report, summarize
from repro.experiments.sensitivity import (
    SensitivityRow,
    format_sensitivity,
    run_sensitivity,
)
from repro.experiments.table2_sqrt import SqrtErrorRow, format_table2, run_table2
from repro.experiments.table3_median import MedianErrorRow, format_table3, run_table3
from repro.experiments.validation import ValidationResult, run_validation

__all__ = [
    "run_table2",
    "format_table2",
    "SqrtErrorRow",
    "run_table3",
    "format_table3",
    "MedianErrorRow",
    "run_validation",
    "ValidationResult",
    "run_case_study",
    "run_case_study_sweep",
    "format_sweep",
    "CaseStudySetup",
    "CaseStudyResult",
    "run_reactivity",
    "format_reactivity",
    "ReactivityPoint",
    "build_case_study_report",
    "summarize",
    "run_multiswitch",
    "MultiSwitchResult",
    "run_identification_comparison",
    "format_strategies",
    "StrategyResult",
    "run_sensitivity",
    "format_sensitivity",
    "SensitivityRow",
]
