# p4-ok-file — host-side experiment driver, not data-plane code.
"""Table 3: estimation error of the online median.

"Table 3 shows the results of experiments where we feed our median
computation algorithm with values extracted from a range [1, …, N]. The
estimation error is always ≤ 1%, except early in our simulations, when
distributions are sparse."

Reproduction: for each ``N`` (100 = packet types, 1000 = per-ms traffic,
65536 = a 16-bit field) and each of 20 repetitions, draw ``N`` uniform
samples from the domain, feed them to the one-step-per-packet tracker, and
after every sample record ``|tracked − exact| / N`` as a percentage (the
exact running median comes from a Fenwick tree).  Errors are pooled over
repetitions, split at the N/2-th sample, and summarized at the 50th/90th
percentile — the paper's four columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.percentile import PercentileTracker
from repro.experiments.common import FenwickMedian, format_rows, percentile_of

__all__ = ["MedianErrorRow", "PAPER_TABLE3", "run_table3", "format_table3"]

#: The paper's N values and use-case labels.
DEFAULT_SIZES: Tuple[Tuple[int, str], ...] = (
    (100, "packet types"),
    (1000, "per-ms traffic"),
    (65536, "16-bit field"),
)

#: Paper values: N -> (before_p50, before_p90, after_p50, after_p90) in %.
PAPER_TABLE3 = {
    100: (4.5, 34.5, 0.0, 1.0),
    1000: (3.6, 29.6, 0.0, 0.1),
    65536: (1.0, 23.0, 0.0, 0.01),
}


@dataclass(frozen=True)
class MedianErrorRow:
    """Error summary for one domain size (percent of N)."""

    n: int
    label: str
    repetitions: int
    before_p50: float
    before_p90: float
    after_p50: float
    after_p90: float
    final_error: float


def run_table3(
    sizes: Sequence[Tuple[int, str]] = DEFAULT_SIZES,
    repetitions: int = 20,
    seed: int = 0,
) -> List[MedianErrorRow]:
    """Run the Table-3 experiment.

    Args:
        sizes: ``(N, label)`` pairs.
        repetitions: independent repetitions per N (paper: 20).
        seed: base RNG seed; repetition ``r`` uses ``seed + r``.
    """
    rows = []
    for n, label in sizes:
        before: List[float] = []
        after: List[float] = []
        final_errors: List[float] = []
        half = n >> 1
        for rep in range(repetitions):
            rng = random.Random(seed + rep * 1009 + n)
            tracker = PercentileTracker(n)
            exact = FenwickMedian(n)
            last_error = 0.0
            for step in range(n):
                value = rng.randrange(n)
                tracker.observe(value)
                exact.add(value)
                last_error = abs(tracker.value - exact.value()) * 100.0 / n
                (before if step < half else after).append(last_error)
            final_errors.append(last_error)
        rows.append(
            MedianErrorRow(
                n=n,
                label=label,
                repetitions=repetitions,
                before_p50=percentile_of(before, 50),
                before_p90=percentile_of(before, 90),
                after_p50=percentile_of(after, 50),
                after_p90=percentile_of(after, 90),
                final_error=percentile_of(final_errors, 50),
            )
        )
    return rows


def format_table3(rows: Sequence[MedianErrorRow]) -> str:
    """Render the measured table next to the paper's values."""
    header = [
        "N (use case)",
        "before N/2: 50%tile",
        "90%tile",
        "after N/2: 50%tile",
        "90%tile",
        "paper (b50/b90/a50/a90)",
    ]
    body = []
    for row in rows:
        paper = PAPER_TABLE3.get(row.n)
        paper_txt = (
            f"{paper[0]:g} / {paper[1]:g} / {paper[2]:g} / {paper[3]:g}"
            if paper
            else "-"
        )
        body.append(
            [
                f"{row.n} ({row.label})",
                f"{row.before_p50:.2f}%",
                f"{row.before_p90:.2f}%",
                f"{row.after_p50:.2f}%",
                f"{row.after_p90:.2f}%",
                paper_txt,
            ]
        )
    return format_rows(header, body)
